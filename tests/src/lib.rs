//! Shared helpers for the cross-crate integration tests.

use padfa::prelude::*;

/// Parse, analyze with `opts`, plan, and execute at `workers`, asserting
/// the parallel result matches the sequential oracle. Returns the
/// parallel run.
pub fn assert_parallel_matches(
    src: &str,
    args: Vec<ArgValue>,
    opts: &Options,
    workers: usize,
    tolerance: f64,
) -> padfa::rt::RunResult {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("parse error: {e}\n{src}"));
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).expect("sequential run");
    let result = analyze_program(&prog, opts).expect("analysis failed");
    let plan = ExecPlan::from_analysis(&prog, &result);
    let par = run_main(&prog, args, &RunConfig::parallel(workers, plan)).expect("parallel run");
    let diff = seq.max_abs_diff(&par);
    assert!(
        diff <= tolerance,
        "parallel diverged from sequential by {diff} (tolerance {tolerance})\n{src}"
    );
    par
}

/// The outcome of the loop labeled `label` under `opts`.
pub fn outcome_of(src: &str, label: &str, opts: &Options) -> Outcome {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("parse error: {e}"));
    analyze_program(&prog, opts)
        .expect("analysis failed")
        .by_label(label)
        .unwrap_or_else(|| panic!("no loop labeled {label}"))
        .outcome
        .clone()
}
