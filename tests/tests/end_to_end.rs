//! End-to-end pipeline tests: parse → analyze → plan → execute, with
//! the parallel run checked against the sequential oracle under every
//! analysis variant.

use padfa::prelude::*;
use padfa_tests::{assert_parallel_matches, outcome_of};

#[test]
fn variant_hierarchy_on_figure_1a() {
    let src = "proc main(c: int, n: int, x: int) {
        array help[100];
        array a[100, 100];
        for@outer i = 1 to c {
            if (x > 5) { for j = 1 to n { help[j] = j * 2.0; } }
            if (x > 5) { for j = 1 to n { a[i, j] = help[j]; } }
        }
    }";
    assert!(matches!(
        outcome_of(src, "outer", &Options::base()),
        Outcome::Sequential
    ));
    assert!(outcome_of(src, "outer", &Options::guarded()).is_parallelizable());
    assert!(outcome_of(src, "outer", &Options::predicated()).is_parallelizable());

    // Execution is correct under every variant and both guard values.
    for opts in [Options::base(), Options::guarded(), Options::predicated()] {
        for x in [3, 9] {
            assert_parallel_matches(
                src,
                vec![ArgValue::Int(60), ArgValue::Int(40), ArgValue::Int(x)],
                &opts,
                4,
                0.0,
            );
        }
    }
}

#[test]
fn two_version_pipeline_takes_both_paths() {
    let src = "proc main(c: int, x: int) {
        array help[101];
        array a[100, 2];
        for@outer i = 1 to c {
            if (x > 5) { help[i] = a[i, 1] + 1.0; }
            a[i, 2] = help[i + 1];
        }
    }";
    let parallel_path = assert_parallel_matches(
        src,
        vec![ArgValue::Int(80), ArgValue::Int(3)],
        &Options::predicated(),
        4,
        0.0,
    );
    assert_eq!(parallel_path.stats.tests_passed, 1);
    assert_eq!(parallel_path.stats.parallel_loops, 1);

    let sequential_path = assert_parallel_matches(
        src,
        vec![ArgValue::Int(80), ArgValue::Int(9)],
        &Options::predicated(),
        4,
        0.0,
    );
    assert_eq!(sequential_path.stats.tests_failed, 1);
    assert_eq!(sequential_path.stats.parallel_loops, 0);
}

#[test]
fn interprocedural_reshape_pipeline() {
    // Reshape with symbolic extents: the divisibility guard holds at run
    // time, so the two-version loop runs in parallel with privatization.
    let src = "proc zfill(b: array[mm], mm: int) {
        for q = 1 to mm { b[q] = 0.5; }
    }
    proc main(c: int, n: int) {
        array g[n, n];
        array out[64];
        for@outer i = 1 to c {
            call zfill(g, n * n);
            out[i] = g[1, 1] + g[n, n] + i * 0.25;
        }
    }";
    match outcome_of(src, "outer", &Options::predicated()) {
        Outcome::ParallelIf(t) => assert!(t.is_runtime_testable()),
        other => panic!("expected two-version loop, got {other}"),
    }
    assert!(matches!(
        outcome_of(src, "outer", &Options::base()),
        Outcome::Sequential
    ));
    let par = assert_parallel_matches(
        src,
        vec![ArgValue::Int(48), ArgValue::Int(6)],
        &Options::predicated(),
        4,
        0.0,
    );
    assert_eq!(par.stats.tests_passed, 1, "divisibility guard holds");
}

#[test]
fn reductions_with_all_operators() {
    let src = "proc main(n: int, data: array[4096]) {
        var total: real;
        var prod: real;
        var lo: real;
        var hi: real;
        prod = 1.0;
        lo = data[1];
        hi = data[1];
        for@red i = 1 to n {
            total = total + data[i];
            prod = prod * (1.0 + data[i] * 0.0001);
            lo = min(lo, data[i]);
            hi = max(hi, data[i]);
        }
    }";
    assert!(outcome_of(src, "red", &Options::base()).is_parallelizable());
    let data: Vec<f64> = (0..4096).map(|i| ((i * 37) % 101) as f64 * 0.125).collect();
    assert_parallel_matches(
        src,
        vec![
            ArgValue::Int(4096),
            ArgValue::Array(ArrayStore::from_f64(data)),
        ],
        &Options::predicated(),
        8,
        1e-6,
    );
}

#[test]
fn deep_nest_single_level_parallelism() {
    let src = "proc main(n: int) {
        array a[16, 16, 0 + 16];
        for i = 1 to n {
            for j = 1 to n {
                for k = 1 to n {
                    a[i, j, k] = i * 100 + j * 10 + k;
                }
            }
        }
    }";
    let prog = parse_program(src).unwrap();
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    assert!(result.loops.iter().all(|l| l.outcome.is_parallelizable()));
    let plan = ExecPlan::from_analysis(&prog, &result);
    assert_eq!(plan.len(), 1, "only the outermost loop is planned");
    let par = assert_parallel_matches(src, vec![ArgValue::Int(16)], &Options::predicated(), 4, 0.0);
    assert_eq!(par.stats.parallel_loops, 1);
}

#[test]
fn sequential_program_stays_correct_under_plan() {
    // A genuinely sequential recurrence: the plan must be empty and the
    // "parallel" run identical.
    let src = "proc main(n: int) {
        array a[512];
        a[1] = 1.0;
        for@rec i = 2 to n { a[i] = a[i - 1] * 0.999 + 0.5; }
    }";
    assert!(matches!(
        outcome_of(src, "rec", &Options::predicated()),
        Outcome::Sequential
    ));
    let par = assert_parallel_matches(
        src,
        vec![ArgValue::Int(512)],
        &Options::predicated(),
        8,
        0.0,
    );
    assert_eq!(par.stats.parallel_loops, 0);
}

#[test]
fn mixed_program_full_pipeline() {
    // Stress the whole pipeline: guarded writes, privatization,
    // reductions, calls, and a sequential tail in one program.
    let src = "proc smooth(row: array[64], n: int) {
        for j = 2 to n { row[j] = row[j] * 0.5 + row[j] * 0.5; }
    }
    proc main(n: int, x: int) {
        array a[64, 64];
        array tmp[64];
        array acc[64];
        var s: real;
        for@outer i = 1 to n {
            for j = 1 to 64 { tmp[j] = a[i, j] + j * 0.01; }
            if (x > 0) {
                for j = 1 to 64 { a[i, j] = tmp[j] * 2.0; }
            } else {
                for j = 1 to 64 { a[i, j] = tmp[j] * 3.0; }
            }
            call smooth(acc, 64);
        }
        for@sum i = 1 to n { s = s + a[i, 1]; }
        for@tail i = 2 to n { acc[i] = acc[i - 1] + 1.0; }
    }";
    for x in [1, -1] {
        assert_parallel_matches(
            src,
            vec![ArgValue::Int(64), ArgValue::Int(x)],
            &Options::predicated(),
            4,
            1e-9,
        );
    }
}
