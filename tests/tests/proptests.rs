//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use padfa_omega::{Constraint, Disjunction, LinExpr, Limits, System, Var};
use padfa_pred::Pred;

fn lim() -> Limits {
    Limits::default()
}

/// A random union of up to three integer intervals over one variable.
fn intervals() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((-20i64..20, 0i64..15).prop_map(|(lo, len)| (lo, lo + len)), 1..3)
}

fn region_of(ivs: &[(i64, i64)]) -> Disjunction {
    let d = Var::new("pt");
    Disjunction::from_systems(ivs.iter().map(|&(lo, hi)| {
        System::from_constraints([
            Constraint::geq(LinExpr::var(d), LinExpr::constant(lo)),
            Constraint::leq(LinExpr::var(d), LinExpr::constant(hi)),
        ])
    }))
}

fn points_of(ivs: &[(i64, i64)]) -> std::collections::BTreeSet<i64> {
    ivs.iter().flat_map(|&(lo, hi)| lo..=hi).collect()
}

fn members(d: &Disjunction) -> std::collections::BTreeSet<i64> {
    (-60..=60)
        .filter(|&x| d.contains(&|_| Some(x)).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_is_set_union(a in intervals(), b in intervals()) {
        let u = region_of(&a).union(&region_of(&b), lim());
        let expected: std::collections::BTreeSet<i64> =
            points_of(&a).union(&points_of(&b)).copied().collect();
        prop_assert_eq!(members(&u), expected);
    }

    #[test]
    fn intersect_is_set_intersection(a in intervals(), b in intervals()) {
        let i = region_of(&a).intersect(&region_of(&b), lim());
        let expected: std::collections::BTreeSet<i64> =
            points_of(&a).intersection(&points_of(&b)).copied().collect();
        prop_assert_eq!(members(&i), expected);
    }

    #[test]
    fn subtract_is_set_difference(a in intervals(), b in intervals()) {
        let s = region_of(&a).subtract(&region_of(&b), lim());
        if s.is_exact() {
            let expected: std::collections::BTreeSet<i64> =
                points_of(&a).difference(&points_of(&b)).copied().collect();
            prop_assert_eq!(members(&s), expected);
        } else {
            // Inexact results must still over-approximate.
            let expected: std::collections::BTreeSet<i64> =
                points_of(&a).difference(&points_of(&b)).copied().collect();
            prop_assert!(expected.is_subset(&members(&s)));
        }
    }

    #[test]
    fn subset_test_is_sound(a in intervals(), b in intervals()) {
        let ra = region_of(&a);
        let rb = region_of(&b);
        if ra.subset_of(&rb, lim()) {
            prop_assert!(points_of(&a).is_subset(&points_of(&b)));
        }
    }

    #[test]
    fn emptiness_is_sound_and_precise_for_intervals(a in intervals(), b in intervals()) {
        let i = region_of(&a).intersect(&region_of(&b), lim());
        let really_empty = points_of(&a).intersection(&points_of(&b)).next().is_none();
        prop_assert_eq!(i.is_empty(lim()), really_empty);
    }

    #[test]
    fn projection_over_approximates(
        lo in -10i64..10, len in 0i64..10, coef in 1i64..4, shift in -5i64..5
    ) {
        // { lo <= q <= lo+len, d == coef*q + shift }: projecting q must
        // keep every reachable d.
        let (q, d) = (Var::new("q"), Var::new("d"));
        let sys = System::from_constraints([
            Constraint::geq(LinExpr::var(q), LinExpr::constant(lo)),
            Constraint::leq(LinExpr::var(q), LinExpr::constant(lo + len)),
            Constraint::eq(LinExpr::var(d), LinExpr::term(q, coef) + LinExpr::constant(shift)),
        ]);
        let p = sys.project_out(&[q], lim());
        for qv in lo..=lo + len {
            let dv = coef * qv + shift;
            prop_assert_eq!(
                p.system.contains(&|v| if v == d { Some(dv) } else { None }),
                Some(true),
                "lost point d={} (q={})", dv, qv
            );
        }
    }
}

/// Random affine predicates over two integer scalars.
fn pred_strategy() -> impl Strategy<Value = Pred> {
    let atom = (0..2usize, -5i64..5, prop::sample::select(vec!["<", "<=", ">", ">=", "==", "!="]))
        .prop_map(|(var, k, op)| {
            let v = if var == 0 { "px" } else { "py" };
            Pred::from_bool(
                &padfa_ir::parse::parse_bool_expr(&format!("{v} {op} {k}")).unwrap(),
            )
        });
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::and(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Pred::or(a, b)),
        ]
    })
}

fn eval_pred(p: &Pred, x: i64, y: i64) -> Option<bool> {
    p.eval(&|atom| {
        let c = atom.to_constraint()?;
        c.eval(&|v| {
            if v == Var::new("px") {
                Some(x)
            } else if v == Var::new("py") {
                Some(y)
            } else {
                None
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pred_double_negation_preserves_semantics(p in pred_strategy(), x in -8i64..8, y in -8i64..8) {
        let nn = p.negate().negate();
        prop_assert_eq!(eval_pred(&p, x, y), eval_pred(&nn, x, y));
    }

    #[test]
    fn pred_negation_complements(p in pred_strategy(), x in -8i64..8, y in -8i64..8) {
        let n = p.negate();
        let (a, b) = (eval_pred(&p, x, y), eval_pred(&n, x, y));
        prop_assert_eq!(a.map(|v| !v), b);
    }

    #[test]
    fn pred_bool_expr_round_trip(p in pred_strategy(), x in -8i64..8, y in -8i64..8) {
        let back = Pred::from_bool(&p.to_bool_expr());
        prop_assert_eq!(eval_pred(&p, x, y), eval_pred(&back, x, y));
    }

    #[test]
    fn pred_implication_is_sound(p in pred_strategy(), q in pred_strategy()) {
        if p.implies(&q, lim()) {
            for x in -6..=6 {
                for y in -6..=6 {
                    if eval_pred(&p, x, y) == Some(true) {
                        prop_assert_eq!(
                            eval_pred(&q, x, y), Some(true),
                            "p={} q={} at ({}, {})", p, q, x, y
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pred_and_or_semantics(p in pred_strategy(), q in pred_strategy(), x in -8i64..8, y in -8i64..8) {
        let conj = Pred::and(p.clone(), q.clone());
        let disj = Pred::or(p.clone(), q.clone());
        let (pv, qv) = (eval_pred(&p, x, y).unwrap(), eval_pred(&q, x, y).unwrap());
        prop_assert_eq!(eval_pred(&conj, x, y), Some(pv && qv));
        prop_assert_eq!(eval_pred(&disj, x, y), Some(pv || qv));
    }
}

/// Random straight-line loop programs: parallel must equal sequential.
fn loop_body_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("a[i] = a[i] + 1.5;".to_string()),
            Just("b[i] = a[i] * 2.0;".to_string()),
            Just("t = a[i] + b[i]; a[i] = t * 0.5;".to_string()),
            Just("if (x > 0) { a[i] = b[i] + 1.0; }".to_string()),
            Just("s = s + a[i];".to_string()),
            Just("for j = 1 to 4 { w[j] = a[i] + j; } b[i] = w[1] + w[4];".to_string()),
        ],
        1..4,
    )
    .prop_map(|stmts| stmts.join("\n            "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_loop_programs_execute_identically(body in loop_body_strategy(), x in -3i64..3) {
        use padfa::prelude::*;
        let src = format!(
            "proc main(n: int, x: int) {{
            array a[64]; array b[64]; array w[4];
            var t: real; var s: real;
            for i = 1 to n {{
            {body}
            }}
        }}"
        );
        let prog = parse_program(&src).unwrap();
        let args = vec![ArgValue::Int(64), ArgValue::Int(x)];
        let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
        let result = analyze_program(&prog, &Options::predicated());
        let plan = ExecPlan::from_analysis(&prog, &result);
        let par = run_main(&prog, args, &RunConfig::parallel(4, plan)).unwrap();
        prop_assert!(seq.max_abs_diff(&par) <= 1e-9, "diverged on:\n{}", src);
    }
}
