//! Randomized tests on the core data structures and invariants, driven
//! by seeded generators so every run exercises the same cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use padfa_omega::{Constraint, Disjunction, Limits, LinExpr, System, Var};
use padfa_pred::Pred;

fn lim() -> Limits {
    Limits::default()
}

/// A random union of up to three integer intervals over one variable.
fn random_intervals(rng: &mut StdRng) -> Vec<(i64, i64)> {
    let n = rng.gen_range(1usize..3);
    (0..n)
        .map(|_| {
            let lo = rng.gen_range(-20i64..20);
            let len = rng.gen_range(0i64..15);
            (lo, lo + len)
        })
        .collect()
}

fn region_of(ivs: &[(i64, i64)]) -> Disjunction {
    let d = Var::new("pt");
    Disjunction::from_systems(ivs.iter().map(|&(lo, hi)| {
        System::from_constraints([
            Constraint::geq(LinExpr::var(d), LinExpr::constant(lo)),
            Constraint::leq(LinExpr::var(d), LinExpr::constant(hi)),
        ])
    }))
}

fn points_of(ivs: &[(i64, i64)]) -> std::collections::BTreeSet<i64> {
    ivs.iter().flat_map(|&(lo, hi)| lo..=hi).collect()
}

fn members(d: &Disjunction) -> std::collections::BTreeSet<i64> {
    (-60..=60)
        .filter(|&x| d.contains(&|_| Some(x)).unwrap())
        .collect()
}

const REGION_CASES: u64 = 64;

#[test]
fn union_is_set_union() {
    for seed in 0..REGION_CASES {
        let mut rng = StdRng::seed_from_u64(0x0110 + seed);
        let (a, b) = (random_intervals(&mut rng), random_intervals(&mut rng));
        let u = region_of(&a).union(&region_of(&b), lim());
        let expected: std::collections::BTreeSet<i64> =
            points_of(&a).union(&points_of(&b)).copied().collect();
        assert_eq!(members(&u), expected);
    }
}

#[test]
fn intersect_is_set_intersection() {
    for seed in 0..REGION_CASES {
        let mut rng = StdRng::seed_from_u64(0x1217 + seed);
        let (a, b) = (random_intervals(&mut rng), random_intervals(&mut rng));
        let i = region_of(&a).intersect(&region_of(&b), lim());
        let expected: std::collections::BTreeSet<i64> = points_of(&a)
            .intersection(&points_of(&b))
            .copied()
            .collect();
        assert_eq!(members(&i), expected);
    }
}

#[test]
fn subtract_is_set_difference() {
    for seed in 0..REGION_CASES {
        let mut rng = StdRng::seed_from_u64(0x5b17 + seed);
        let (a, b) = (random_intervals(&mut rng), random_intervals(&mut rng));
        let s = region_of(&a).subtract(&region_of(&b), lim());
        let expected: std::collections::BTreeSet<i64> =
            points_of(&a).difference(&points_of(&b)).copied().collect();
        if s.is_exact() {
            assert_eq!(members(&s), expected);
        } else {
            // Inexact results must still over-approximate.
            assert!(expected.is_subset(&members(&s)));
        }
    }
}

#[test]
fn subset_test_is_sound() {
    for seed in 0..REGION_CASES {
        let mut rng = StdRng::seed_from_u64(0x5b5e + seed);
        let (a, b) = (random_intervals(&mut rng), random_intervals(&mut rng));
        let ra = region_of(&a);
        let rb = region_of(&b);
        if ra.subset_of(&rb, lim()) {
            assert!(points_of(&a).is_subset(&points_of(&b)));
        }
    }
}

#[test]
fn emptiness_is_sound_and_precise_for_intervals() {
    for seed in 0..REGION_CASES {
        let mut rng = StdRng::seed_from_u64(0xe397 + seed);
        let (a, b) = (random_intervals(&mut rng), random_intervals(&mut rng));
        let i = region_of(&a).intersect(&region_of(&b), lim());
        let really_empty = points_of(&a).intersection(&points_of(&b)).next().is_none();
        assert_eq!(i.is_empty(lim()), really_empty);
    }
}

#[test]
fn projection_over_approximates() {
    for seed in 0..REGION_CASES {
        let mut rng = StdRng::seed_from_u64(0x9205 + seed);
        let lo = rng.gen_range(-10i64..10);
        let len = rng.gen_range(0i64..10);
        let coef = rng.gen_range(1i64..4);
        let shift = rng.gen_range(-5i64..5);
        // { lo <= q <= lo+len, d == coef*q + shift }: projecting q must
        // keep every reachable d.
        let (q, d) = (Var::new("q"), Var::new("d"));
        let sys = System::from_constraints([
            Constraint::geq(LinExpr::var(q), LinExpr::constant(lo)),
            Constraint::leq(LinExpr::var(q), LinExpr::constant(lo + len)),
            Constraint::eq(
                LinExpr::var(d),
                LinExpr::term(q, coef) + LinExpr::constant(shift),
            ),
        ]);
        let p = sys.project_out(&[q], lim());
        for qv in lo..=lo + len {
            let dv = coef * qv + shift;
            assert_eq!(
                p.system.contains(&|v| if v == d { Some(dv) } else { None }),
                Some(true),
                "lost point d={} (q={})",
                dv,
                qv
            );
        }
    }
}

/// Random affine predicates over two integer scalars.
fn random_pred(rng: &mut StdRng, depth: u32) -> Pred {
    if depth > 0 && rng.gen_range(0u32..3) > 0 {
        let a = random_pred(rng, depth - 1);
        let b = random_pred(rng, depth - 1);
        return if rng.gen_bool(0.5) {
            Pred::and(a, b)
        } else {
            Pred::or(a, b)
        };
    }
    let v = if rng.gen_bool(0.5) { "px" } else { "py" };
    let k = rng.gen_range(-5i64..5);
    let op = ["<", "<=", ">", ">=", "==", "!="][rng.gen_range(0usize..6)];
    Pred::from_bool(&padfa_ir::parse::parse_bool_expr(&format!("{v} {op} {k}")).unwrap())
}

fn eval_pred(p: &Pred, x: i64, y: i64) -> Option<bool> {
    p.eval(&|atom| {
        let c = atom.to_constraint()?;
        c.eval(&|v| {
            if v == Var::new("px") {
                Some(x)
            } else if v == Var::new("py") {
                Some(y)
            } else {
                None
            }
        })
    })
}

const PRED_CASES: u64 = 64;

#[test]
fn pred_double_negation_preserves_semantics() {
    for seed in 0..PRED_CASES {
        let mut rng = StdRng::seed_from_u64(0xd091 + seed);
        let p = random_pred(&mut rng, 3);
        let x = rng.gen_range(-8i64..8);
        let y = rng.gen_range(-8i64..8);
        let nn = p.negate().negate();
        assert_eq!(eval_pred(&p, x, y), eval_pred(&nn, x, y));
    }
}

#[test]
fn pred_negation_complements() {
    for seed in 0..PRED_CASES {
        let mut rng = StdRng::seed_from_u64(0x9e6a + seed);
        let p = random_pred(&mut rng, 3);
        let x = rng.gen_range(-8i64..8);
        let y = rng.gen_range(-8i64..8);
        let n = p.negate();
        let (a, b) = (eval_pred(&p, x, y), eval_pred(&n, x, y));
        assert_eq!(a.map(|v| !v), b);
    }
}

#[test]
fn pred_bool_expr_round_trip() {
    for seed in 0..PRED_CASES {
        let mut rng = StdRng::seed_from_u64(0xb001 + seed);
        let p = random_pred(&mut rng, 3);
        let x = rng.gen_range(-8i64..8);
        let y = rng.gen_range(-8i64..8);
        let back = Pred::from_bool(&p.to_bool_expr());
        assert_eq!(eval_pred(&p, x, y), eval_pred(&back, x, y));
    }
}

#[test]
fn pred_implication_is_sound() {
    for seed in 0..PRED_CASES {
        let mut rng = StdRng::seed_from_u64(0x13b5 + seed);
        let p = random_pred(&mut rng, 3);
        let q = random_pred(&mut rng, 3);
        if p.implies(&q, lim()) {
            for x in -6..=6 {
                for y in -6..=6 {
                    if eval_pred(&p, x, y) == Some(true) {
                        assert_eq!(
                            eval_pred(&q, x, y),
                            Some(true),
                            "p={} q={} at ({}, {})",
                            p,
                            q,
                            x,
                            y
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn pred_and_or_semantics() {
    for seed in 0..PRED_CASES {
        let mut rng = StdRng::seed_from_u64(0xa0d0 + seed);
        let p = random_pred(&mut rng, 3);
        let q = random_pred(&mut rng, 3);
        let x = rng.gen_range(-8i64..8);
        let y = rng.gen_range(-8i64..8);
        let conj = Pred::and(p.clone(), q.clone());
        let disj = Pred::or(p.clone(), q.clone());
        let (pv, qv) = (eval_pred(&p, x, y).unwrap(), eval_pred(&q, x, y).unwrap());
        assert_eq!(eval_pred(&conj, x, y), Some(pv && qv));
        assert_eq!(eval_pred(&disj, x, y), Some(pv || qv));
    }
}

/// Random straight-line loop bodies: parallel must equal sequential.
fn random_loop_body(rng: &mut StdRng) -> String {
    const CHOICES: [&str; 6] = [
        "a[i] = a[i] + 1.5;",
        "b[i] = a[i] * 2.0;",
        "t = a[i] + b[i]; a[i] = t * 0.5;",
        "if (x > 0) { a[i] = b[i] + 1.0; }",
        "s = s + a[i];",
        "for j = 1 to 4 { w[j] = a[i] + j; } b[i] = w[1] + w[4];",
    ];
    let n = rng.gen_range(1usize..4);
    (0..n)
        .map(|_| CHOICES[rng.gen_range(0usize..CHOICES.len())])
        .collect::<Vec<_>>()
        .join("\n            ")
}

#[test]
fn random_loop_programs_execute_identically() {
    use padfa::prelude::*;
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x100b + seed);
        let body = random_loop_body(&mut rng);
        let x = rng.gen_range(-3i64..3);
        let src = format!(
            "proc main(n: int, x: int) {{
            array a[64]; array b[64]; array w[4];
            var t: real; var s: real;
            for i = 1 to n {{
            {body}
            }}
        }}"
        );
        let prog = parse_program(&src).unwrap();
        let args = vec![ArgValue::Int(64), ArgValue::Int(x)];
        let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
        let result = analyze_program(&prog, &Options::predicated()).unwrap();
        let plan = ExecPlan::from_analysis(&prog, &result);
        let par = run_main(&prog, args, &RunConfig::parallel(4, plan)).unwrap();
        assert!(seq.max_abs_diff(&par) <= 1e-9, "diverged on:\n{}", src);
    }
}
