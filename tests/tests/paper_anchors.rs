//! Corpus-level checks against the paper's reported aggregates:
//!
//! * three suites + one program, 30 programs, >4000 loops;
//! * base SUIF parallelizes just over 50% of all loops;
//! * predicated analysis parallelizes >40% of the remaining inherently
//!   parallel loops;
//! * additional outermost loops in 9 programs.
//!
//! The expensive ELPD sweep runs in the `table1` binary; here the
//! inherently-parallel population is computed from the generator's
//! labeled expectations (validated against ELPD for sample programs in
//! `corpus_integrity.rs`).

use padfa_core::{analyze_program, Options};
use padfa_suite::{build_corpus, Expect};

#[test]
fn corpus_matches_paper_aggregates() {
    let corpus = build_corpus();
    assert_eq!(corpus.len(), 30);

    let mut total_loops = 0usize;
    let mut base_par = 0usize;
    let mut guarded_par = 0usize;
    let mut pred_par = 0usize;
    let mut programs_with_new_outer = 0usize;
    let mut wins = 0usize;
    let mut elpd_only = 0usize;

    for bp in &corpus {
        let base = analyze_program(&bp.program, &Options::base()).unwrap();
        let guarded = analyze_program(&bp.program, &Options::guarded()).unwrap();
        let pred = analyze_program(&bp.program, &Options::predicated()).unwrap();
        total_loops += base.loops.len();
        base_par += base.num_parallelized();
        guarded_par += guarded.num_parallelized();
        pred_par += pred.num_parallelized();

        let new_outer = pred
            .loops
            .iter()
            .filter(|l| {
                l.depth == 0
                    && l.parallelized()
                    && !base
                        .loop_report(l.id)
                        .map(|r| r.parallelized())
                        .unwrap_or(false)
            })
            .count();
        if new_outer > 0 {
            programs_with_new_outer += 1;
        }

        for h in &bp.hard {
            match h.expect {
                Expect::PredicatedCT | Expect::EmbeddingCT | Expect::PredicatedRT => wins += 1,
                Expect::ElpdOnly => elpd_only += 1,
                _ => {}
            }
        }
    }

    assert!(total_loops > 4000, "total loops: {total_loops}");
    let base_pct = 100.0 * base_par as f64 / total_loops as f64;
    assert!(
        (50.0..60.0).contains(&base_pct),
        "base parallelization: {base_pct:.1}%"
    );
    assert!(base_par <= guarded_par, "guarded must dominate base");
    assert!(guarded_par < pred_par, "predicated must dominate guarded");

    // Recovery of the inherently parallel remainder.
    let inherently_parallel = wins + elpd_only;
    let recovery = 100.0 * wins as f64 / inherently_parallel as f64;
    assert!(
        recovery > 40.0 && recovery < 60.0,
        "recovery: {recovery:.1}% ({wins}/{inherently_parallel})"
    );

    assert_eq!(
        programs_with_new_outer, 9,
        "the paper reports additional outer loops in 9 programs"
    );
}

#[test]
fn suite_population_structure() {
    use padfa_suite::SuiteName;
    let corpus = build_corpus();
    let loops_in = |s: SuiteName| -> usize {
        corpus
            .iter()
            .filter(|bp| bp.suite == s)
            .map(|bp| padfa_ir::visit::count_loops(&bp.program))
            .sum()
    };
    // Every suite contributes a substantial population.
    assert!(loops_in(SuiteName::Specfp95) > 1000);
    assert!(loops_in(SuiteName::NasSample) > 500);
    assert!(loops_in(SuiteName::Perfect) > 1500);
    assert!(loops_in(SuiteName::Additional) > 20);
}

#[test]
fn runtime_tests_are_low_cost() {
    // Every run-time test the predicated analysis emits over the whole
    // corpus must be scalar-only and within the cost budget — the
    // paper's distinguishing claim versus inspector/executor schemes
    // whose overhead scales with array sizes.
    let corpus = build_corpus();
    let opts = Options::predicated();
    let mut seen = 0;
    for bp in &corpus {
        let result = analyze_program(&bp.program, &opts).unwrap();
        for l in &result.loops {
            if let padfa_core::Outcome::ParallelIf(t) = &l.outcome {
                seen += 1;
                assert!(t.is_runtime_testable(), "{}: {t}", bp.name);
                assert!(
                    t.cost() <= opts.test_cost_budget,
                    "{}: test too expensive: {t}",
                    bp.name
                );
            }
        }
    }
    assert!(seen >= 50, "expected many run-time tests, saw {seen}");
}

#[test]
fn corpus_is_deterministic_golden_numbers() {
    // The generator is fully seeded: these exact aggregates are the
    // reproducibility contract for EXPERIMENTS.md. If an intentional
    // corpus or analysis change shifts them, update this test AND the
    // documented numbers together.
    let corpus = build_corpus();
    let mut total = 0usize;
    let mut base = 0usize;
    let mut guarded = 0usize;
    let mut pred = 0usize;
    let mut rt = 0usize;
    for bp in &corpus {
        let b = analyze_program(&bp.program, &Options::base()).unwrap();
        let g = analyze_program(&bp.program, &Options::guarded()).unwrap();
        let p = analyze_program(&bp.program, &Options::predicated()).unwrap();
        total += b.loops.len();
        base += b.num_parallelized();
        guarded += g.num_parallelized();
        pred += p.num_parallelized();
        rt += p.num_runtime_tested();
    }
    assert_eq!(
        (total, base, guarded, pred, rt),
        (4482, 2275, 2312, 2396, 71),
        "golden corpus aggregates changed"
    );
}
