//! Generator integrity: the corpus's labeled loops behave as specified
//! across analysis variants, and the ELPD inspector agrees with the
//! labeled expectations on sample programs (the full sweep runs in the
//! `table1` binary).

use padfa_core::{analyze_program, Options};
use padfa_rt::elpd::elpd_inspect;
use padfa_suite::corpus::build_program;
use padfa_suite::stats::verify_expectations;
use padfa_suite::Expect;

#[test]
fn expectations_hold_on_representative_programs() {
    // One small, one improved (outer wins), one inner-wins, one with
    // reshape: covers every pattern family.
    for name in ["tomcatv", "cgm", "track", "su2cor"] {
        let bp = build_program(name).expect("program exists");
        verify_expectations(&bp).unwrap_or_else(|e| panic!("{name}:\n{e}"));
    }
}

#[test]
fn elpd_agrees_with_expectations_on_small_programs() {
    for name in ["tomcatv", "buk", "cgm", "addl"] {
        let bp = build_program(name).expect("program exists");
        let base = analyze_program(&bp.program, &Options::base()).unwrap();
        for h in &bp.hard {
            let report = base.by_label(&h.label).expect("labeled loop");
            if report.parallelized() {
                continue; // ELPD only instruments remaining loops
            }
            let exclude: Vec<_> = report.reductions.iter().map(|r| r.target).collect();
            let verdict = elpd_inspect(&bp.program, bp.args.clone(), report.id, &exclude)
                .unwrap_or_else(|e| panic!("{name}/{}: execution failed: {e}", h.label));
            assert_eq!(
                verdict.parallelizable,
                h.expect.elpd_parallel(),
                "{name}/{} ({:?}): ELPD said parallelizable={}",
                h.label,
                h.expect,
                verdict.parallelizable
            );
        }
    }
}

#[test]
fn corpus_programs_execute_cleanly() {
    // Every corpus program must run to completion on the standard
    // workload — sequentially and under the predicated plan.
    use padfa_rt::{run_main, ExecPlan, RunConfig};
    for name in ["tomcatv", "swim", "cgm", "qcd", "addl", "su2cor"] {
        let bp = build_program(name).expect("program exists");
        let seq = run_main(&bp.program, bp.args.clone(), &RunConfig::sequential())
            .unwrap_or_else(|e| panic!("{name}: sequential run failed: {e}"));
        let result = analyze_program(&bp.program, &Options::predicated()).unwrap();
        let plan = ExecPlan::from_analysis(&bp.program, &result);
        let par = run_main(&bp.program, bp.args.clone(), &RunConfig::parallel(4, plan))
            .unwrap_or_else(|e| panic!("{name}: parallel run failed: {e}"));
        let diff = seq.max_abs_diff(&par);
        assert!(diff == 0.0, "{name}: parallel diverged by {diff}");
        assert!(seq.total_work > 100, "{name}: trivial execution");
    }
}

#[test]
fn hard_loop_mechanisms_recorded() {
    // Loops expected to need embedding/extraction must have the flags.
    let bp = build_program("qcd").expect("program exists");
    let pred = analyze_program(&bp.program, &Options::predicated()).unwrap();
    for h in &bp.hard {
        let report = pred.by_label(&h.label).expect("labeled loop");
        match h.expect {
            Expect::EmbeddingCT => {
                assert!(
                    report.mechanisms.embedding,
                    "{}: {:?}",
                    h.label, report.mechanisms
                )
            }
            Expect::PredicatedRT => {
                assert!(
                    report.mechanisms.runtime_test,
                    "{}: {:?}",
                    h.label, report.mechanisms
                )
            }
            _ => {}
        }
    }
}

#[test]
fn sources_reparse_to_same_program() {
    // The generated text, pretty-printed and re-parsed, is stable.
    let bp = build_program("embar").expect("program exists");
    let pretty = padfa_ir::pretty::program_to_string(&bp.program);
    let reparsed = padfa_ir::parse::parse_program(&pretty).expect("round trip");
    assert_eq!(bp.program, reparsed);
}
