//! Differential soundness fuzz: seeded random programs (adversarial
//! shapes — non-affine subscripts, guarded writes, nested loops) must
//! produce identical results under every analysis variant's plan, every
//! scheduling mode, and the inspector/executor scheme. Any unsound
//! "parallel" verdict diverges from the sequential oracle here.

use padfa::ir::testgen::{random_program, GenConfig};
use padfa::prelude::*;

const SEEDS: u64 = 60;

fn workload() -> Vec<ArgValue> {
    // n below the generator's extent keeps `idx + 1` subscripts legal.
    vec![ArgValue::Int(12), ArgValue::Int(3)]
}

#[test]
fn all_variants_match_sequential_on_random_programs() {
    let mut planned_parallel = 0u64;
    for seed in 0..SEEDS {
        let prog = random_program(seed, GenConfig::default());
        let seq = run_main(&prog, workload(), &RunConfig::sequential())
            .unwrap_or_else(|e| panic!("seed {seed}: sequential run failed: {e}\n{prog}"));
        for opts in [Options::base(), Options::guarded(), Options::predicated()] {
            let variant = opts.variant;
            let result = analyze_program(&prog, &opts).unwrap();
            let plan = ExecPlan::from_analysis(&prog, &result);
            planned_parallel += plan.len() as u64;
            let par = run_main(&prog, workload(), &RunConfig::parallel(4, plan))
                .unwrap_or_else(|e| panic!("seed {seed} {variant:?}: parallel run failed: {e}"));
            let d = seq.max_abs_diff(&par);
            assert!(
                d <= 1e-9,
                "seed {seed} under {variant:?} diverged by {d}:\n{prog}"
            );
        }
    }
    assert!(
        planned_parallel > SEEDS,
        "fuzz must actually exercise parallel plans (got {planned_parallel})"
    );
}

#[test]
fn chunked_schedules_match_on_random_programs() {
    for seed in 0..SEEDS / 2 {
        let prog = random_program(seed, GenConfig::default());
        let seq = run_main(&prog, workload(), &RunConfig::sequential()).unwrap();
        let result = analyze_program(&prog, &Options::predicated()).unwrap();
        for chunk in [1usize, 3] {
            let plan = ExecPlan::from_analysis(&prog, &result);
            let par = run_main(&prog, workload(), &RunConfig::chunked(3, plan, chunk))
                .unwrap_or_else(|e| panic!("seed {seed} chunk {chunk}: {e}"));
            let d = seq.max_abs_diff(&par);
            assert!(
                d <= 1e-9,
                "seed {seed} chunk {chunk} diverged by {d}:\n{prog}"
            );
        }
    }
}

#[test]
fn inspector_matches_on_random_programs() {
    for seed in 0..SEEDS / 2 {
        let prog = random_program(seed, GenConfig::default());
        let seq = run_main(&prog, workload(), &RunConfig::sequential()).unwrap();
        // Inspect every outermost loop that has no compile-time plan.
        let result = analyze_program(&prog, &Options::predicated()).unwrap();
        let plan = ExecPlan::from_analysis(&prog, &result);
        let parents = padfa::ir::visit::loop_parents(&prog);
        let mut inspect = Vec::new();
        padfa::ir::visit::for_each_loop(&prog, &mut |_, l, _| {
            if parents.get(&l.id).copied().flatten().is_none() && plan.get(l.id).is_none() {
                inspect.push(l.id);
            }
        });
        let cfg = RunConfig {
            inspect,
            ..RunConfig::parallel(4, plan)
        };
        let par = run_main(&prog, workload(), &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: inspected run failed: {e}"));
        let d = seq.max_abs_diff(&par);
        assert!(d <= 1e-9, "seed {seed} inspector diverged by {d}:\n{prog}");
    }
}

#[test]
fn analysis_is_deterministic_on_random_programs() {
    for seed in 0..SEEDS / 3 {
        let prog = random_program(seed, GenConfig::default());
        let a = analyze_program(&prog, &Options::predicated()).unwrap();
        let b = analyze_program(&prog, &Options::predicated()).unwrap();
        assert_eq!(a.loops.len(), b.loops.len());
        for (x, y) in a.loops.iter().zip(&b.loops) {
            assert_eq!(x, y, "seed {seed}: non-deterministic report");
        }
    }
}
