#!/usr/bin/env bash
# Measure analysis wall time and session cache statistics over the full
# corpus, writing BENCH_analysis.json (plus a copy under results/).
#
# Usage: scripts/bench.sh [JOBS] [RUNS]
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-4}"
RUNS="${2:-3}"
mkdir -p results
cargo build --release -p padfa-bench --bin analysis_stats
./target/release/analysis_stats --jobs "$JOBS" --runs "$RUNS" --out BENCH_analysis.json \
    | tee results/analysis_stats.txt
cp BENCH_analysis.json results/BENCH_analysis.json
echo "Wrote BENCH_analysis.json (and results/analysis_stats.txt)."
