#!/usr/bin/env bash
# Measure analysis wall time and session cache statistics over the full
# corpus, writing BENCH_analysis.json (plus a copy under results/).
# Every program is timed in interleaved --jobs 1 / --jobs JOBS pairs;
# "speedup_jobs" is the median of the per-pair ratios, so runner-load
# drift cancels out of each pair. Scheduler spawn/inline counts and the
# estimate-vs-actual cost correlation land in each program's "sched"
# object. Each program is preceded by WARMUP untimed pairs.
#
# Usage: scripts/bench.sh [JOBS] [RUNS] [WARMUP]
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-4}"
RUNS="${2:-3}"
WARMUP="${3:-1}"
mkdir -p results
cargo build --release -p padfa-bench --bin analysis_stats
# Stage outputs under target/ (gitignored) while the benchmark runs, so
# the git_rev stamped into the JSON reflects the committed tree rather
# than the half-written outputs of this very script, then move them
# into place.
./target/release/analysis_stats --jobs "$JOBS" --runs "$RUNS" --warmup "$WARMUP" \
    --out target/BENCH_analysis.json.tmp \
    | tee target/analysis_stats.txt.tmp
mv target/analysis_stats.txt.tmp results/analysis_stats.txt
cp target/BENCH_analysis.json.tmp results/BENCH_analysis.json
mv target/BENCH_analysis.json.tmp BENCH_analysis.json
echo "Wrote BENCH_analysis.json (and results/analysis_stats.txt)."
