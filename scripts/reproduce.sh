#!/usr/bin/env bash
# Regenerate every table and figure of the evaluation into results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p padfa-bench
./target/release/table1 --verify | tee results/table1.txt
./target/release/table2        | tee results/table2.txt
./target/release/speedups      | tee results/speedups.txt
./target/release/ablation      | tee results/ablation.txt
./target/release/comparators   | tee results/comparators.txt
echo "All outputs captured under results/."
