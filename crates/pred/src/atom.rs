//! Predicate atoms: affine comparisons canonicalized into the linear
//! domain, plus opaque residual comparisons.

use padfa_ir::{affine, BoolExpr, CmpOp, Expr};
use padfa_omega::{CKind, Constraint, LinExpr, Var};
use std::fmt;

/// Kind of an affine atom (the canonical comparisons against zero).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AtomKind {
    /// `expr >= 0`
    Geq,
    /// `expr == 0`
    Eq,
}

/// One indivisible predicate.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Atom {
    /// An affine comparison, canonicalized so that syntactically
    /// different spellings (`i < n`, `n > i`, `i + 1 <= n`) compare equal.
    Affine { expr: LinExpr, kind: AtomKind },
    /// A comparison the linear engine cannot interpret (real-valued
    /// operands, array reads, `mod`, intrinsics). Still run-time
    /// evaluable.
    Opaque(BoolExpr),
}

impl Atom {
    /// Canonicalize a comparison. `Ne` is disjunctive and must be split
    /// by the caller; passing it returns `None` (as does any `Ne` the
    /// caller wants kept opaque).
    pub fn from_cmp(op: CmpOp, a: &Expr, b: &Expr) -> Option<Atom> {
        let la = affine::to_linexpr(a)?;
        let lb = affine::to_linexpr(b)?;
        Some(match op {
            CmpOp::Ge => Atom::affine_geq(la - lb),
            CmpOp::Gt => Atom::affine_geq(la - lb - LinExpr::constant(1)),
            CmpOp::Le => Atom::affine_geq(lb - la),
            CmpOp::Lt => Atom::affine_geq(lb - la - LinExpr::constant(1)),
            CmpOp::Eq => Atom::Affine {
                expr: la - lb,
                kind: AtomKind::Eq,
            },
            CmpOp::Ne => return None,
        })
    }

    /// `expr >= 0`.
    pub fn affine_geq(expr: LinExpr) -> Atom {
        Atom::Affine {
            expr,
            kind: AtomKind::Geq,
        }
    }

    /// The constraint equivalent (affine atoms only).
    pub fn to_constraint(&self) -> Option<Constraint> {
        match self {
            Atom::Affine { expr, kind } => Some(match kind {
                AtomKind::Geq => Constraint::geq0(expr.clone()),
                AtomKind::Eq => Constraint::eq0(expr.clone()),
            }),
            Atom::Opaque(_) => None,
        }
    }

    /// Build from a constraint.
    pub fn from_constraint(c: &Constraint) -> Atom {
        Atom::Affine {
            expr: c.expr.clone(),
            kind: match c.kind {
                CKind::Geq => AtomKind::Geq,
                CKind::Eq => AtomKind::Eq,
            },
        }
    }

    /// Fold to a boolean when the atom is variable-free.
    pub fn const_value(&self) -> Option<bool> {
        match self {
            Atom::Affine { expr, kind } if expr.is_const() => Some(match kind {
                AtomKind::Geq => expr.konst() >= 0,
                AtomKind::Eq => expr.konst() == 0,
            }),
            Atom::Opaque(BoolExpr::Lit(v)) => Some(*v),
            _ => None,
        }
    }

    /// True when the two atoms are exact logical complements.
    pub fn is_complement_of(&self, other: &Atom) -> bool {
        match (self, other) {
            (
                Atom::Affine {
                    expr: a,
                    kind: AtomKind::Geq,
                },
                Atom::Affine {
                    expr: b,
                    kind: AtomKind::Geq,
                },
            ) => {
                // ¬(a >= 0) is (-a - 1 >= 0): check b == -a - 1.
                *b == a.clone().scaled(-1) - LinExpr::constant(1)
            }
            (
                Atom::Opaque(BoolExpr::Cmp(op1, x1, y1)),
                Atom::Opaque(BoolExpr::Cmp(op2, x2, y2)),
            ) => op1.negate() == *op2 && x1 == x2 && y1 == y2,
            _ => false,
        }
    }

    /// The scalar variables read by this atom.
    pub fn scalar_vars(&self, out: &mut Vec<Var>) {
        match self {
            Atom::Affine { expr, .. } => {
                for (v, _) in expr.terms() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            Atom::Opaque(b) => b.scalar_vars(out),
        }
    }

    /// True when evaluating the atom reads no array elements.
    pub fn is_scalar_only(&self) -> bool {
        match self {
            Atom::Affine { .. } => true,
            Atom::Opaque(b) => b.is_scalar_only(),
        }
    }

    /// Render back into an evaluable [`BoolExpr`].
    pub fn to_bool_expr(&self) -> BoolExpr {
        match self {
            Atom::Affine { expr, kind } => {
                let e = linexpr_to_expr(expr);
                match kind {
                    AtomKind::Geq => BoolExpr::cmp(CmpOp::Ge, e, Expr::int(0)),
                    AtomKind::Eq => BoolExpr::cmp(CmpOp::Eq, e, Expr::int(0)),
                }
            }
            Atom::Opaque(b) => b.clone(),
        }
    }
}

/// Render a linear expression back into IR syntax.
pub fn linexpr_to_expr(l: &LinExpr) -> Expr {
    let mut acc: Option<Expr> = None;
    for (v, c) in l.terms() {
        let term = if c == 1 {
            Expr::Scalar(v)
        } else if c == -1 {
            Expr::Neg(Box::new(Expr::Scalar(v)))
        } else {
            Expr::Mul(Box::new(Expr::int(c)), Box::new(Expr::Scalar(v)))
        };
        acc = Some(match acc {
            None => term,
            Some(a) => Expr::Add(Box::new(a), Box::new(term)),
        });
    }
    let k = l.konst();
    match acc {
        None => Expr::int(k),
        Some(a) if k == 0 => a,
        Some(a) if k > 0 => Expr::Add(Box::new(a), Box::new(Expr::int(k))),
        Some(a) => Expr::Sub(Box::new(a), Box::new(Expr::int(-k))),
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Affine { expr, kind } => match kind {
                AtomKind::Geq => write!(f, "{expr} >= 0"),
                AtomKind::Eq => write!(f, "{expr} == 0"),
            },
            Atom::Opaque(b) => write!(f, "{}", padfa_ir::pretty::bool_expr(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_ir::parse::parse_bool_expr;

    fn atom_of(src: &str) -> Atom {
        match parse_bool_expr(src).unwrap() {
            BoolExpr::Cmp(op, a, b) => Atom::from_cmp(op, &a, &b).unwrap(),
            other => panic!("not a comparison: {other:?}"),
        }
    }

    #[test]
    fn canonicalization_identifies_spellings() {
        // i < n  ==  i + 1 <= n  ==  n > i
        assert_eq!(atom_of("i < n"), atom_of("i + 1 <= n"));
        assert_eq!(atom_of("i < n"), atom_of("n > i"));
    }

    #[test]
    fn complement_detection_affine() {
        let a = atom_of("i < n");
        let b = atom_of("i >= n");
        assert!(a.is_complement_of(&b));
        assert!(b.is_complement_of(&a));
        assert!(!a.is_complement_of(&atom_of("i <= n")));
    }

    #[test]
    fn complement_detection_opaque() {
        let x = Expr::scalar("x");
        let a = Atom::Opaque(BoolExpr::cmp(CmpOp::Gt, x.clone(), Expr::real(0.5)));
        let b = Atom::Opaque(BoolExpr::cmp(CmpOp::Le, x, Expr::real(0.5)));
        assert!(a.is_complement_of(&b));
    }

    #[test]
    fn const_folding() {
        assert_eq!(atom_of("1 < 2").const_value(), Some(true));
        assert_eq!(atom_of("2 < 1").const_value(), Some(false));
        assert_eq!(atom_of("i < 2").const_value(), None);
    }

    #[test]
    fn round_trip_to_bool_expr() {
        let a = atom_of("2 * i + 1 <= n");
        let b = a.to_bool_expr();
        // Must be evaluable: i = 3, n = 7 => 7 <= 7: true.
        match &b {
            BoolExpr::Cmp(CmpOp::Ge, lhs, _) => {
                let l = affine::to_linexpr(lhs).unwrap();
                let env = |v: Var| {
                    if v == Var::new("i") {
                        Some(3)
                    } else if v == Var::new("n") {
                        Some(7)
                    } else {
                        None
                    }
                };
                assert_eq!(l.eval(&env), Some(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ne_is_rejected() {
        let b = parse_bool_expr("i != n").unwrap();
        if let BoolExpr::Cmp(op, a, c) = b {
            assert!(Atom::from_cmp(op, &a, &c).is_none());
        }
    }

    #[test]
    fn constraint_round_trip() {
        let a = atom_of("i <= n");
        let c = a.to_constraint().unwrap();
        assert_eq!(Atom::from_constraint(&c), a);
    }
}
