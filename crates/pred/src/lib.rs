//! # padfa-pred
//!
//! The predicate domain of predicated array data-flow analysis
//! (Moon & Hall, PPoPP 1999).
//!
//! A predicate is an arbitrary run-time evaluable boolean expression over
//! program scalars. Unlike prior guarded analyses (Gu/Li/Lee), predicates
//! here are not restricted to a compiler-understood domain: any
//! comparison the program can evaluate may guard a data-flow value, which
//! is what lets the analysis emit *run-time parallelization tests*.
//!
//! The crate provides:
//!
//! * [`Pred`] — negation-normal predicates with `True`/`False` units,
//!   flattening, complement detection, and affine contradiction folding;
//! * implication testing ([`Pred::implies`]) via the linear engine;
//! * **predicate embedding** ([`Pred::to_systems`]): translating an
//!   affine predicate into constraint systems that can be intersected
//!   into an array region;
//! * **predicate extraction** ([`extract_symbolic`]): splitting the
//!   constraints of a region that mention only symbolic (loop-invariant)
//!   variables out into a predicate — the inverse translation, used to
//!   derive emptiness conditions and divisibility tests;
//! * a run-time cost model ([`Pred::cost`], [`Pred::is_runtime_testable`])
//!   identifying the paper's "low-cost" tests.
//!
//! ## Example
//!
//! ```
//! use padfa_pred::Pred;
//! use padfa_omega::Limits;
//!
//! let p = |s: &str| Pred::from_bool(&padfa_ir::parse::parse_bool_expr(s).unwrap());
//!
//! // Canonicalization identifies spellings; complements annihilate.
//! assert_eq!(p("i < n"), p("n > i"));
//! assert_eq!(p("x > 5 and x <= 5"), Pred::False);
//!
//! // Implication goes through the linear engine.
//! assert!(p("x == 4").implies(&p("x >= 2 and x <= 7"), Limits::default()));
//!
//! // A derived run-time test must be cheap and scalar-only.
//! let test = p("x <= 5 and m > 100").negate().negate();
//! assert!(test.is_runtime_testable());
//! assert_eq!(test.cost(), 2);
//! ```

pub mod atom;
pub mod pred;

pub use atom::{Atom, AtomKind};
pub use pred::{extract_symbolic, Pred};
