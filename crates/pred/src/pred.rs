//! Predicates in negation normal form, with embedding and extraction.

use crate::atom::Atom;
use padfa_ir::{affine, BoolExpr, CmpOp};
use padfa_omega::{Constraint, Limits, System, Var};
use std::fmt;

/// A predicate in negation normal form.
///
/// Invariants maintained by the smart constructors:
/// * `And`/`Or` lists are flattened, deduplicated, and have length >= 2;
/// * constant atoms fold to `True`/`False`;
/// * a conjunction containing complementary atoms folds to `False` (and
///   dually for disjunctions);
/// * a fully-affine conjunction proven unsatisfiable folds to `False`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Pred {
    True,
    False,
    Atom(Atom),
    And(Vec<Pred>),
    Or(Vec<Pred>),
}

impl Pred {
    /// Lower a boolean expression. Affine comparisons canonicalize into
    /// linear atoms; everything else stays opaque (still evaluable at run
    /// time). `Ne` over affine operands splits into a disjunction.
    pub fn from_bool(b: &BoolExpr) -> Pred {
        Pred::from_bool_polarity(b, false)
    }

    fn from_bool_polarity(b: &BoolExpr, neg: bool) -> Pred {
        match b {
            BoolExpr::Lit(v) => {
                if *v != neg {
                    Pred::True
                } else {
                    Pred::False
                }
            }
            BoolExpr::Not(inner) => Pred::from_bool_polarity(inner, !neg),
            BoolExpr::And(a, c) => {
                let l = Pred::from_bool_polarity(a, neg);
                let r = Pred::from_bool_polarity(c, neg);
                if neg {
                    Pred::or(l, r)
                } else {
                    Pred::and(l, r)
                }
            }
            BoolExpr::Or(a, c) => {
                let l = Pred::from_bool_polarity(a, neg);
                let r = Pred::from_bool_polarity(c, neg);
                if neg {
                    Pred::and(l, r)
                } else {
                    Pred::or(l, r)
                }
            }
            BoolExpr::Cmp(op, a, c) => {
                let op = if neg { op.negate() } else { *op };
                if op == CmpOp::Ne {
                    // Affine `!=` splits; opaque `!=` stays one atom.
                    if let (Some(_), Some(_)) = (affine::to_linexpr(a), affine::to_linexpr(c)) {
                        let lt = Atom::from_cmp(CmpOp::Lt, a, c).unwrap();
                        let gt = Atom::from_cmp(CmpOp::Gt, a, c).unwrap();
                        return Pred::or(Pred::Atom(lt), Pred::Atom(gt));
                    }
                    return Pred::Atom(Atom::Opaque(BoolExpr::Cmp(op, a.clone(), c.clone())));
                }
                match Atom::from_cmp(op, a, c) {
                    Some(atom) => Pred::atom(atom),
                    None => Pred::Atom(Atom::Opaque(BoolExpr::Cmp(op, a.clone(), c.clone()))),
                }
            }
        }
    }

    /// Wrap an atom, folding constants.
    pub fn atom(a: Atom) -> Pred {
        match a.const_value() {
            Some(true) => Pred::True,
            Some(false) => Pred::False,
            None => Pred::Atom(a),
        }
    }

    /// Conjunction with unit folding, flattening, dedup, complement and
    /// affine-contradiction detection.
    pub fn and(a: Pred, b: Pred) -> Pred {
        Pred::and_all(vec![a, b])
    }

    /// N-ary conjunction.
    pub fn and_all(ps: Vec<Pred>) -> Pred {
        let mut parts: Vec<Pred> = Vec::new();
        let mut stack = ps;
        while let Some(p) = stack.pop() {
            match p {
                Pred::True => {}
                Pred::False => return Pred::False,
                Pred::And(inner) => stack.extend(inner),
                other => parts.push(other),
            }
        }
        // Canonical order first, then drop adjacent duplicates:
        // O(n log n) where the old `contains` scan was quadratic in the
        // width of the conjunction.
        parts.sort_by(Pred::cmp_structural);
        parts.dedup();
        // Complementary atom pair => false.
        for i in 0..parts.len() {
            for j in i + 1..parts.len() {
                if let (Pred::Atom(x), Pred::Atom(y)) = (&parts[i], &parts[j]) {
                    if x.is_complement_of(y) {
                        return Pred::False;
                    }
                }
            }
        }
        // Fully-affine conjunction: ask the linear engine.
        if parts.len() >= 2 {
            if let Some(cs) = parts
                .iter()
                .map(|p| match p {
                    Pred::Atom(a) => a.to_constraint(),
                    _ => None,
                })
                .collect::<Option<Vec<Constraint>>>()
            {
                if System::from_constraints(cs).is_empty(Limits::default()) {
                    return Pred::False;
                }
            }
        }
        // Implication pruning among affine atoms: in a conjunction, an
        // atom implied by another is redundant (x > 5 ∧ x > 3 → x > 5).
        prune_implied(&mut parts, /*conjunction=*/ true);
        match parts.len() {
            0 => Pred::True,
            1 => parts.pop().unwrap(),
            // Already sorted; `prune_implied` preserves relative order.
            _ => Pred::And(parts),
        }
    }

    /// Disjunction with unit folding, flattening, dedup, and complement
    /// detection.
    pub fn or(a: Pred, b: Pred) -> Pred {
        Pred::or_all(vec![a, b])
    }

    /// N-ary disjunction.
    pub fn or_all(ps: Vec<Pred>) -> Pred {
        let mut parts: Vec<Pred> = Vec::new();
        let mut stack = ps;
        while let Some(p) = stack.pop() {
            match p {
                Pred::False => {}
                Pred::True => return Pred::True,
                Pred::Or(inner) => stack.extend(inner),
                other => parts.push(other),
            }
        }
        // Same sort + adjacent-dedup canonicalization as `and_all`.
        parts.sort_by(Pred::cmp_structural);
        parts.dedup();
        for i in 0..parts.len() {
            for j in i + 1..parts.len() {
                if let (Pred::Atom(x), Pred::Atom(y)) = (&parts[i], &parts[j]) {
                    if x.is_complement_of(y) {
                        return Pred::True;
                    }
                }
            }
        }
        // Dual pruning: in a disjunction, an atom that implies another
        // is redundant (x > 5 ∨ x > 3 → x > 3).
        prune_implied(&mut parts, /*conjunction=*/ false);
        match parts.len() {
            0 => Pred::False,
            1 => parts.pop().unwrap(),
            _ => Pred::Or(parts),
        }
    }

    /// Structural ordering for canonical operand lists: constants, then
    /// affine atoms (by expression), then opaque atoms (by rendering),
    /// then conjunctions, then disjunctions.
    pub fn cmp_structural(&self, other: &Pred) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(p: &Pred) -> u8 {
            match p {
                Pred::False => 0,
                Pred::True => 1,
                Pred::Atom(Atom::Affine { .. }) => 2,
                Pred::Atom(Atom::Opaque(_)) => 3,
                Pred::And(_) => 4,
                Pred::Or(_) => 5,
            }
        }
        rank(self)
            .cmp(&rank(other))
            .then_with(|| match (self, other) {
                (
                    Pred::Atom(Atom::Affine { expr: a, kind: ka }),
                    Pred::Atom(Atom::Affine { expr: b, kind: kb }),
                ) => {
                    // Eq before Geq, matching the old `{:?}`-string compare.
                    fn kind_rank(k: &crate::atom::AtomKind) -> u8 {
                        match k {
                            crate::atom::AtomKind::Eq => 0,
                            crate::atom::AtomKind::Geq => 1,
                        }
                    }
                    a.cmp_structural(b)
                        .then_with(|| kind_rank(ka).cmp(&kind_rank(kb)))
                }
                (Pred::Atom(Atom::Opaque(a)), Pred::Atom(Atom::Opaque(b))) => {
                    padfa_ir::pretty::bool_expr(a).cmp(&padfa_ir::pretty::bool_expr(b))
                }
                (Pred::And(xs), Pred::And(ys)) | (Pred::Or(xs), Pred::Or(ys)) => {
                    xs.len().cmp(&ys.len()).then_with(|| {
                        for (x, y) in xs.iter().zip(ys) {
                            let c = x.cmp_structural(y);
                            if c != Ordering::Equal {
                                return c;
                            }
                        }
                        Ordering::Equal
                    })
                }
                _ => Ordering::Equal,
            })
    }

    /// Logical negation (stays in negation normal form).
    pub fn negate(&self) -> Pred {
        match self {
            Pred::True => Pred::False,
            Pred::False => Pred::True,
            Pred::And(ps) => Pred::or_all(ps.iter().map(|p| p.negate()).collect()),
            Pred::Or(ps) => Pred::and_all(ps.iter().map(|p| p.negate()).collect()),
            Pred::Atom(a) => match a {
                Atom::Affine { .. } => {
                    let c = a.to_constraint().unwrap();
                    match c.kind {
                        padfa_omega::CKind::Geq => {
                            Pred::atom(Atom::from_constraint(&c.negate_geq()))
                        }
                        padfa_omega::CKind::Eq => {
                            let (p, n) = c.as_geq_pair();
                            Pred::or(
                                Pred::atom(Atom::from_constraint(&p.negate_geq())),
                                Pred::atom(Atom::from_constraint(&n.negate_geq())),
                            )
                        }
                    }
                }
                Atom::Opaque(b) => Pred::from_bool_polarity(b, true),
            },
        }
    }

    /// True when this predicate is the constant `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Pred::True)
    }

    /// True when this predicate is the constant `false`.
    pub fn is_false(&self) -> bool {
        matches!(self, Pred::False)
    }

    /// Predicate **embedding**: the DNF of this predicate as constraint
    /// systems, when every atom is affine. Intersecting these systems
    /// into an array region expresses "this region is accessed only when
    /// the predicate holds" inside the linear domain.
    pub fn to_systems(&self, max_disjuncts: usize) -> Option<Vec<System>> {
        fn go(p: &Pred, cap: usize) -> Option<Vec<Vec<Constraint>>> {
            match p {
                Pred::True => Some(vec![vec![]]),
                Pred::False => Some(vec![]),
                Pred::Atom(a) => Some(vec![vec![a.to_constraint()?]]),
                Pred::And(ps) => {
                    let mut acc: Vec<Vec<Constraint>> = vec![vec![]];
                    for p in ps {
                        let d = go(p, cap)?;
                        let mut next = Vec::new();
                        for a in &acc {
                            for b in &d {
                                let mut c = a.clone();
                                c.extend(b.iter().cloned());
                                next.push(c);
                                if next.len() > cap {
                                    return None;
                                }
                            }
                        }
                        acc = next;
                    }
                    Some(acc)
                }
                Pred::Or(ps) => {
                    let mut acc = Vec::new();
                    for p in ps {
                        acc.extend(go(p, cap)?);
                        if acc.len() > cap {
                            return None;
                        }
                    }
                    Some(acc)
                }
            }
        }
        let dnf = go(self, max_disjuncts)?;
        Some(dnf.into_iter().map(System::from_constraints).collect())
    }

    /// Sound implication test (`true` is definite, `false` is unknown).
    pub fn implies(&self, other: &Pred, limits: Limits) -> bool {
        if self == other || other.is_true() || self.is_false() {
            return true;
        }
        // Conjunction superset: (a ∧ b ∧ c) ⇒ (a ∧ c).
        let parts_of = |p: &Pred| -> Vec<Pred> {
            match p {
                Pred::And(ps) => ps.clone(),
                other => vec![other.clone()],
            }
        };
        let lhs = parts_of(self);
        let rhs = parts_of(other);
        if rhs.iter().all(|r| lhs.contains(r)) {
            return true;
        }
        // Affine check: lhs ∧ ¬rhs empty.
        let neg = other.negate();
        if let (Some(l), Some(n)) = (self.to_systems(8), neg.to_systems(8)) {
            return l
                .iter()
                .all(|ls| n.iter().all(|ns| ls.and(ns).is_empty(limits)));
        }
        false
    }

    /// Evaluate over an integer environment (used in tests and by the
    /// executor for affine predicates; opaque atoms are delegated).
    pub fn eval(&self, atom_eval: &dyn Fn(&Atom) -> Option<bool>) -> Option<bool> {
        match self {
            Pred::True => Some(true),
            Pred::False => Some(false),
            Pred::Atom(a) => atom_eval(a),
            Pred::And(ps) => {
                for p in ps {
                    if !p.eval(atom_eval)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            Pred::Or(ps) => {
                for p in ps {
                    if p.eval(atom_eval)? {
                        return Some(true);
                    }
                }
                Some(false)
            }
        }
    }

    /// Render into an evaluable boolean expression (for two-version loop
    /// code generation).
    pub fn to_bool_expr(&self) -> BoolExpr {
        match self {
            Pred::True => BoolExpr::Lit(true),
            Pred::False => BoolExpr::Lit(false),
            Pred::Atom(a) => a.to_bool_expr(),
            Pred::And(ps) => ps
                .iter()
                .map(|p| p.to_bool_expr())
                .reduce(BoolExpr::and)
                .unwrap_or(BoolExpr::Lit(true)),
            Pred::Or(ps) => ps
                .iter()
                .map(|p| p.to_bool_expr())
                .reduce(BoolExpr::or)
                .unwrap_or(BoolExpr::Lit(false)),
        }
    }

    /// Run-time evaluation cost: number of atoms, with opaque atoms
    /// counted double. The paper's tests are cheap scalar expressions;
    /// the analysis discards candidate tests whose cost exceeds a budget.
    pub fn cost(&self) -> u32 {
        match self {
            Pred::True | Pred::False => 0,
            Pred::Atom(Atom::Affine { .. }) => 1,
            Pred::Atom(Atom::Opaque(_)) => 2,
            Pred::And(ps) | Pred::Or(ps) => ps.iter().map(|p| p.cost()).sum(),
        }
    }

    /// True when the predicate can be evaluated before loop entry by
    /// reading scalars only (no array elements): the requirement for a
    /// low-cost run-time test.
    pub fn is_runtime_testable(&self) -> bool {
        match self {
            Pred::True | Pred::False => true,
            Pred::Atom(a) => a.is_scalar_only(),
            Pred::And(ps) | Pred::Or(ps) => ps.iter().all(|p| p.is_runtime_testable()),
        }
    }

    /// The scalar variables the predicate reads.
    pub fn scalar_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        fn go(p: &Pred, out: &mut Vec<Var>) {
            match p {
                Pred::True | Pred::False => {}
                Pred::Atom(a) => a.scalar_vars(out),
                Pred::And(ps) | Pred::Or(ps) => {
                    for p in ps {
                        go(p, out);
                    }
                }
            }
        }
        go(self, &mut out);
        out
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::False => write!(f, "false"),
            Pred::Atom(a) => write!(f, "{a}"),
            Pred::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Pred::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Drop operands subsumed by a sibling: in a conjunction a part implied
/// by another part is redundant; in a disjunction a part that implies
/// another is. Only affine-atom pairs are checked (cheap and exact).
fn prune_implied(parts: &mut Vec<Pred>, conjunction: bool) {
    if parts.len() < 2 || parts.len() > 8 {
        return;
    }
    let limits = Limits::default();
    let mut dead = vec![false; parts.len()];
    for i in 0..parts.len() {
        if dead[i] {
            continue;
        }
        let Pred::Atom(Atom::Affine { .. }) = &parts[i] else {
            continue;
        };
        for j in 0..parts.len() {
            if i == j || dead[j] {
                continue;
            }
            let Pred::Atom(Atom::Affine { .. }) = &parts[j] else {
                continue;
            };
            let redundant = if conjunction {
                // parts[j] implied by parts[i]: drop j.
                parts[i].implies(&parts[j], limits)
            } else {
                // parts[j] implies parts[i]: j is the stronger claim and
                // contributes nothing to the disjunction... drop j.
                parts[j].implies(&parts[i], limits)
            };
            if redundant {
                dead[j] = true;
            }
        }
    }
    let mut keep = dead.iter().map(|d| !d);
    parts.retain(|_| keep.next().unwrap());
}

/// Predicate **extraction**: split a constraint system into the part
/// whose constraints mention only variables satisfying `is_symbolic`
/// (loop-invariant scalars) — returned as a predicate — and the residual
/// system over the remaining variables.
///
/// This is the translation the paper applies during `PredSubtract` (the
/// extracted predicate is the condition under which a subtraction
/// remainder is empty) and during `Reshape` (divisibility conditions).
pub fn extract_symbolic(sys: &System, is_symbolic: &dyn Fn(Var) -> bool) -> (Pred, System) {
    if sys.is_contradiction() {
        return (Pred::False, System::universe());
    }
    let mut pred_parts = Vec::new();
    let mut residual = System::universe();
    for c in sys.constraints() {
        if c.expr.vars().all(is_symbolic) {
            pred_parts.push(Pred::atom(Atom::from_constraint(c)));
        } else {
            residual.push(c.clone());
        }
    }
    (Pred::and_all(pred_parts), residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_ir::parse::parse_bool_expr;
    use padfa_omega::LinExpr;

    fn p(src: &str) -> Pred {
        Pred::from_bool(&parse_bool_expr(src).unwrap())
    }

    fn lim() -> Limits {
        Limits::default()
    }

    #[test]
    fn units_fold() {
        assert_eq!(p("true and x > 1"), p("x > 1"));
        assert_eq!(p("false and x > 1"), Pred::False);
        assert_eq!(p("false or x > 1"), p("x > 1"));
        assert_eq!(p("true or x > 1"), Pred::True);
    }

    #[test]
    fn complements_fold() {
        assert_eq!(p("x > 5 and x <= 5"), Pred::False);
        assert_eq!(p("x > 5 or x <= 5"), Pred::True);
    }

    #[test]
    fn affine_contradiction_detected() {
        assert_eq!(p("x > 5 and x < 3"), Pred::False);
        assert_ne!(p("x > 5 and x < 9"), Pred::False);
    }

    #[test]
    fn dedup_and_flatten() {
        let q = p("x > 1 and (x > 1 and y > 2)");
        match q {
            Pred::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected And, got {other}"),
        }
    }

    #[test]
    fn negate_round_trip() {
        let q = p("x > 5 and y <= 3");
        let n = q.negate();
        assert!(matches!(n, Pred::Or(_)));
        assert_eq!(n.negate(), q);
    }

    #[test]
    fn ne_splits_affine_only() {
        let q = p("i != n");
        assert!(matches!(q, Pred::Or(_)));
        let r = p("x != 0.5");
        assert!(matches!(r, Pred::Atom(Atom::Opaque(_))));
    }

    #[test]
    fn double_negation_via_not() {
        assert_eq!(p("not (not (x > 1))"), p("x > 1"));
        assert_eq!(p("not (x > 1)"), p("x <= 1"));
    }

    #[test]
    fn implication_syntactic_and_affine() {
        assert!(p("x > 5").implies(&Pred::True, lim()));
        assert!(Pred::False.implies(&p("x > 5"), lim()));
        assert!(p("x > 5 and y > 0").implies(&p("x > 5"), lim()));
        assert!(p("x > 5").implies(&p("x > 3"), lim()));
        assert!(!p("x > 3").implies(&p("x > 5"), lim()));
        assert!(p("x == 4").implies(&p("x >= 2 and x <= 7"), lim()));
    }

    #[test]
    fn opaque_implication_is_conservative() {
        let a = p("x > 0.5");
        let b = p("x > 0.1");
        // True over the reals, but we cannot prove it: must answer false.
        assert!(!a.implies(&b, lim()));
        // Reflexive case still works syntactically.
        assert!(a.implies(&a, lim()));
    }

    #[test]
    fn embedding_produces_systems() {
        let q = p("i >= 1 and i <= n");
        let sys = q.to_systems(8).unwrap();
        assert_eq!(sys.len(), 1);
        assert_eq!(sys[0].len(), 2);
        let r = p("i < 1 or i > n");
        assert_eq!(r.to_systems(8).unwrap().len(), 2);
        assert!(p("x > 0.5").to_systems(8).is_none());
    }

    #[test]
    fn eval_three_valued() {
        let q = p("x > 5 and y > 0");
        let eval_x_only = |a: &Atom| {
            let mut vars = Vec::new();
            a.scalar_vars(&mut vars);
            if vars == [Var::new("x")] {
                // x = 3: x > 5 is false.
                a.to_constraint().and_then(|c| c.eval(&|_| Some(3)))
            } else {
                None
            }
        };
        // Short-circuits on the false conjunct even though y is unknown.
        assert_eq!(q.eval(&eval_x_only), Some(false));
        let r = p("y > 0 and x > 5");
        assert_eq!(r.eval(&eval_x_only), Some(false), "order-insensitive");
    }

    #[test]
    fn cost_model() {
        assert_eq!(Pred::True.cost(), 0);
        assert_eq!(p("x > 1").cost(), 1);
        assert_eq!(p("x > 0.5").cost(), 2);
        assert_eq!(p("x > 1 and y > 2").cost(), 2);
        assert!(p("x > 1 and y > 2").is_runtime_testable());
        let arr = p("a[i] > 0.0");
        assert!(!arr.is_runtime_testable());
    }

    #[test]
    fn implication_pruning_in_conjunction() {
        assert_eq!(p("x > 5 and x > 3"), p("x > 5"));
        assert_eq!(p("x > 3 and x > 5"), p("x > 5"));
        assert_eq!(p("x >= 2 and x >= 2 and y > 0"), p("x >= 2 and y > 0"));
        // Unrelated atoms survive.
        match p("x > 5 and y > 3") {
            Pred::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected And, got {other}"),
        }
    }

    #[test]
    fn implication_pruning_in_disjunction() {
        assert_eq!(p("x > 5 or x > 3"), p("x > 3"));
        assert_eq!(p("x > 3 or x > 5"), p("x > 3"));
        match p("x > 5 or y > 3") {
            Pred::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected Or, got {other}"),
        }
    }

    #[test]
    fn wide_conjunction_dedup_is_canonical() {
        // Twelve distinct atoms over distinct variables, each appearing
        // twice, fed in two different orders. `prune_implied` skips lists
        // wider than 8, so the sort + adjacent-dedup canonicalization is
        // solely responsible for the result here.
        let atoms: Vec<Pred> = (0..12).map(|k| p(&format!("x{k} > {k}"))).collect();
        let fwd: Vec<Pred> = atoms.iter().chain(atoms.iter()).cloned().collect();
        let mut rev = fwd.clone();
        rev.reverse();
        let a = Pred::and_all(fwd.clone());
        let b = Pred::and_all(rev.clone());
        assert_eq!(a, b, "order-insensitive canonical form");
        match &a {
            Pred::And(parts) => assert_eq!(parts.len(), 12, "duplicates removed"),
            other => panic!("expected And, got {other}"),
        }
        let c = Pred::or_all(fwd);
        let d = Pred::or_all(rev);
        assert_eq!(c, d);
        match &c {
            Pred::Or(parts) => assert_eq!(parts.len(), 12),
            other => panic!("expected Or, got {other}"),
        }
    }

    #[test]
    fn pruning_keeps_opaque_atoms() {
        let q = p("x > 0.5 and x > 0.1");
        match q {
            Pred::And(parts) => assert_eq!(parts.len(), 2, "opaque atoms not compared"),
            other => panic!("expected And, got {other}"),
        }
    }

    #[test]
    fn extraction_splits_symbolics() {
        // System: { i >= 1, i <= 10, n >= 10 } with n symbolic, i not.
        let sys = System::from_constraints([
            Constraint::geq(LinExpr::var(Var::new("i")), LinExpr::constant(1)),
            Constraint::leq(LinExpr::var(Var::new("i")), LinExpr::constant(10)),
            Constraint::geq(LinExpr::var(Var::new("n")), LinExpr::constant(10)),
        ]);
        let (pred, residual) = extract_symbolic(&sys, &|v| v == Var::new("n"));
        assert_eq!(format!("{pred}"), "n - 10 >= 0");
        assert_eq!(residual.len(), 2);
        assert!(!residual.mentions(Var::new("n")));
    }

    #[test]
    fn extraction_of_contradiction() {
        let (pred, _) = extract_symbolic(&System::empty(), &|_| true);
        assert!(pred.is_false());
    }

    #[test]
    fn to_bool_expr_round_trip() {
        let q = p("x > 5 and y <= 3");
        let b = q.to_bool_expr();
        let q2 = Pred::from_bool(&b);
        assert_eq!(q, q2);
    }
}
