//! The service-layer fault matrix and behavioral contract, exercised
//! over real sockets against an in-process [`Server`].
//!
//! Acceptance (mirrors the batch-side fault matrix): under injected
//! worker panics, store IO faults mid-request, torn client disconnects,
//! and overload, the daemon never returns a wrong non-error result,
//! never crashes, and always drains to a clean exit.

use padfa_core::{IoFaultKind, IoFaultPlan, IoFaultSpec, Store, StoreConfig};
use padfa_rt::{ServiceFaultKind, ServiceFaultPlan};
use padfa_service::{check_exposition, Server, ServiceDeps, ServicePolicy};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A loop nest whose hot loop needs a run-time test — exercises the
/// predicated path end to end, not just a trivially parallel loop.
const PROGRAM: &str = "proc main(n: int, x: int) {
    array help[101];
    array a[100, 2];
    for@hot i = 1 to n {
        if (x > 5) { help[i] = a[i, 1]; }
        a[i, 2] = help[i + 1];
    }
}";

struct Reply {
    status: u16,
    headers: BTreeMap<String, String>,
    body: Vec<u8>,
}

/// Issue one request and read the reply to EOF (the server always
/// closes). Panics on transport errors: every test expects a live
/// server.
fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Reply {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut head = format!("{method} {target} HTTP/1.1\r\nHost: t\r\n");
    if method == "POST" {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    // Best-effort writes: an early reply (413, 429) can close the
    // socket while we are still sending the body.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let mut raw = Vec::new();
    // read_to_end surfaces ECONNRESET when the peer closed with unread
    // request bytes pending; keep whatever arrived before that.
    let _ = stream.read_to_end(&mut raw);
    parse_reply(&raw)
}

fn parse_reply(raw: &[u8]) -> Reply {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("no header terminator in reply");
    let head = std::str::from_utf8(&raw[..head_end]).unwrap();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let headers: BTreeMap<String, String> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    }
}

fn body_str(r: &Reply) -> String {
    String::from_utf8(r.body.clone()).unwrap()
}

fn analyze(addr: SocketAddr) -> Reply {
    request(addr, "POST", "/analyze", &[], PROGRAM.as_bytes())
}

fn quick_policy() -> ServicePolicy {
    ServicePolicy {
        read_timeout: Duration::from_millis(500),
        drain_deadline: Duration::from_secs(10),
        ..ServicePolicy::default()
    }
}

fn start(policy: ServicePolicy, deps: ServiceDeps) -> Server {
    Server::start("127.0.0.1:0", policy, deps).unwrap()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "padfa-service-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn endpoints_respond_with_their_contracts() {
    let server = start(quick_policy(), ServiceDeps::default());
    let addr = server.addr();

    let health = request(addr, "GET", "/healthz", &[], b"");
    assert_eq!(health.status, 200);
    assert_eq!(body_str(&health), "{\"status\":\"ok\"}");

    let ready = request(addr, "GET", "/readyz", &[], b"");
    assert_eq!(ready.status, 200);

    let ok = analyze(addr);
    assert_eq!(ok.status, 200);
    let body = body_str(&ok);
    assert!(body.contains("\"label\":\"hot\""), "body: {body}");
    assert!(body.contains("\"outcome\":\"parallel-if\""), "body: {body}");
    assert!(body.contains("\"test\":"), "body: {body}");
    assert!(!body.contains("ms\":"), "timing leaked into body: {body}");

    let explain = request(addr, "POST", "/explain?loop=hot", &[], PROGRAM.as_bytes());
    assert_eq!(explain.status, 200);
    let explain_body = body_str(&explain);
    assert!(explain_body.contains("\"winner\""), "body: {explain_body}");
    assert!(explain_body.contains("\"mechanisms\""));

    let missing = request(addr, "POST", "/explain?loop=nope", &[], PROGRAM.as_bytes());
    assert_eq!(missing.status, 404);
    assert!(body_str(&missing).contains("loop_not_found"));

    let metrics = request(addr, "GET", "/metrics", &[], b"");
    assert_eq!(metrics.status, 200);
    let text = body_str(&metrics);
    assert!(text.contains("padfa_service_requests"), "metrics: {text}");
    assert!(text.contains("padfa_service_latency_analyze_ns_count"));

    let nf = request(addr, "GET", "/nope", &[], b"");
    assert_eq!(nf.status, 404);
    let mna = request(addr, "GET", "/analyze", &[], b"");
    assert_eq!(mna.status, 405);
    let bad_variant = request(
        addr,
        "POST",
        "/analyze?variant=magic",
        &[],
        PROGRAM.as_bytes(),
    );
    assert_eq!(bad_variant.status, 400);
    let garbage = request(addr, "POST", "/analyze", &[], b"proc {{{{");
    assert_eq!(garbage.status, 400);
    assert!(body_str(&garbage).contains("\"kind\":\"parse\""));

    let report = server.shutdown();
    assert!(report.clean);
    assert_eq!(report.panics, 0);
    assert_eq!(report.completed, report.admitted);
}

#[test]
fn budget_headers_drive_typed_responses() {
    let server = start(quick_policy(), ServiceDeps::default());
    let addr = server.addr();

    // Strict + starved budget: typed 422, not a crash or a wrong result.
    let strict = request(
        addr,
        "POST",
        "/analyze",
        &[("X-Padfa-Max-Steps", "1"), ("X-Padfa-Strict", "1")],
        PROGRAM.as_bytes(),
    );
    assert_eq!(strict.status, 422);
    assert!(body_str(&strict).contains("budget_exhausted"));

    // Degrade (default): 200 with the degradation visible in the body.
    let degraded = request(
        addr,
        "POST",
        "/analyze",
        &[("X-Padfa-Max-Steps", "1")],
        PROGRAM.as_bytes(),
    );
    assert_eq!(degraded.status, 200);
    assert!(body_str(&degraded).contains("\"degraded_procs\":1"));

    let bad = request(
        addr,
        "POST",
        "/analyze",
        &[("X-Padfa-Max-Steps", "a lot")],
        PROGRAM.as_bytes(),
    );
    assert_eq!(bad.status, 400);

    assert!(server.shutdown().clean);
}

#[test]
fn oversized_and_lengthless_bodies_are_rejected() {
    let policy = ServicePolicy {
        max_body_bytes: 64,
        ..quick_policy()
    };
    let server = start(policy, ServiceDeps::default());
    let addr = server.addr();

    let big = request(addr, "POST", "/analyze", &[], &[b'x'; 1000]);
    assert_eq!(big.status, 413);

    // POST without Content-Length: write the head by hand.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /analyze HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    assert_eq!(parse_reply(&raw).status, 411);

    // The daemon still serves correctly afterwards.
    assert_eq!(request(addr, "GET", "/healthz", &[], b"").status, 200);
    assert!(server.shutdown().clean);
}

#[test]
fn concurrent_identical_requests_are_byte_identical() {
    let server = start(quick_policy(), ServiceDeps::default());
    let addr = server.addr();
    let reference = analyze(server.addr());
    assert_eq!(reference.status, 200);
    let expected = reference.body.clone();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let r = analyze(addr);
                assert_eq!(r.status, 200);
                r.body
            })
        })
        .collect();
    for t in threads {
        assert_eq!(t.join().unwrap(), expected, "concurrent body diverged");
    }
    assert!(server.shutdown().clean);
}

#[test]
fn warm_store_serves_byte_identical_responses() {
    let dir = temp_dir("warm");
    let open_store = || Arc::new(Store::open(StoreConfig::new(&dir, "test-rev")));

    // Cold server: first request populates the store, 8 concurrent
    // requests race it warm. All bodies must match.
    let server = start(
        quick_policy(),
        ServiceDeps {
            store: Some(open_store()),
            ..ServiceDeps::default()
        },
    );
    let addr = server.addr();
    let cold = analyze(addr);
    assert_eq!(cold.status, 200);
    let expected = cold.body.clone();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let r = analyze(addr);
                assert_eq!(r.status, 200);
                r.body
            })
        })
        .collect();
    for t in threads {
        assert_eq!(t.join().unwrap(), expected, "cold/racing body diverged");
    }
    assert!(server.shutdown().clean);

    // Fresh server over the same store directory: fully warm replay
    // must still be byte-identical.
    let server = start(
        quick_policy(),
        ServiceDeps {
            store: Some(open_store()),
            ..ServiceDeps::default()
        },
    );
    let warm = analyze(server.addr());
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, expected, "warm body diverged from cold");
    // The warm run actually hit the store.
    let metrics = request(server.addr(), "GET", "/metrics", &[], b"");
    let text = body_str(&metrics);
    let hits_line = text
        .lines()
        .find(|l| l.starts_with("padfa_store_hits "))
        .unwrap_or("padfa_store_hits 0");
    let hits: u64 = hits_line.split(' ').nth(1).unwrap().parse().unwrap();
    assert!(hits > 0, "warm request did not hit the store: {text}");
    assert!(server.shutdown().clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budgeted_requests_bypass_the_store() {
    let dir = temp_dir("bypass");
    let store = Arc::new(Store::open(StoreConfig::new(&dir, "test-rev")));
    let server = start(
        quick_policy(),
        ServiceDeps {
            store: Some(store),
            ..ServiceDeps::default()
        },
    );
    let addr = server.addr();
    let r = request(
        addr,
        "POST",
        "/analyze",
        &[("X-Padfa-Max-Steps", "100000000")],
        PROGRAM.as_bytes(),
    );
    assert_eq!(r.status, 200);
    let metrics = request(addr, "GET", "/metrics", &[], b"");
    let text = body_str(&metrics);
    // A budgeted request must never touch the store: no hits, no
    // misses, no puts recorded.
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("padfa_store_") {
            if let Some((name, v)) = rest.split_once(' ') {
                if ["hits", "misses", "puts"].contains(&name) {
                    assert_eq!(v, "0", "budgeted request touched the store: {line}");
                }
            }
        }
    }
    assert!(server.shutdown().clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_costs_one_500_and_the_pool_recovers() {
    // One worker, so the replacement path is load-bearing: if the
    // panicked worker is not replaced, request 2 hangs forever.
    let policy = ServicePolicy {
        workers: 1,
        ..quick_policy()
    };
    let deps = ServiceDeps {
        faults: ServiceFaultPlan::at(ServiceFaultKind::WorkerPanic, 1),
        ..ServiceDeps::default()
    };
    let server = start(policy, deps);
    let addr = server.addr();

    let hit = analyze(addr);
    assert_eq!(hit.status, 500);
    assert!(body_str(&hit).contains("\"kind\":\"panic\""));

    // The very next request must be served correctly by the fresh
    // worker — byte-identical to an unfaulted server's answer.
    let after = analyze(addr);
    assert_eq!(after.status, 200);
    assert!(body_str(&after).contains("\"outcome\":\"parallel-if\""));

    let report = server.shutdown();
    assert!(report.clean);
    assert_eq!(report.panics, 1);
    assert_eq!(report.admitted, 2);
    assert_eq!(report.completed, 2);
}

#[test]
fn repeated_panics_never_kill_the_daemon() {
    // Panic on every other request; the pool must absorb all of them.
    let mut plan = ServiceFaultPlan::none();
    for k in [1u64, 3, 5, 7] {
        plan = plan.with(padfa_rt::ServiceFaultSpec {
            at_request: k,
            kind: ServiceFaultKind::WorkerPanic,
        });
    }
    let policy = ServicePolicy {
        workers: 2,
        ..quick_policy()
    };
    let server = start(
        policy,
        ServiceDeps {
            faults: plan,
            ..ServiceDeps::default()
        },
    );
    let addr = server.addr();
    let mut codes = Vec::new();
    for _ in 0..8 {
        codes.push(analyze(addr).status);
    }
    assert_eq!(codes.iter().filter(|&&c| c == 500).count(), 4);
    assert_eq!(codes.iter().filter(|&&c| c == 200).count(), 4);
    let report = server.shutdown();
    assert!(report.clean);
    assert_eq!(report.panics, 4);
}

#[test]
fn torn_response_truncates_exactly_one_reply() {
    let deps = ServiceDeps {
        faults: ServiceFaultPlan::at(ServiceFaultKind::TornResponse, 1),
        ..ServiceDeps::default()
    };
    let server = start(quick_policy(), deps);
    let addr = server.addr();

    // Request 1: the server computes a full success response but tears
    // the write halfway. The client sees a short read against the
    // advertised Content-Length and must treat the reply as corrupt.
    let torn = analyze(addr);
    let advertised: usize = torn.headers.get("content-length").unwrap().parse().unwrap();
    assert!(
        torn.body.len() < advertised,
        "torn reply was complete: {} of {advertised} bytes",
        torn.body.len()
    );

    // Request 2 is whole again.
    let whole = analyze(addr);
    assert_eq!(whole.status, 200);
    assert_eq!(
        whole.body.len(),
        whole.headers["content-length"].parse::<usize>().unwrap()
    );
    assert!(server.shutdown().clean);
}

#[test]
fn store_io_faults_mid_request_degrade_silently() {
    let dir = temp_dir("storefault");
    // Exhaust write retries early: persistence degrades mid-request,
    // the response must not change.
    let faults = IoFaultPlan::at(IoFaultKind::WriteFail, 1)
        .with(IoFaultSpec {
            at_op: 2,
            kind: IoFaultKind::WriteFail,
        })
        .with(IoFaultSpec {
            at_op: 3,
            kind: IoFaultKind::WriteFail,
        });
    let store = Arc::new(Store::open(
        StoreConfig::new(&dir, "test-rev").with_faults(faults),
    ));
    let server = start(
        quick_policy(),
        ServiceDeps {
            store: Some(store),
            ..ServiceDeps::default()
        },
    );
    let addr = server.addr();
    let faulted = analyze(addr);
    assert_eq!(faulted.status, 200);

    // Reference: the same request against a faultless, storeless server.
    let clean = start(quick_policy(), ServiceDeps::default());
    let reference = analyze(clean.addr());
    assert_eq!(faulted.body, reference.body, "store fault changed a result");
    assert!(clean.shutdown().clean);
    assert!(server.shutdown().clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_client_disconnects_leave_the_daemon_serving() {
    let server = start(quick_policy(), ServiceDeps::default());
    let addr = server.addr();

    // Promise a body, send a fragment, vanish.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /analyze HTTP/1.1\r\nContent-Length: 5000\r\n\r\nproc ")
            .unwrap();
    } // dropped: RST or FIN mid-body

    // Say nothing at all until the read timeout reaps the connection.
    {
        let _s = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(700)); // > read_timeout
    }

    let after = analyze(addr);
    assert_eq!(after.status, 200);
    let report = server.shutdown();
    assert!(report.clean);
    assert_eq!(report.panics, 0);
}

/// The full forensics surface, driven end to end in one deterministic
/// admission sequence: trace-id echo (client-supplied and generated),
/// slow-request capture with digest + slow-log sidecar, post-hoc
/// attribution of a 422 by trace id, forced ring wraparound visible in
/// `/debug/flight`, and a `/metrics` exposition that passes the
/// in-repo checker. One test, because the assertions share the
/// process-global flight ring and must run in a known order.
#[test]
fn tracing_slow_forensics_and_debug_endpoints() {
    let slow_log = temp_dir("slowlog").join("slow.jsonl");
    let _ = std::fs::create_dir_all(slow_log.parent().unwrap());
    let faults = ServiceFaultPlan::at(ServiceFaultKind::SlowRequest { ms: 200 }, 2).with(
        padfa_rt::ServiceFaultSpec {
            at_request: 4,
            kind: ServiceFaultKind::RecorderOverflow,
        },
    );
    let policy = ServicePolicy {
        slow_request_ms: 50,
        slow_log: Some(slow_log.clone()),
        ..quick_policy()
    };
    let server = start(
        policy,
        ServiceDeps {
            faults,
            git_rev: "matrix-rev".to_string(),
            ..ServiceDeps::default()
        },
    );
    let addr = server.addr();

    // Admission 1: client-supplied trace id, echoed back verbatim.
    let tagged = request(
        addr,
        "POST",
        "/analyze",
        &[("X-Padfa-Trace-Id", "matrix-trace-alpha")],
        PROGRAM.as_bytes(),
    );
    assert_eq!(tagged.status, 200);
    assert_eq!(
        tagged.headers.get("x-padfa-trace-id").map(String::as_str),
        Some("matrix-trace-alpha")
    );

    // Admission 2: the injected 200 ms stall crosses the 50 ms slow
    // threshold; no client id, so the server generates one.
    let slow = analyze(addr);
    assert_eq!(slow.status, 200);
    let generated = slow.headers.get("x-padfa-trace-id").unwrap().clone();
    assert!(generated.starts_with("padfa-"), "generated id: {generated}");

    // Admission 3: strict starved budget — a 422 that must stay
    // attributable by its trace id after the fact.
    let strict = request(
        addr,
        "POST",
        "/analyze",
        &[
            ("X-Padfa-Max-Steps", "1"),
            ("X-Padfa-Strict", "1"),
            ("X-Padfa-Trace-Id", "matrix-trace-budget"),
        ],
        PROGRAM.as_bytes(),
    );
    assert_eq!(strict.status, 422);
    assert_eq!(
        strict.headers.get("x-padfa-trace-id").map(String::as_str),
        Some("matrix-trace-budget")
    );

    // Admission 4: flood the ring past capacity so wraparound
    // accounting is observable below.
    let flooded = analyze(addr);
    assert_eq!(flooded.status, 200);

    // /debug/requests: every request above is in the ring with its
    // trace id, outcome, and phase breakdown.
    let dbg = request(addr, "GET", "/debug/requests", &[], b"");
    assert_eq!(dbg.status, 200);
    let records = body_str(&dbg);
    assert!(records.contains("\"trace_id\":\"matrix-trace-alpha\""));
    assert!(records.contains("\"phase\":\"request\""), "no request span");
    let slow_rec = records
        .split("{\"admission\"")
        .find(|r| r.contains(&format!("\"trace_id\":\"{generated}\"")))
        .expect("slow request not in the debug ring");
    assert!(slow_rec.contains("\"slow\":true"), "record: {slow_rec}");
    assert!(
        !slow_rec.contains("\"digest\":null"),
        "no provenance digest"
    );
    let budget_rec = records
        .split("{\"admission\"")
        .find(|r| r.contains("\"trace_id\":\"matrix-trace-budget\""))
        .expect("422 request not in the debug ring");
    assert!(
        budget_rec.contains("\"error_kind\":\"budget_exhausted\""),
        "422 not attributable: {budget_rec}"
    );
    assert!(budget_rec.contains("\"status\":422"));

    // The slow record also landed in the slow-log sidecar.
    let logged = std::fs::read_to_string(&slow_log).expect("slow log missing");
    assert!(logged.contains(&format!("\"trace_id\":\"{generated}\"")));
    assert!(logged.contains("\"slow\":true"));

    // /debug/flight: the flood forced wraparound; events are present.
    let ring = request(addr, "GET", "/debug/flight", &[], b"");
    assert_eq!(ring.status, 200);
    let ring_body = body_str(&ring);
    assert!(ring_body.contains("\"events\":["), "body: {ring_body}");
    assert!(
        !ring_body.contains("\"overflows\":0,"),
        "flood did not wrap the ring"
    );

    // /metrics: typed, bucketed, and clean under the in-repo checker.
    let metrics = request(addr, "GET", "/metrics", &[], b"");
    assert_eq!(metrics.status, 200);
    let text = body_str(&metrics);
    assert!(text.contains("padfa_build_info{git_rev=\"matrix-rev\""));
    assert!(text.contains("_bucket{le=\""), "no histogram buckets");
    assert!(text.contains("padfa_service_slow_requests 1"), "{text}");
    if let Err(violations) = check_exposition(&text) {
        panic!("/metrics failed the exposition checker: {violations:?}");
    }

    assert!(server.shutdown().clean);
    let _ = std::fs::remove_dir_all(slow_log.parent().unwrap());
}

/// An injected worker panic must leave a flight-ring sidecar on disk
/// and name it in the typed 500 body, so the error report a client
/// files already points at the forensics file.
#[test]
fn panic_500_names_a_flight_dump_on_disk() {
    let dump_dir = temp_dir("flightdump");
    let policy = ServicePolicy {
        flight_dump_dir: Some(dump_dir.clone()),
        ..quick_policy()
    };
    let deps = ServiceDeps {
        faults: ServiceFaultPlan::at(ServiceFaultKind::WorkerPanic, 1),
        ..ServiceDeps::default()
    };
    let server = start(policy, deps);
    let hit = analyze(server.addr());
    assert_eq!(hit.status, 500);
    let body = body_str(&hit);
    assert!(body.contains("\"kind\":\"panic\""), "body: {body}");
    let needle = "\"flight_dump\":\"";
    let start = body.find(needle).expect("500 body names no flight dump") + needle.len();
    let path = &body[start..start + body[start..].find('"').unwrap()];
    let dump = std::fs::read_to_string(path).expect("flight dump not on disk");
    assert!(dump.contains("\"events\":["), "dump: {dump}");
    assert!(dump.contains("worker-panic"), "panic event not in dump");
    assert!(server.shutdown().clean);
    let _ = std::fs::remove_dir_all(&dump_dir);
}

#[test]
fn overload_sheds_with_429_and_drain_answers_queue_with_503() {
    // One worker pinned by a slow-loris client + queue depth 1: the
    // third connection must be shed immediately with Retry-After.
    let policy = ServicePolicy {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_millis(1500),
        drain_deadline: Duration::from_secs(10),
        ..ServicePolicy::default()
    };
    let server = start(policy, ServiceDeps::default());
    let addr = server.addr();

    // Pin the only worker: connect and say nothing.
    let pin = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200)); // let the worker pick it up

    // Fill the queue with a real request (it will be drained with 503).
    let queued = std::thread::spawn(move || analyze(addr));
    std::thread::sleep(Duration::from_millis(200));

    // Overflow: shed at the admission gate.
    let shed = analyze(addr);
    assert_eq!(shed.status, 429);
    assert_eq!(
        shed.headers.get("retry-after").map(String::as_str),
        Some("1")
    );
    assert!(body_str(&shed).contains("overloaded"));

    // Drain while the queue still holds the unstarted request: it gets
    // a 503, the pinned connection resolves via read timeout, and the
    // drain is clean.
    let report = server.shutdown();
    let queued_reply = queued.join().unwrap();
    assert_eq!(queued_reply.status, 503);
    assert!(body_str(&queued_reply).contains("draining"));
    assert!(report.clean, "drain exceeded its deadline");
    assert_eq!(report.shed, 1);
    assert_eq!(report.drained_in_queue, 1);
    drop(pin);
}
