//! # padfa-service
//!
//! Analysis-as-a-service: a long-running daemon wrapping the predicated
//! array data-flow analysis ([`padfa_core`]) behind a minimal HTTP/1.1
//! front end built purely on `std::net` — no external dependencies.
//!
//! ## Endpoints
//!
//! | method | path              | body           | response                            |
//! |--------|-------------------|----------------|-------------------------------------|
//! | POST   | `/analyze`        | program source | per-loop verdict JSON               |
//! | POST   | `/explain`        | program source | decision-provenance JSON            |
//! | GET    | `/healthz`        | —              | liveness (always 200 while up)      |
//! | GET    | `/readyz`         | —              | readiness (503 once draining)       |
//! | GET    | `/metrics`        | —              | Prometheus text exposition          |
//! | GET    | `/debug/requests` | —              | ring of recent request records      |
//! | GET    | `/debug/flight`   | —              | flight-recorder event-ring dump     |
//!
//! `/analyze` and `/explain` take `?variant=base|guarded|predicated`
//! (default `predicated`) and, for `/explain`, `?loop=<label-or-id>`.
//!
//! ## Request-scoped tracing
//!
//! Every request carries a trace id: the client's `X-Padfa-Trace-Id`
//! header value (sanitized) when present, a generated
//! `padfa-<admission>` id otherwise. The id is echoed back on the
//! response, every flight-recorder event emitted while the request is
//! being served is tagged with its FNV-1a key
//! ([`padfa_core::flight::trace_key`]), and the completed request's
//! record — status, budget use, store counters, per-phase time
//! breakdown — lands in the `/debug/requests` ring. Requests slower
//! than the policy threshold are additionally appended to the
//! slow-request log with their phase breakdown and a provenance digest
//! of the request body, so "why was *that* request slow" is answerable
//! after the fact without reproducing it.
//!
//! ## Robustness envelope
//!
//! The paper's analysis is a batch compiler pass; serving it means the
//! failure modes move from "rerun the command" to "the daemon must
//! absorb them". The server therefore provides:
//!
//! * **Bounded admission** — connections are accepted into a fixed-depth
//!   queue feeding a fixed pool of worker threads. When the queue is
//!   full the acceptor sheds load *immediately* with `429 Too Many
//!   Requests` + `Retry-After` instead of queueing unboundedly; once
//!   draining it answers `503 Service Unavailable`. In-flight work is
//!   bounded by the worker count, queued work by the queue depth, so
//!   memory use is bounded regardless of client behavior.
//! * **Per-request isolation** — every request gets a *fresh*
//!   [`padfa_core::AnalysisSession`] (bounded memory; no cross-request
//!   memo-table growth) warmed by one shared [`padfa_core::Store`], and
//!   runs under `catch_unwind`: a panic costs that one request a typed
//!   `500` body, never the process. A worker that panicked retires and
//!   a supervisor thread spawns a fresh replacement, so thread-local
//!   state can never leak across a panic boundary.
//! * **Per-request budgets** — `X-Padfa-Max-Steps` and
//!   `X-Padfa-Deadline-Ms` headers request a
//!   [`padfa_core::WorkBudget`]; the server clamps both against policy
//!   ceilings, so no client can buy more work than the operator allows.
//!   Budgeted requests bypass the store (replayed cached results would
//!   change step accounting and with it degradation decisions — see the
//!   store module docs), keeping budget degradation deterministic.
//! * **Socket hygiene** — read/write timeouts bound slow-loris clients;
//!   oversized headers or bodies are rejected (`413`) before they are
//!   buffered; responses always carry `Connection: close` so a wedged
//!   client cannot pin a worker.
//! * **Graceful drain** — [`Server::shutdown`] stops the acceptor,
//!   answers every queued-but-unstarted request `503`, lets in-flight
//!   requests finish (bounded by the drain deadline), flushes the
//!   store journal to disk, and reports what happened in a
//!   [`DrainReport`]. The CLI maps a clean drain to exit code 0.
//!
//! ## Determinism
//!
//! Analysis responses contain no timing, no request ids, and no
//! store-dependent fields, so N concurrent identical requests produce
//! byte-identical bodies whether the store is cold or warm — the same
//! invariant the batch CLI maintains, now load-bearing under
//! concurrency. Fault injection ([`padfa_rt::ServiceFaultPlan`] for
//! worker panics and torn responses, [`padfa_core::IoFaultPlan`] for
//! store IO) is keyed on deterministic admission order, so the service
//! fault matrix replays exactly.

// The daemon must stay up on arbitrary client input: unwinding is
// reserved for injected worker panics (caught at the request boundary)
// and everything else returns a typed HTTP error.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod http;
pub mod server;

pub use http::{check_exposition, prometheus_text, Request, RequestError, Response};
pub use server::{DrainReport, Server, ServiceDeps};

use std::time::Duration;

/// Ledger / response schema version, kept in lockstep with the CLI.
pub const SCHEMA_VERSION: u32 = 3;

/// Operator policy for the daemon: pool sizing, admission bounds,
/// budget ceilings, and socket hygiene. Everything is a plain field so
/// tests and the CLI can build policies directly.
#[derive(Clone, Debug)]
pub struct ServicePolicy {
    /// Worker threads (in-flight request bound).
    pub workers: usize,
    /// Admission queue depth; a full queue sheds with `429`.
    pub queue_depth: usize,
    /// `--jobs` for each request's analysis session. Results are
    /// bit-identical for any value (see the session docs); 1 keeps
    /// per-request footprint minimal since parallelism already comes
    /// from concurrent requests.
    pub jobs_per_request: usize,
    /// Budget applied when a request carries no `X-Padfa-Max-Steps`
    /// header. `None` = unlimited (required for store-backed serving).
    pub default_max_steps: Option<u64>,
    /// Hard ceiling on requested steps; explicit requests are clamped.
    pub max_steps_ceiling: Option<u64>,
    /// Deadline applied when a request carries no
    /// `X-Padfa-Deadline-Ms` header. `None` = no deadline.
    pub default_deadline_ms: Option<u64>,
    /// Hard ceiling on requested deadlines.
    pub deadline_ms_ceiling: Option<u64>,
    /// Socket read timeout (bounds slow-loris request bodies).
    pub read_timeout: Duration,
    /// Socket write timeout (bounds unread responses).
    pub write_timeout: Duration,
    /// Maximum request head (request line + headers) size in bytes.
    pub max_header_bytes: usize,
    /// Maximum request body size in bytes; larger bodies get `413`.
    pub max_body_bytes: usize,
    /// How long [`Server::shutdown`] waits for in-flight requests.
    pub drain_deadline: Duration,
    /// Value of the `Retry-After` header on shed (`429`/`503`) replies.
    pub retry_after_secs: u32,
    /// Requests whose total wall time reaches this many milliseconds
    /// are logged to the slow-request log with their per-phase flight
    /// breakdown. `0` disables slow-request capture.
    pub slow_request_ms: u64,
    /// Where slow-request records are appended (one JSON object per
    /// line). `None` logs to stderr only.
    pub slow_log: Option<std::path::PathBuf>,
    /// Capacity of the `/debug/requests` record ring.
    pub debug_ring: usize,
    /// Directory for flight-ring sidecar dumps written on worker panic
    /// and unclean drain. `None` uses the OS temp directory.
    pub flight_dump_dir: Option<std::path::PathBuf>,
}

impl Default for ServicePolicy {
    fn default() -> ServicePolicy {
        ServicePolicy {
            workers: 2,
            queue_depth: 32,
            jobs_per_request: 1,
            default_max_steps: None,
            max_steps_ceiling: None,
            default_deadline_ms: None,
            deadline_ms_ceiling: None,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            drain_deadline: Duration::from_secs(5),
            retry_after_secs: 1,
            slow_request_ms: 1000,
            slow_log: None,
            debug_ring: 64,
            flight_dump_dir: None,
        }
    }
}

impl ServicePolicy {
    /// Clamp-normalize: at least one worker, at least depth-1 queue.
    pub fn normalized(mut self) -> ServicePolicy {
        self.workers = self.workers.max(1);
        self.queue_depth = self.queue_depth.max(1);
        self.jobs_per_request = self.jobs_per_request.max(1);
        self.debug_ring = self.debug_ring.max(1);
        self
    }
}
