//! The daemon core: acceptor, bounded admission queue, worker pool with
//! panic-replacement supervision, request routing, and graceful drain.
//!
//! ## Request lifecycle
//!
//! ```text
//! accept ──► admission check ──► queue ──► worker: parse HTTP ──►
//!   route ──► fresh AnalysisSession (shared store) ──► respond ──► close
//!     │                              │
//!     └─ full: 429 + Retry-After     └─ panic: typed 500, worker retires,
//!        draining: 503                  supervisor spawns a replacement
//! ```
//!
//! The acceptor thread does only bounded work per connection (an
//! accept, a queue push, or a small shed write), so a flood of
//! connections cannot starve it. All socket reads happen on workers
//! under read timeouts. One request per connection (`Connection:
//! close`) keeps the worker state machine a straight line.
//!
//! ## Fault injection
//!
//! A [`ServiceFaultPlan`] keys deterministic faults on *admission
//! order* (the 1-based sequence number assigned at accept): an armed
//! `WorkerPanic` unwinds the worker inside its `catch_unwind` fence
//! after the request is parsed; an armed `TornResponse` truncates a
//! computed success response halfway through the write. Both leave the
//! daemon serving: the next request must succeed normally.

use crate::http::{json_escape, read_request, Request, RequestError, Response};
use crate::{ServicePolicy, SCHEMA_VERSION};
use padfa_core::flight;
use padfa_core::{
    analyze_program_session, AnalysisError, AnalysisSession, LoopReport, MetricsRegistry,
    OnExhausted, Options, Outcome, Store, WorkBudget,
};
use padfa_omega::sync::lock;
use padfa_rt::{ServiceFaultKind, ServiceFaultPlan};
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the daemon serves with: the shared store (warm memo
/// state), the metrics registry backing `/metrics`, and the service
/// fault plan. `Default` is a faultless, storeless server.
pub struct ServiceDeps {
    /// Shared persistent memo store; `None` serves cold every request.
    pub store: Option<Arc<Store>>,
    /// Registry behind `/metrics`; create one per server (or share to
    /// aggregate several servers into one scrape).
    pub metrics: Arc<MetricsRegistry>,
    /// Deterministic service-layer faults (worker panics, torn
    /// responses), keyed on admission order.
    pub faults: ServiceFaultPlan,
    /// Build identity stamped into the `padfa_build_info` metric.
    pub git_rev: String,
}

impl Default for ServiceDeps {
    fn default() -> ServiceDeps {
        ServiceDeps {
            store: None,
            metrics: MetricsRegistry::new(),
            faults: ServiceFaultPlan::none(),
            git_rev: "unknown".to_string(),
        }
    }
}

/// What the drain observed, for operator logs and tests.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Connections admitted over the server's lifetime.
    pub admitted: u64,
    /// Requests answered with a complete response (any status).
    pub completed: u64,
    /// Connections shed with `429` by the admission gate.
    pub shed: u64,
    /// Queued-but-unstarted requests answered `503` at drain.
    pub drained_in_queue: u64,
    /// Worker panics absorbed (each cost one `500`, never the process).
    pub panics: u64,
    /// False when in-flight work outlived the drain deadline and the
    /// server stopped waiting for it.
    pub clean: bool,
    /// Path of the flight-ring sidecar dumped on an unclean drain, so
    /// whatever wedged past the deadline can be diagnosed post-mortem.
    pub flight_dump: Option<String>,
}

/// Payload type for injected worker panics, so the process-global panic
/// hook can keep injected unwinds quiet while real panics still print.
struct InjectedPanic;

fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// One admitted connection waiting for a worker.
struct Job {
    stream: TcpStream,
    /// 1-based admission sequence number (fault-plan key).
    admission: u64,
}

/// State shared by the acceptor, workers, and supervisor.
struct Shared {
    policy: ServicePolicy,
    store: Option<Arc<Store>>,
    metrics: Arc<MetricsRegistry>,
    faults: ServiceFaultPlan,
    git_rev: String,
    draining: AtomicBool,
    admitted: AtomicU64,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// Live worker count, decremented by each worker's exit guard;
    /// `shutdown` waits on the condvar until it reaches zero.
    workers_live: Mutex<usize>,
    workers_cv: Condvar,
    /// Ring of completed-request records behind `/debug/requests`
    /// (capacity `policy.debug_ring`, oldest evicted first).
    requests: Mutex<VecDeque<RequestRecord>>,
}

impl Shared {
    fn count(&self, name: &str, n: u64) {
        self.metrics.counter(name).add(n);
    }

    /// Block until a job is available or the server is draining.
    fn next_job(&self) -> Option<Job> {
        let mut q = lock(&self.queue);
        loop {
            if let Some(j) = q.pop_front() {
                return Some(j);
            }
            if self.draining.load(Ordering::Acquire) {
                return None;
            }
            q = match self.queue_cv.wait(q) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

enum WorkerEvent {
    /// A worker retired after absorbing a panic; spawn a replacement.
    Died,
    /// Drain finished; the supervisor should exit.
    Shutdown,
}

/// A running daemon. Bind with [`Server::start`], stop with
/// [`Server::shutdown`]. Dropping without `shutdown` leaves threads
/// running until the process exits (fine for one-shot test binaries,
/// wrong for anything long-lived).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    events_tx: mpsc::Sender<WorkerEvent>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the
    /// acceptor, `policy.workers` workers, and the supervisor.
    pub fn start(addr: &str, policy: ServicePolicy, deps: ServiceDeps) -> std::io::Result<Server> {
        install_quiet_hook();
        let policy = policy.normalized();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            policy,
            store: deps.store,
            metrics: deps.metrics,
            faults: deps.faults,
            git_rev: deps.git_rev,
            draining: AtomicBool::new(false),
            admitted: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            workers_live: Mutex::new(0),
            workers_cv: Condvar::new(),
            requests: Mutex::new(VecDeque::new()),
        });
        let (events_tx, events_rx) = mpsc::channel();
        for id in 0..shared.policy.workers {
            spawn_worker(&shared, id, events_tx.clone());
        }
        let supervisor = spawn_supervisor(Arc::clone(&shared), events_rx, events_tx.clone());
        let acceptor = {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("padfa-acceptor".to_string())
                .spawn(move || accept_loop(&sh, &listener))?
        };
        Ok(Server {
            shared,
            addr: local,
            acceptor: Some(acceptor),
            supervisor: Some(supervisor),
            events_tx,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry behind `/metrics`, for in-process assertions.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Graceful drain: stop accepting, answer queued-but-unstarted
    /// requests `503`, wait (bounded by the policy drain deadline) for
    /// in-flight requests, flush the store journal, and report.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Everything still queued was never started: tell those clients
        // to retry elsewhere rather than silently dropping them.
        let leftover: Vec<Job> = lock(&self.shared.queue).drain(..).collect();
        let drained_in_queue = leftover.len() as u64;
        for mut job in leftover {
            let _ = job
                .stream
                .set_write_timeout(Some(self.shared.policy.write_timeout));
            let _ = shed_response(&self.shared.policy, true).write(&mut job.stream);
        }
        self.shared.count("service.drained", drained_in_queue);
        // Wake idle workers so they observe the drain and exit, then
        // wait for in-flight work up to the drain deadline.
        self.shared.queue_cv.notify_all();
        let deadline = Instant::now() + self.shared.policy.drain_deadline;
        let mut live = lock(&self.shared.workers_live);
        let clean = loop {
            if *live == 0 {
                break true;
            }
            let now = Instant::now();
            if now >= deadline {
                break false;
            }
            let (guard, _) = match self.shared.workers_cv.wait_timeout(live, deadline - now) {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            live = guard;
        };
        drop(live);
        let _ = self.events_tx.send(WorkerEvent::Shutdown);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        if let Some(store) = &self.shared.store {
            store.flush();
            for w in store.take_warnings() {
                eprintln!("padfa-service: store warning: {w}");
            }
        }
        // An unclean drain means in-flight work outlived the deadline:
        // dump the flight ring so the wedged request's last recorded
        // events survive the process.
        let flight_dump = if clean {
            None
        } else {
            dump_flight(&self.shared.policy, "drain-unclean")
        };
        let counters = self.shared.metrics.counters_snapshot();
        let get = |k: &str| counters.get(k).copied().unwrap_or(0);
        DrainReport {
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            completed: get("service.completed"),
            shed: get("service.shed"),
            drained_in_queue,
            panics: get("service.panics"),
            clean,
            flight_dump,
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => admit(shared, stream),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                shared.count("service.accept_errors", 1);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Admission gate: number the connection, then either queue it or shed
/// it. Shedding happens here — with a small bounded write — so a full
/// queue costs the acceptor microseconds, not a worker slot.
fn admit(shared: &Arc<Shared>, mut stream: TcpStream) {
    let admission = shared.admitted.fetch_add(1, Ordering::Relaxed) + 1;
    shared.count("service.requests", 1);
    {
        let mut q = lock(&shared.queue);
        if q.len() < shared.policy.queue_depth {
            q.push_back(Job { stream, admission });
            shared.queue_cv.notify_one();
            return;
        }
    }
    shared.count("service.shed", 1);
    flight::instant(flight::EventKind::AdmissionShed, "queue-full", admission);
    let _ = stream.set_write_timeout(Some(shared.policy.write_timeout));
    let _ = shed_response(&shared.policy, false).write(&mut stream);
}

fn shed_response(policy: &ServicePolicy, draining: bool) -> Response {
    let (status, reason, kind, message) = if draining {
        (503, "Service Unavailable", "draining", "server is draining")
    } else {
        (
            429,
            "Too Many Requests",
            "overloaded",
            "admission queue full",
        )
    };
    error_body(status, reason, kind, message)
        .with_header("Retry-After", policy.retry_after_secs.to_string())
}

fn error_body(status: u16, reason: &'static str, kind: &str, message: &str) -> Response {
    Response::json(
        status,
        reason,
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}",
            json_escape(kind),
            json_escape(message)
        ),
    )
}

fn spawn_worker(shared: &Arc<Shared>, id: usize, events: mpsc::Sender<WorkerEvent>) {
    *lock(&shared.workers_live) += 1;
    let sh = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name(format!("padfa-worker-{id}"))
        .spawn(move || {
            // Exit guard: whatever path ends this thread, the live count
            // drops and the drain waiter wakes.
            struct Live(Arc<Shared>);
            impl Drop for Live {
                fn drop(&mut self) {
                    *lock(&self.0.workers_live) -= 1;
                    self.0.workers_cv.notify_all();
                }
            }
            let _live = Live(Arc::clone(&sh));
            while let Some(job) = sh.next_job() {
                if serve_connection(&sh, job) {
                    // Absorbed a panic: retire this thread and let the
                    // supervisor start a fresh one, so any thread-local
                    // state poisoned by the unwind dies here.
                    let _ = events.send(WorkerEvent::Died);
                    return;
                }
            }
        });
    if spawned.is_err() {
        // Thread creation failed (resource exhaustion): undo the count.
        // The pool shrinks; the admission bound still holds.
        *lock(&shared.workers_live) -= 1;
        shared.count("service.spawn_errors", 1);
    }
}

fn spawn_supervisor(
    shared: Arc<Shared>,
    events: mpsc::Receiver<WorkerEvent>,
    events_tx: mpsc::Sender<WorkerEvent>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("padfa-supervisor".to_string())
        .spawn(move || {
            let mut next_id = shared.policy.workers;
            while let Ok(ev) = events.recv() {
                match ev {
                    WorkerEvent::Shutdown => break,
                    WorkerEvent::Died => {
                        shared.count("service.worker_replacements", 1);
                        if !shared.draining.load(Ordering::Acquire) {
                            spawn_worker(&shared, next_id, events_tx.clone());
                            next_id += 1;
                        }
                    }
                }
            }
        })
        .unwrap_or_else(|e| {
            // No supervisor means panicked workers are not replaced; the
            // daemon still serves with the initial pool. Spawn failure
            // at startup is a resource problem worth being loud about.
            eprintln!("padfa-service: cannot spawn supervisor: {e}");
            std::thread::spawn(|| {})
        })
}

/// One completed request's forensics record: what `/debug/requests`
/// serves and what the slow-request log appends.
struct RequestRecord {
    admission: u64,
    method: String,
    path: String,
    /// HTTP status written, or 0 when the connection died before any
    /// response could be sent.
    status: u16,
    /// The `kind` field of the error body, when the response was one.
    error_kind: Option<String>,
    trace_id: String,
    /// FNV-1a key of `trace_id` — the tag on this request's flight
    /// events, rendered in hex to match `/debug/flight`.
    trace: u64,
    total_us: u64,
    slow: bool,
    /// FNV-1a provenance digest of the request body (None when empty),
    /// so a slow request's exact input can be matched post-hoc.
    digest: Option<u64>,
    budget_steps: u64,
    degraded_procs: u64,
    store_hits: u64,
    store_misses: u64,
    /// Sidecar path when this request's panic dumped the flight ring.
    flight_dump: Option<String>,
    /// Per-phase time breakdown from this request's flight events.
    phases: Vec<(flight::EventKind, flight::PhaseStat)>,
}

impl RequestRecord {
    fn to_json(&self) -> String {
        let opt_str = |v: &Option<String>| match v {
            Some(s) => format!("\"{}\"", json_escape(s)),
            None => "null".to_string(),
        };
        format!(
            "{{\"admission\":{},\"method\":\"{}\",\"path\":\"{}\",\"status\":{},\
             \"error_kind\":{},\"trace_id\":\"{}\",\"trace\":\"{:016x}\",\
             \"total_us\":{},\"slow\":{},\"digest\":{},\"budget_steps\":{},\
             \"degraded_procs\":{},\"store_hits\":{},\"store_misses\":{},\
             \"flight_dump\":{},\"phases\":{}}}",
            self.admission,
            json_escape(&self.method),
            json_escape(&self.path),
            self.status,
            opt_str(&self.error_kind),
            json_escape(&self.trace_id),
            self.trace,
            self.total_us,
            self.slow,
            match self.digest {
                Some(d) => format!("\"{d:016x}\""),
                None => "null".to_string(),
            },
            self.budget_steps,
            self.degraded_procs,
            self.store_hits,
            self.store_misses,
            opt_str(&self.flight_dump),
            flight::profile_json(&self.phases),
        )
    }
}

/// Per-request analysis accounting, filled by `analysis_endpoint` and
/// read back by `serve_connection` when it builds the record.
#[derive(Default)]
struct ReqCtx {
    budget_steps: u64,
    degraded_procs: u64,
    store_hits: u64,
    store_misses: u64,
}

/// Keep a client-supplied trace id loggable: drop everything outside a
/// conservative charset and cap the length.
fn sanitize_trace_id(raw: &str) -> String {
    raw.chars()
        .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'))
        .take(64)
        .collect()
}

/// FNV-1a over raw bytes: the request-body provenance digest.
fn digest64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pull the `kind` out of a typed error body, so records stay
/// attributable without threading a kind through every handler.
fn body_error_kind(resp: &Response) -> Option<String> {
    let body = std::str::from_utf8(&resp.body).ok()?;
    let needle = "\"error\":{\"kind\":\"";
    let start = body.find(needle)? + needle.len();
    let rest = &body[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Write the global flight ring to a sidecar JSON file; `None` when the
/// dump directory cannot be written (diagnosis is best-effort, serving
/// is not).
fn dump_flight(policy: &ServicePolicy, stem: &str) -> Option<String> {
    let dir = policy
        .flight_dump_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir);
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("padfa-flight-{stem}.json"));
    std::fs::write(&path, flight::ring_json()).ok()?;
    Some(path.display().to_string())
}

fn append_line(path: &std::path::Path, line: &str) {
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(f, "{line}");
    }
}

fn push_record(shared: &Arc<Shared>, record: RequestRecord) {
    let mut ring = lock(&shared.requests);
    while ring.len() >= shared.policy.debug_ring {
        ring.pop_front();
    }
    ring.push_back(record);
}

fn requests_json(shared: &Arc<Shared>) -> String {
    let ring = lock(&shared.requests);
    let mut records = String::new();
    for (i, r) in ring.iter().enumerate() {
        if i > 0 {
            records.push(',');
        }
        records.push_str(&r.to_json());
    }
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"capacity\":{},\"records\":[{records}]}}",
        shared.policy.debug_ring
    )
}

/// Serve one connection end to end. Returns true when the handler
/// panicked (the worker should retire).
fn serve_connection(shared: &Arc<Shared>, mut job: Job) -> bool {
    let _ = job
        .stream
        .set_read_timeout(Some(shared.policy.read_timeout));
    let _ = job
        .stream
        .set_write_timeout(Some(shared.policy.write_timeout));
    let t0 = Instant::now();
    let req = match read_request(
        &mut job.stream,
        shared.policy.max_header_bytes,
        shared.policy.max_body_bytes,
    ) {
        Ok(r) => r,
        Err(e) => {
            match e {
                RequestError::Timeout => shared.count("service.read_timeouts", 1),
                RequestError::Disconnected => shared.count("service.torn_clients", 1),
                _ => shared.count("service.bad_requests", 1),
            }
            // No request means no client trace id; a generated id still
            // makes the failure findable in `/debug/requests`.
            let trace_id = format!("padfa-{}", job.admission);
            let (status, error_kind) = match e.status() {
                Some((status, reason, kind)) => {
                    let _ = error_body(status, reason, kind, &e.detail())
                        .with_header("X-Padfa-Trace-Id", trace_id.clone())
                        .write(&mut job.stream);
                    shared.count("service.completed", 1);
                    shared.count(&format!("service.responses.{status}"), 1);
                    (status, Some(kind.to_string()))
                }
                None => (0, Some("disconnected".to_string())),
            };
            let trace = flight::trace_key(&trace_id);
            push_record(
                shared,
                RequestRecord {
                    admission: job.admission,
                    method: String::new(),
                    path: String::new(),
                    status,
                    error_kind,
                    trace_id,
                    trace,
                    total_us: t0.elapsed().as_micros() as u64,
                    slow: false,
                    digest: None,
                    budget_steps: 0,
                    degraded_procs: 0,
                    store_hits: 0,
                    store_misses: 0,
                    flight_dump: None,
                    phases: Vec::new(),
                },
            );
            return false;
        }
    };
    // Trace id: accept the client's (sanitized), generate otherwise,
    // echo either way. All flight events recorded while this request is
    // served — including `par_map` worker lanes — carry its key.
    let trace_id = req
        .header("x-padfa-trace-id")
        .map(sanitize_trace_id)
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| format!("padfa-{}", job.admission));
    let tkey = flight::trace_key(&trace_id);
    let digest = (!req.body.is_empty()).then(|| digest64(&req.body));
    let tag = flight::set_trace(tkey);
    let mut req_span = flight::span(
        flight::EventKind::Request,
        format!("{} {}", req.method, req.path),
    );
    let fault = shared.faults.for_request(job.admission);
    match fault {
        Some(ServiceFaultKind::SlowRequest { ms }) => {
            // Deterministic stall before the handler, so the request
            // crosses the slow threshold with the delay visible as
            // request self-time in its phase breakdown.
            std::thread::sleep(Duration::from_millis(ms));
        }
        Some(ServiceFaultKind::RecorderOverflow) => {
            for i in 0..=flight::capacity() as u64 {
                flight::instant(flight::EventKind::Note, "ring-flood", i);
            }
        }
        _ => {}
    }
    let mut ctx = ReqCtx::default();
    let outcome = catch_unwind(AssertUnwindSafe(|| route(shared, &req, fault, &mut ctx)));
    let (status, error_kind, flight_dump, panicked) = match outcome {
        Ok(resp) => {
            let error_kind = body_error_kind(&resp);
            let resp = resp.with_header("X-Padfa-Trace-Id", trace_id.clone());
            let torn = matches!(fault, Some(ServiceFaultKind::TornResponse));
            let written = if torn {
                shared.count("service.torn_responses", 1);
                resp.write_torn(&mut job.stream)
            } else {
                resp.write(&mut job.stream)
            };
            if written.is_err() {
                shared.count("service.write_errors", 1);
            }
            shared.count("service.completed", 1);
            (resp.status, error_kind, None, false)
        }
        Err(_) => {
            shared.count("service.panics", 1);
            flight::instant(
                flight::EventKind::WorkerPanic,
                &format!("{} {}", req.method, req.path),
                job.admission,
            );
            // Dump the ring before replying: the 500 body carries the
            // sidecar path so the client's error report already points
            // at the forensics file.
            let dump = dump_flight(&shared.policy, &format!("panic-{}", job.admission));
            let mut body = format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"error\":{{\"kind\":\"panic\",\
                 \"message\":\"request handler panicked; the worker was replaced\"}}"
            );
            if let Some(p) = &dump {
                body.push_str(&format!(",\"flight_dump\":\"{}\"", json_escape(p)));
            }
            body.push('}');
            let _ = Response::json(500, "Internal Server Error", body)
                .with_header("X-Padfa-Trace-Id", trace_id.clone())
                .write(&mut job.stream);
            shared.count("service.completed", 1);
            (500, Some("panic".to_string()), dump, true)
        }
    };
    req_span.set_value(u64::from(status));
    drop(req_span);
    drop(tag);
    shared.count(&format!("service.responses.{status}"), 1);
    let total_us = t0.elapsed().as_micros() as u64;
    let slow = shared.policy.slow_request_ms > 0
        && total_us >= shared.policy.slow_request_ms.saturating_mul(1000);
    let events: Vec<flight::Event> = flight::snapshot()
        .into_iter()
        .filter(|e| e.trace == tkey)
        .collect();
    let record = RequestRecord {
        admission: job.admission,
        method: req.method.clone(),
        path: req.path.clone(),
        status,
        error_kind,
        trace_id,
        trace: tkey,
        total_us,
        slow,
        digest,
        budget_steps: ctx.budget_steps,
        degraded_procs: ctx.degraded_procs,
        store_hits: ctx.store_hits,
        store_misses: ctx.store_misses,
        flight_dump,
        phases: flight::profile(&events),
    };
    if slow {
        shared.count("service.slow_requests", 1);
        eprintln!(
            "padfa-service: slow request trace={} {} {} status={status} total_us={total_us}",
            record.trace_id, record.method, record.path
        );
        if let Some(path) = &shared.policy.slow_log {
            append_line(path, &record.to_json());
        }
    }
    push_record(shared, record);
    panicked
}

fn route(
    shared: &Arc<Shared>,
    req: &Request,
    fault: Option<ServiceFaultKind>,
    ctx: &mut ReqCtx,
) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "OK", "{\"status\":\"ok\"}".to_string()),
        ("GET", "/readyz") => {
            if shared.draining.load(Ordering::Acquire) {
                error_body(503, "Service Unavailable", "draining", "server is draining")
            } else {
                Response::json(200, "OK", "{\"status\":\"ready\"}".to_string())
            }
        }
        ("GET", "/metrics") => Response::text(
            200,
            "OK",
            crate::http::prometheus_text(&shared.metrics, &shared.git_rev),
        ),
        ("GET", "/debug/requests") => Response::json(200, "OK", requests_json(shared)),
        ("GET", "/debug/flight") => Response::json(200, "OK", flight::ring_json()),
        ("POST", "/analyze") => analysis_endpoint(shared, req, fault, ctx, false),
        ("POST", "/explain") => analysis_endpoint(shared, req, fault, ctx, true),
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/analyze" | "/explain" | "/debug/requests"
            | "/debug/flight",
        ) => error_body(
            405,
            "Method Not Allowed",
            "method_not_allowed",
            &format!("{} not supported on {}", req.method, req.path),
        ),
        _ => error_body(
            404,
            "Not Found",
            "not_found",
            &format!("no such endpoint: {}", req.path),
        ),
    }
}

/// `/analyze` and `/explain` share everything up to response shaping.
fn analysis_endpoint(
    shared: &Arc<Shared>,
    req: &Request,
    fault: Option<ServiceFaultKind>,
    ctx: &mut ReqCtx,
    explain: bool,
) -> Response {
    let Some(src) = req.body_utf8() else {
        return error_body(400, "Bad Request", "bad_request", "body is not UTF-8");
    };
    let variant = req
        .query
        .get("variant")
        .map(String::as_str)
        .unwrap_or("predicated");
    let opts = match variant {
        "base" => Options::base(),
        "guarded" => Options::guarded(),
        "predicated" => Options::predicated(),
        other => {
            return error_body(
                400,
                "Bad Request",
                "bad_request",
                &format!("unknown variant '{other}'"),
            )
        }
    };
    let budget = match effective_budget(&shared.policy, req) {
        Ok(b) => b,
        Err(msg) => return error_body(400, "Bad Request", "bad_request", &msg),
    };
    let prog = match padfa_ir::parse::parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            return error_body(
                400,
                "Bad Request",
                "parse",
                &format!("{}:{}: {}", e.line, e.col, e.msg),
            )
        }
    };
    // An armed worker-panic fault fires here: past parsing (the request
    // was legitimate) and inside the catch_unwind fence.
    if matches!(fault, Some(ServiceFaultKind::WorkerPanic)) {
        // The one deliberate unwind in the crate — the fault-injection
        // harness proving the isolation fence holds.
        #[allow(clippy::panic)]
        std::panic::panic_any(InjectedPanic);
    }
    let opts = opts.with_budget(budget);
    // Fresh session per request: bounded memory, no cross-request memo
    // growth. Warmth comes from the shared store — which budgeted
    // requests must bypass (cached results would change step accounting
    // and with it degradation decisions).
    let mut sess = AnalysisSession::new(opts)
        .with_jobs(shared.policy.jobs_per_request)
        .with_metrics(Arc::clone(&shared.metrics));
    if budget.is_unlimited() {
        if let Some(store) = &shared.store {
            sess = sess.with_store(Arc::clone(store));
        }
    }
    let t0 = Instant::now();
    let result = analyze_program_session(&prog, &sess);
    let histogram = if explain {
        "service.latency.explain"
    } else {
        "service.latency.analyze"
    };
    shared
        .metrics
        .histogram(histogram)
        .record_ns(t0.elapsed().as_nanos() as u64);
    sess.publish_metrics();
    if let Some(store) = sess.store() {
        let warnings = store.take_warnings();
        if !warnings.is_empty() {
            shared.count("service.store_warnings", warnings.len() as u64);
            for w in warnings {
                eprintln!("padfa-service: store warning: {w}");
            }
        }
    }
    let (result, _summaries) = match result {
        Ok(out) => out,
        Err(e) => {
            if let AnalysisError::BudgetExhausted { steps, .. } = &e {
                ctx.budget_steps = *steps;
            }
            return analysis_error_response(&e);
        }
    };
    ctx.budget_steps = result.stats.budget_steps;
    ctx.degraded_procs = result.stats.degraded_procs;
    if let Some(store) = &result.stats.store {
        ctx.store_hits = store.hits;
        ctx.store_misses = store.misses;
    }
    if explain {
        explain_response(&result, req, variant)
    } else {
        analyze_response(&result, variant)
    }
}

/// Clamp header-requested budgets against policy: effective = min(
/// requested-or-default, ceiling); no request, no default = unlimited.
fn effective_budget(policy: &ServicePolicy, req: &Request) -> Result<WorkBudget, String> {
    let header_u64 = |name: &str| -> Result<Option<u64>, String> {
        match req.header(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("invalid {name} header: '{v}'")),
        }
    };
    let clamp = |requested: Option<u64>, default: Option<u64>, ceiling: Option<u64>| match (
        requested.or(default),
        ceiling,
    ) {
        (Some(v), Some(c)) => Some(v.min(c)),
        (v, _) => v,
    };
    let strict = match req.header("x-padfa-strict") {
        None | Some("0") => false,
        Some("1") => true,
        Some(v) => {
            return Err(format!(
                "invalid x-padfa-strict header: '{v}' (want 0 or 1)"
            ))
        }
    };
    Ok(WorkBudget {
        max_steps: clamp(
            header_u64("x-padfa-max-steps")?,
            policy.default_max_steps,
            policy.max_steps_ceiling,
        ),
        deadline_ms: clamp(
            header_u64("x-padfa-deadline-ms")?,
            policy.default_deadline_ms,
            policy.deadline_ms_ceiling,
        ),
        on_exhausted: if strict {
            OnExhausted::Error
        } else {
            OnExhausted::Degrade
        },
    })
}

fn analysis_error_response(e: &AnalysisError) -> Response {
    match e {
        AnalysisError::Parse(pe) => error_body(
            400,
            "Bad Request",
            "parse",
            &format!("{}:{}: {}", pe.line, pe.col, pe.msg),
        ),
        AnalysisError::MalformedIr(m) => error_body(400, "Bad Request", "malformed_ir", m),
        AnalysisError::BudgetExhausted { proc, steps } => Response::json(
            422,
            "Unprocessable Entity",
            format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"error\":{{\"kind\":\"budget_exhausted\",\
                 \"proc\":\"{}\",\"steps\":{steps},\"message\":\"work budget exhausted\"}}}}",
                json_escape(proc)
            ),
        ),
        AnalysisError::Internal(m) => error_body(500, "Internal Server Error", "internal", m),
    }
}

/// The `/analyze` body: a deterministic per-loop verdict summary. No
/// timing, no request ids, no store-dependent fields — N identical
/// requests must produce byte-identical bodies, cold or warm.
fn analyze_response(result: &padfa_core::AnalysisResult, variant: &str) -> Response {
    let mut loops = String::new();
    let mut parallelized = 0u64;
    let mut runtime_tests = 0u64;
    for (i, r) in result.loops.iter().enumerate() {
        if i > 0 {
            loops.push(',');
        }
        if r.parallelized() {
            parallelized += 1;
        }
        if r.not_candidate.is_none() && matches!(r.outcome, Outcome::ParallelIf(_)) {
            runtime_tests += 1;
        }
        loops.push_str(&loop_entry(r));
    }
    Response::json(
        200,
        "OK",
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"variant\":\"{}\",\"loops\":[{loops}],\
             \"total\":{},\"parallelized\":{parallelized},\"runtime_tests\":{runtime_tests},\
             \"degraded_procs\":{}}}",
            json_escape(variant),
            result.loops.len(),
            result.stats.degraded_procs
        ),
    )
}

fn loop_entry(r: &LoopReport) -> String {
    let outcome = if r.not_candidate.is_some() {
        "not-candidate"
    } else {
        match r.outcome {
            Outcome::Parallel => "parallel",
            Outcome::ParallelIf(_) => "parallel-if",
            Outcome::Sequential => "sequential",
        }
    };
    let label = match &r.label {
        Some(l) => format!("\"{}\"", json_escape(l)),
        None => "null".to_string(),
    };
    let test = match (&r.not_candidate, &r.outcome) {
        (None, Outcome::ParallelIf(p)) => format!(",\"test\":\"{}\"", json_escape(&p.to_string())),
        _ => String::new(),
    };
    format!(
        "{{\"id\":{},\"label\":{label},\"proc\":\"{}\",\"depth\":{},\"outcome\":\"{outcome}\"\
         {test},\"privatized\":{},\"reductions\":{}}}",
        r.id.0,
        json_escape(&r.proc),
        r.depth,
        r.privatized.len() + r.privatized_scalars.len(),
        r.reductions.len()
    )
}

/// The `/explain` body: full decision-provenance JSON per selected
/// loop, the same `loop_json` trees the CLI's `explain --json` prints.
fn explain_response(result: &padfa_core::AnalysisResult, req: &Request, variant: &str) -> Response {
    let target = req.query.get("loop");
    let selected: Vec<&LoopReport> = match target {
        Some(t) => result
            .loops
            .iter()
            .filter(|r| {
                r.label.as_deref() == Some(t.as_str())
                    || t.parse::<u32>().is_ok_and(|n| r.id.0 == n)
            })
            .collect(),
        None => result.loops.iter().collect(),
    };
    if selected.is_empty() && target.is_some() {
        return error_body(
            404,
            "Not Found",
            "loop_not_found",
            &format!(
                "no analyzed loop labeled or numbered '{}'",
                target.map(String::as_str).unwrap_or("")
            ),
        );
    }
    let loops: Vec<String> = selected.iter().map(|r| padfa_core::loop_json(r)).collect();
    Response::json(
        200,
        "OK",
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"variant\":\"{}\",\"loops\":[{}]}}",
            json_escape(variant),
            loops.join(",")
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn req_with_headers(pairs: &[(&str, &str)]) -> Request {
        Request {
            method: "POST".to_string(),
            path: "/analyze".to_string(),
            query: BTreeMap::new(),
            headers: pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
        }
    }

    #[test]
    fn budget_defaults_to_unlimited() {
        let b = effective_budget(&ServicePolicy::default(), &req_with_headers(&[])).unwrap();
        assert!(b.is_unlimited());
        assert_eq!(b.on_exhausted, OnExhausted::Degrade);
    }

    #[test]
    fn budget_headers_are_clamped_by_ceilings() {
        let policy = ServicePolicy {
            max_steps_ceiling: Some(1000),
            deadline_ms_ceiling: Some(50),
            ..ServicePolicy::default()
        };
        let b = effective_budget(
            &policy,
            &req_with_headers(&[
                ("x-padfa-max-steps", "999999"),
                ("x-padfa-deadline-ms", "10"),
                ("x-padfa-strict", "1"),
            ]),
        )
        .unwrap();
        assert_eq!(b.max_steps, Some(1000)); // clamped to the ceiling
        assert_eq!(b.deadline_ms, Some(10)); // under the ceiling: kept
        assert_eq!(b.on_exhausted, OnExhausted::Error);
        // Ceilings alone do not impose a budget on unadorned requests.
        let b = effective_budget(&policy, &req_with_headers(&[])).unwrap();
        assert!(b.is_unlimited());
    }

    #[test]
    fn budget_policy_defaults_apply_without_headers() {
        let policy = ServicePolicy {
            default_max_steps: Some(5000),
            max_steps_ceiling: Some(1000),
            ..ServicePolicy::default()
        };
        let b = effective_budget(&policy, &req_with_headers(&[])).unwrap();
        assert_eq!(b.max_steps, Some(1000)); // defaults are clamped too
    }

    #[test]
    fn bad_budget_headers_are_rejected() {
        let p = ServicePolicy::default();
        assert!(effective_budget(&p, &req_with_headers(&[("x-padfa-max-steps", "lots")])).is_err());
        assert!(effective_budget(&p, &req_with_headers(&[("x-padfa-strict", "yes")])).is_err());
    }

    #[test]
    fn shed_responses_carry_retry_after() {
        let p = ServicePolicy::default();
        let overloaded = shed_response(&p, false);
        assert_eq!(overloaded.status, 429);
        assert!(overloaded.extra.iter().any(|(k, _)| *k == "Retry-After"));
        let draining = shed_response(&p, true);
        assert_eq!(draining.status, 503);
        assert!(String::from_utf8(draining.body)
            .unwrap()
            .contains("draining"));
    }

    #[test]
    fn trace_ids_are_sanitized_and_capped() {
        assert_eq!(sanitize_trace_id("req-42:a.b_c"), "req-42:a.b_c");
        assert_eq!(sanitize_trace_id("a b\r\nInjected: x"), "abInjected:x");
        assert_eq!(sanitize_trace_id(&"x".repeat(200)).len(), 64);
        assert_eq!(sanitize_trace_id("\"{}\n"), "");
    }

    #[test]
    fn body_digest_is_stable_fnv() {
        assert_eq!(digest64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest64(b"proc main"), digest64(b"proc main"));
        assert_ne!(digest64(b"proc main"), digest64(b"proc mair"));
    }

    #[test]
    fn error_kind_is_extracted_from_typed_bodies() {
        let resp = error_body(404, "Not Found", "not_found", "nope");
        assert_eq!(body_error_kind(&resp).as_deref(), Some("not_found"));
        let ok = Response::json(200, "OK", "{\"loops\":[]}".to_string());
        assert_eq!(body_error_kind(&ok), None);
    }

    #[test]
    fn request_records_render_as_json() {
        let rec = RequestRecord {
            admission: 7,
            method: "POST".to_string(),
            path: "/analyze".to_string(),
            status: 422,
            error_kind: Some("budget_exhausted".to_string()),
            trace_id: "req-7".to_string(),
            trace: padfa_core::flight::trace_key("req-7"),
            total_us: 1234,
            slow: true,
            digest: Some(0xabcd),
            budget_steps: 100,
            degraded_procs: 0,
            store_hits: 0,
            store_misses: 0,
            flight_dump: None,
            phases: Vec::new(),
        };
        let j = rec.to_json();
        assert!(j.contains("\"admission\":7"));
        assert!(j.contains("\"error_kind\":\"budget_exhausted\""));
        assert!(j.contains("\"slow\":true"));
        assert!(j.contains("\"digest\":\"000000000000abcd\""));
        assert!(j.contains("\"flight_dump\":null"));
        assert!(j.contains("\"phases\":[]"));
        assert!(j.contains(&format!(
            "\"trace\":\"{:016x}\"",
            padfa_core::flight::trace_key("req-7")
        )));
    }
}
