//! Minimal HTTP/1.1 on `std::net::TcpStream`: just enough protocol for
//! the daemon's endpoints, written defensively — plus the Prometheus
//! text-exposition renderer and its in-repo format checker.
//!
//! The parser enforces the policy's header/body size caps *while
//! reading* (an oversized request is rejected before it is buffered),
//! relies on socket read timeouts to bound slow clients, and requires
//! `Content-Length` on bodies (no chunked encoding — clients of this
//! service are curl, the load generator, and CI). Every response
//! carries `Connection: close`; one request per connection keeps worker
//! state machines trivial and makes torn-client handling local.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// A parsed request: method, path, decoded query pairs, lowercase
/// header map, raw body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: BTreeMap<String, String>,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, or `None` when it is not valid UTF-8.
    pub fn body_utf8(&self) -> Option<String> {
        String::from_utf8(self.body.clone()).ok()
    }

    /// A header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }
}

/// Why a request could not be read. Each maps to one HTTP status (or
/// to silently closing the connection when no reply can reach anyone).
#[derive(Debug)]
pub enum RequestError {
    /// Socket read timed out mid-request (slow-loris or torn client).
    Timeout,
    /// Client closed the connection before a full request arrived.
    Disconnected,
    /// Head or body exceeded the policy cap.
    TooLarge(&'static str),
    /// Unparseable request line / header / length.
    Malformed(&'static str),
    /// A body-bearing method without `Content-Length`.
    LengthRequired,
    /// Any other socket error.
    Io(std::io::Error),
}

impl RequestError {
    /// The HTTP status this error maps to; `None` means the socket is
    /// unusable and the connection should just be dropped.
    pub fn status(&self) -> Option<(u16, &'static str, &'static str)> {
        match self {
            RequestError::Timeout => Some((408, "Request Timeout", "timeout")),
            RequestError::TooLarge(_) => Some((413, "Payload Too Large", "too_large")),
            RequestError::Malformed(_) => Some((400, "Bad Request", "bad_request")),
            RequestError::LengthRequired => Some((411, "Length Required", "length_required")),
            RequestError::Disconnected | RequestError::Io(_) => None,
        }
    }

    pub fn detail(&self) -> String {
        match self {
            RequestError::Timeout => "socket read timed out".to_string(),
            RequestError::Disconnected => "client disconnected".to_string(),
            RequestError::TooLarge(what) => format!("{what} exceeds the configured limit"),
            RequestError::Malformed(what) => format!("malformed {what}"),
            RequestError::LengthRequired => "POST requires Content-Length".to_string(),
            RequestError::Io(e) => format!("socket error: {e}"),
        }
    }
}

fn timeout_kind(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Read one request from `stream`, enforcing size caps as bytes arrive.
/// The caller must have set the socket read timeout.
pub fn read_request(
    stream: &mut TcpStream,
    max_header_bytes: usize,
    max_body_bytes: usize,
) -> Result<Request, RequestError> {
    // Accumulate until the blank line ending the head, never holding
    // more than the head cap plus one read chunk.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > max_header_bytes {
            return Err(RequestError::TooLarge("request head"));
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(RequestError::Disconnected),
            Ok(n) => n,
            Err(e) if timeout_kind(&e) => return Err(RequestError::Timeout),
            Err(e) => return Err(RequestError::Io(e)),
        };
        buf.extend_from_slice(&chunk[..n]);
    };
    let head_bytes = buf[..head_end].to_vec();
    let head = std::str::from_utf8(&head_bytes)
        .map_err(|_| RequestError::Malformed("request head (not UTF-8)"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut words = request_line.split(' ');
    let (method, target, version) = match (words.next(), words.next(), words.next(), words.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(RequestError::Malformed("request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed("HTTP version"));
    }
    let (path, query) = parse_target(target)?;
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RequestError::Malformed("header line"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    // Body: only when Content-Length says so. POST without a length is
    // 411; anything else with a length gets its body read and ignored.
    let content_length = match headers.get("content-length") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| RequestError::Malformed("Content-Length"))?,
        ),
        None if method == "POST" => return Err(RequestError::LengthRequired),
        None => None,
    };
    let mut body = buf.split_off(head_end + 4);
    if let Some(len) = content_length {
        if len > max_body_bytes {
            return Err(RequestError::TooLarge("request body"));
        }
        if body.len() > len {
            body.truncate(len); // pipelined bytes beyond the request are dropped
        }
        while body.len() < len {
            let want = (len - body.len()).min(chunk.len());
            let n = match stream.read(&mut chunk[..want]) {
                Ok(0) => return Err(RequestError::Disconnected),
                Ok(n) => n,
                Err(e) if timeout_kind(&e) => return Err(RequestError::Timeout),
                Err(e) => return Err(RequestError::Io(e)),
            };
            body.extend_from_slice(&chunk[..n]);
        }
    } else {
        body.clear();
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_target(target: &str) -> Result<(&str, BTreeMap<String, String>), RequestError> {
    let (path, qs) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if !path.starts_with('/') {
        return Err(RequestError::Malformed("request target"));
    }
    let mut query = BTreeMap::new();
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(percent_decode(k), percent_decode(v));
    }
    Ok((path, query))
}

/// Decode `%XX` escapes and `+` (space). Invalid escapes pass through
/// literally — query values here are loop labels and variant names, so
/// strictness buys nothing.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response ready to serialize: status, extra headers, body.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub reason: &'static str,
    pub content_type: &'static str,
    /// Extra headers as `(name, value)` pairs (e.g. `Retry-After`).
    pub extra: Vec<(&'static str, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, reason: &'static str, body: String) -> Response {
        Response {
            status,
            reason,
            content_type: "application/json",
            extra: Vec::new(),
            body: body.into_bytes(),
        }
    }

    pub fn text(status: u16, reason: &'static str, body: String) -> Response {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            extra: Vec::new(),
            body: body.into_bytes(),
        }
    }

    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.extra.push((name, value));
        self
    }

    /// Serialize head + body into one buffer (written with a single
    /// `write_all` so short-write truncation is the OS's doing, not
    /// interleaving).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Write the whole response; errors are returned for accounting but
    /// there is nothing further to do with a dead client.
    pub fn write(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }

    /// Write only the first half of the serialized response, then stop —
    /// the deterministic "torn response" fault: the client sees a valid
    /// status line but a short body and must treat the reply as corrupt.
    pub fn write_torn(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let bytes = self.to_bytes();
        stream.write_all(&bytes[..bytes.len() / 2])?;
        stream.flush()
    }
}

// ---------------------------------------------------------------------
// Prometheus text exposition: renderer + format checker.

/// Render every counter and histogram in `reg` in Prometheus text
/// exposition format, preceded by a `padfa_build_info` identity gauge.
///
/// * Every sample family carries `# HELP` and `# TYPE` lines.
/// * Counters keep the bare `padfa_<name> <value>` sample shape the
///   existing scrapers parse.
/// * Histograms are real cumulative-bucket histograms: the registry's
///   power-of-two ns buckets become `_ns_bucket{le="..."}` series
///   (cumulative, ending in `+Inf`) plus `_ns_sum` / `_ns_count`.
///
/// The output always passes [`check_exposition`]; CI scrapes
/// `/metrics` and enforces exactly that.
pub fn prometheus_text(reg: &padfa_core::MetricsRegistry, git_rev: &str) -> String {
    use padfa_core::metrics::{Histogram, BUCKETS};
    let sanitize = |name: &str| -> String {
        name.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect()
    };
    let label_escape = |s: &str| -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect()
    };
    let mut out = String::new();
    out.push_str("# HELP padfa_build_info Build identity of the serving binary.\n");
    out.push_str("# TYPE padfa_build_info gauge\n");
    out.push_str(&format!(
        "padfa_build_info{{git_rev=\"{}\",schema_version=\"{}\"}} 1\n",
        label_escape(git_rev),
        crate::SCHEMA_VERSION
    ));
    for (name, value) in reg.counters_snapshot() {
        let s = sanitize(&name);
        out.push_str(&format!(
            "# HELP padfa_{s} Cumulative count of '{name}' events.\n\
             # TYPE padfa_{s} counter\npadfa_{s} {value}\n"
        ));
    }
    for (name, h) in reg.histograms_snapshot() {
        let s = sanitize(&name);
        out.push_str(&format!(
            "# HELP padfa_{s}_ns Latency histogram '{name}' in nanoseconds \
             (power-of-two buckets).\n# TYPE padfa_{s}_ns histogram\n"
        ));
        // Cumulative counts over the registry's log2 buckets. The total
        // is taken from the same bucket snapshot (not `h.count()`) so
        // `+Inf` and `_count` agree even mid-scrape under concurrency.
        let buckets = h.buckets();
        let mut cum = 0u64;
        for (idx, b) in buckets.iter().enumerate().take(BUCKETS - 1) {
            cum += b;
            out.push_str(&format!(
                "padfa_{s}_ns_bucket{{le=\"{}\"}} {cum}\n",
                Histogram::bucket_bound_ns(idx)
            ));
        }
        cum += buckets[BUCKETS - 1];
        out.push_str(&format!(
            "padfa_{s}_ns_bucket{{le=\"+Inf\"}} {cum}\n\
             padfa_{s}_ns_sum {}\npadfa_{s}_ns_count {cum}\n",
            h.sum_ns()
        ));
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Split a sample line into `(name, labels, value)`; `None` when the
/// line shape is wrong.
fn split_sample(line: &str) -> Option<(&str, Option<&str>, &str)> {
    if let Some(brace) = line.find('{') {
        let name = &line[..brace];
        let rest = &line[brace + 1..];
        let close = rest.find('}')?;
        let labels = &rest[..close];
        let value = rest[close + 1..].trim();
        if value.is_empty() {
            return None;
        }
        Some((name, Some(labels), value))
    } else {
        let (name, value) = line.split_once(' ')?;
        Some((name, None, value.trim()))
    }
}

fn parse_le(labels: &str) -> Option<f64> {
    for pair in labels.split(',') {
        let (k, v) = pair.split_once('=')?;
        if k.trim() == "le" {
            let v = v.trim().strip_prefix('"')?.strip_suffix('"')?;
            return if v == "+Inf" {
                Some(f64::INFINITY)
            } else {
                v.parse::<f64>().ok()
            };
        }
    }
    None
}

/// Per-histogram-family state accumulated by [`check_exposition`].
#[derive(Default)]
struct HistCheck {
    last_le: Option<f64>,
    last_cum: u64,
    inf: Option<u64>,
    sum_seen: bool,
    count: Option<u64>,
}

/// Validate Prometheus text-exposition output: line shapes, metric
/// names, a `# TYPE` declared before every sample family, label syntax,
/// and — for histograms — strictly increasing `le` bounds, monotone
/// cumulative counts, a closing `+Inf` bucket, and `_sum`/`_count`
/// consistency. Returns every violation found (empty = pass).
///
/// This is the in-repo scrape checker: service tests and CI run
/// `/metrics` output through it instead of trusting the renderer.
pub fn check_exposition(text: &str) -> Result<(), Vec<String>> {
    use std::collections::BTreeMap;
    let mut errors: Vec<String> = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut hists: BTreeMap<String, HistCheck> = BTreeMap::new();
    for (no, line) in text.lines().enumerate() {
        let ln = no + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            match (words.next(), words.next()) {
                (Some("HELP"), Some(name)) => {
                    if !valid_metric_name(name) {
                        errors.push(format!("line {ln}: invalid HELP metric name '{name}'"));
                    }
                }
                (Some("TYPE"), Some(name)) => {
                    if !valid_metric_name(name) {
                        errors.push(format!("line {ln}: invalid TYPE metric name '{name}'"));
                    }
                    let ty = words.next().unwrap_or("");
                    if !matches!(
                        ty,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        errors.push(format!("line {ln}: unknown TYPE '{ty}' for '{name}'"));
                    }
                    if types.insert(name.to_string(), ty.to_string()).is_some() {
                        errors.push(format!("line {ln}: duplicate TYPE for '{name}'"));
                    }
                }
                _ => errors.push(format!("line {ln}: malformed comment '{line}'")),
            }
            continue;
        }
        let Some((name, labels, value)) = split_sample(line) else {
            errors.push(format!("line {ln}: malformed sample '{line}'"));
            continue;
        };
        if !valid_metric_name(name) {
            errors.push(format!("line {ln}: invalid metric name '{name}'"));
            continue;
        }
        if value.parse::<f64>().is_err() {
            errors.push(format!(
                "line {ln}: non-numeric value '{value}' for '{name}'"
            ));
            continue;
        }
        if let Some(labels) = labels {
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let ok = pair.split_once('=').is_some_and(|(k, v)| {
                    valid_metric_name(k.trim())
                        && v.trim().starts_with('"')
                        && v.trim().ends_with('"')
                        && v.trim().len() >= 2
                });
                if !ok {
                    errors.push(format!("line {ln}: malformed label pair '{pair}'"));
                }
            }
        }
        // Resolve the sample's family: histogram children map back to
        // the declared histogram name.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                (types.get(base).map(String::as_str) == Some("histogram"))
                    .then(|| (base.to_string(), *suffix))
            })
            .map_or_else(|| (name.to_string(), ""), |(base, suffix)| (base, suffix));
        let (family_name, suffix) = family;
        if !types.contains_key(&family_name) {
            errors.push(format!(
                "line {ln}: sample '{name}' has no preceding # TYPE"
            ));
            continue;
        }
        if types.get(&family_name).map(String::as_str) == Some("histogram") {
            let st = hists.entry(family_name.clone()).or_default();
            match suffix {
                "_bucket" => {
                    let Some(le) = labels.and_then(parse_le) else {
                        errors.push(format!("line {ln}: bucket sample without an le label"));
                        continue;
                    };
                    let cum = value.parse::<u64>().unwrap_or(0);
                    if st.last_le.is_some_and(|prev| le <= prev) {
                        errors.push(format!(
                            "line {ln}: histogram '{family_name}' le bounds not increasing"
                        ));
                    }
                    if cum < st.last_cum {
                        errors.push(format!(
                            "line {ln}: histogram '{family_name}' cumulative count decreased"
                        ));
                    }
                    st.last_le = Some(le);
                    st.last_cum = cum;
                    if le.is_infinite() {
                        st.inf = Some(cum);
                    }
                }
                "_sum" => st.sum_seen = true,
                "_count" => st.count = value.parse::<u64>().ok(),
                _ => errors.push(format!(
                    "line {ln}: bare sample '{name}' for histogram '{family_name}'"
                )),
            }
        }
    }
    for (name, ty) in &types {
        if ty != "histogram" {
            continue;
        }
        let Some(st) = hists.get(name) else {
            continue; // declared but sampleless: legal
        };
        if st.inf.is_none() {
            errors.push(format!("histogram '{name}' has no +Inf bucket"));
        }
        if !st.sum_seen {
            errors.push(format!("histogram '{name}' has no _sum sample"));
        }
        match (st.inf, st.count) {
            (Some(inf), Some(count)) if inf != count => errors.push(format!(
                "histogram '{name}': +Inf bucket {inf} != _count {count}"
            )),
            (_, None) => errors.push(format!("histogram '{name}' has no _count sample")),
            _ => {}
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Minimal JSON string escaping (mirrors the CLI's ledger escaping).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// Run the parser against raw bytes sent over a real socket pair.
    fn parse_bytes(raw: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Keep the socket open briefly so the server sees the data,
            // then close (EOF) so incomplete requests fail Disconnected.
            s.flush().unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(2000)))
            .unwrap();
        let r = read_request(&mut stream, 8192, 65536);
        client.join().unwrap();
        r
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse_bytes(
            b"POST /analyze?variant=base&loop=hot%20spot HTTP/1.1\r\n\
              Host: x\r\nContent-Length: 5\r\nX-Padfa-Max-Steps: 100\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/analyze");
        assert_eq!(req.query.get("variant").map(String::as_str), Some("base"));
        assert_eq!(req.query.get("loop").map(String::as_str), Some("hot spot"));
        assert_eq!(req.header("x-padfa-max-steps"), Some("100"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn get_without_length_has_empty_body() {
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_without_length_is_411() {
        let e = parse_bytes(b"POST /analyze HTTP/1.1\r\nHost: x\r\n\r\n").unwrap_err();
        assert!(matches!(e, RequestError::LengthRequired));
        assert_eq!(e.status().map(|s| s.0), Some(411));
    }

    #[test]
    fn oversized_body_is_413_before_reading_it() {
        let e =
            parse_bytes(b"POST /analyze HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err();
        assert!(matches!(e, RequestError::TooLarge("request body")));
    }

    #[test]
    fn bad_request_line_is_400() {
        let e = parse_bytes(b"NONSENSE\r\n\r\n").unwrap_err();
        assert!(matches!(e, RequestError::Malformed(_)));
        assert_eq!(e.status().map(|s| s.0), Some(400));
    }

    #[test]
    fn torn_client_mid_body_is_disconnected() {
        // Content-Length promises 100 bytes; the client sends 3 and
        // closes. The server must classify this as a torn client, not
        // hang or crash.
        let e =
            parse_bytes(b"POST /analyze HTTP/1.1\r\nContent-Length: 100\r\n\r\nabc").unwrap_err();
        assert!(matches!(e, RequestError::Disconnected));
        assert!(e.status().is_none()); // nothing useful to write back
    }

    #[test]
    fn prometheus_rendering_is_typed_bucketed_and_checkable() {
        let reg = padfa_core::MetricsRegistry::new();
        reg.counter("service.requests").add(3);
        reg.counter("store.hits").add(7);
        reg.histogram("service.latency.analyze").record_ns(1000);
        let text = prometheus_text(&reg, "abc1234");
        // Identity gauge with both labels.
        assert!(text.contains("padfa_build_info{git_rev=\"abc1234\",schema_version=\"3\"} 1\n"));
        // Counters keep the bare sample shape existing scrapers parse.
        assert!(text.contains("# TYPE padfa_service_requests counter\npadfa_service_requests 3\n"));
        assert!(text.contains("padfa_store_hits 7\n"));
        // Histograms are cumulative-bucket histograms, not summaries.
        assert!(text.contains("# TYPE padfa_service_latency_analyze_ns histogram\n"));
        assert!(text.contains("padfa_service_latency_analyze_ns_bucket{le=\"1023\"} 1\n"));
        assert!(text.contains("padfa_service_latency_analyze_ns_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("padfa_service_latency_analyze_ns_sum 1000\n"));
        assert!(text.contains("padfa_service_latency_analyze_ns_count 1\n"));
        assert!(!text.contains("quantile"));
        // Every family has HELP + TYPE and the whole scrape validates.
        check_exposition(&text).unwrap();
    }

    #[test]
    fn exposition_checker_rejects_malformed_scrapes() {
        // Sample with no preceding TYPE.
        let errs = check_exposition("padfa_orphan 3\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("no preceding # TYPE")));
        // Non-monotone histogram buckets.
        let bad = "# TYPE padfa_h_ns histogram\n\
                   padfa_h_ns_bucket{le=\"1\"} 5\n\
                   padfa_h_ns_bucket{le=\"2\"} 3\n\
                   padfa_h_ns_bucket{le=\"+Inf\"} 5\n\
                   padfa_h_ns_sum 9\npadfa_h_ns_count 5\n";
        let errs = check_exposition(bad).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.contains("cumulative count decreased")));
        // Missing +Inf bucket.
        let bad = "# TYPE padfa_h_ns histogram\n\
                   padfa_h_ns_bucket{le=\"1\"} 5\n\
                   padfa_h_ns_sum 9\npadfa_h_ns_count 5\n";
        let errs = check_exposition(bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("no +Inf bucket")));
        // +Inf disagrees with _count.
        let bad = "# TYPE padfa_h_ns histogram\n\
                   padfa_h_ns_bucket{le=\"+Inf\"} 5\n\
                   padfa_h_ns_sum 9\npadfa_h_ns_count 6\n";
        let errs = check_exposition(bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("!= _count")));
        // Bad metric name and non-numeric value.
        let errs = check_exposition("# TYPE 9bad counter\n9bad x\n").unwrap_err();
        assert!(errs.len() >= 2);
        // A valid tiny scrape passes.
        check_exposition("# HELP padfa_x Count.\n# TYPE padfa_x counter\npadfa_x 1\n").unwrap();
    }

    #[test]
    fn response_serialization_and_torn_write() {
        let r = Response::json(200, "OK", "{\"a\":1}".to_string())
            .with_header("Retry-After", "1".to_string());
        let bytes = r.to_bytes();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("{\"a\":1}"));
        // A torn write stops strictly short of the full serialization.
        assert!(bytes.len() / 2 < bytes.len());
    }
}
