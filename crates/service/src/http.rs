//! Minimal HTTP/1.1 on `std::net::TcpStream`: just enough protocol for
//! the daemon's five endpoints, written defensively.
//!
//! The parser enforces the policy's header/body size caps *while
//! reading* (an oversized request is rejected before it is buffered),
//! relies on socket read timeouts to bound slow clients, and requires
//! `Content-Length` on bodies (no chunked encoding — clients of this
//! service are curl, the load generator, and CI). Every response
//! carries `Connection: close`; one request per connection keeps worker
//! state machines trivial and makes torn-client handling local.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// A parsed request: method, path, decoded query pairs, lowercase
/// header map, raw body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: BTreeMap<String, String>,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, or `None` when it is not valid UTF-8.
    pub fn body_utf8(&self) -> Option<String> {
        String::from_utf8(self.body.clone()).ok()
    }

    /// A header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }
}

/// Why a request could not be read. Each maps to one HTTP status (or
/// to silently closing the connection when no reply can reach anyone).
#[derive(Debug)]
pub enum RequestError {
    /// Socket read timed out mid-request (slow-loris or torn client).
    Timeout,
    /// Client closed the connection before a full request arrived.
    Disconnected,
    /// Head or body exceeded the policy cap.
    TooLarge(&'static str),
    /// Unparseable request line / header / length.
    Malformed(&'static str),
    /// A body-bearing method without `Content-Length`.
    LengthRequired,
    /// Any other socket error.
    Io(std::io::Error),
}

impl RequestError {
    /// The HTTP status this error maps to; `None` means the socket is
    /// unusable and the connection should just be dropped.
    pub fn status(&self) -> Option<(u16, &'static str, &'static str)> {
        match self {
            RequestError::Timeout => Some((408, "Request Timeout", "timeout")),
            RequestError::TooLarge(_) => Some((413, "Payload Too Large", "too_large")),
            RequestError::Malformed(_) => Some((400, "Bad Request", "bad_request")),
            RequestError::LengthRequired => Some((411, "Length Required", "length_required")),
            RequestError::Disconnected | RequestError::Io(_) => None,
        }
    }

    pub fn detail(&self) -> String {
        match self {
            RequestError::Timeout => "socket read timed out".to_string(),
            RequestError::Disconnected => "client disconnected".to_string(),
            RequestError::TooLarge(what) => format!("{what} exceeds the configured limit"),
            RequestError::Malformed(what) => format!("malformed {what}"),
            RequestError::LengthRequired => "POST requires Content-Length".to_string(),
            RequestError::Io(e) => format!("socket error: {e}"),
        }
    }
}

fn timeout_kind(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Read one request from `stream`, enforcing size caps as bytes arrive.
/// The caller must have set the socket read timeout.
pub fn read_request(
    stream: &mut TcpStream,
    max_header_bytes: usize,
    max_body_bytes: usize,
) -> Result<Request, RequestError> {
    // Accumulate until the blank line ending the head, never holding
    // more than the head cap plus one read chunk.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > max_header_bytes {
            return Err(RequestError::TooLarge("request head"));
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(RequestError::Disconnected),
            Ok(n) => n,
            Err(e) if timeout_kind(&e) => return Err(RequestError::Timeout),
            Err(e) => return Err(RequestError::Io(e)),
        };
        buf.extend_from_slice(&chunk[..n]);
    };
    let head_bytes = buf[..head_end].to_vec();
    let head = std::str::from_utf8(&head_bytes)
        .map_err(|_| RequestError::Malformed("request head (not UTF-8)"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut words = request_line.split(' ');
    let (method, target, version) = match (words.next(), words.next(), words.next(), words.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(RequestError::Malformed("request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed("HTTP version"));
    }
    let (path, query) = parse_target(target)?;
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RequestError::Malformed("header line"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    // Body: only when Content-Length says so. POST without a length is
    // 411; anything else with a length gets its body read and ignored.
    let content_length = match headers.get("content-length") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| RequestError::Malformed("Content-Length"))?,
        ),
        None if method == "POST" => return Err(RequestError::LengthRequired),
        None => None,
    };
    let mut body = buf.split_off(head_end + 4);
    if let Some(len) = content_length {
        if len > max_body_bytes {
            return Err(RequestError::TooLarge("request body"));
        }
        if body.len() > len {
            body.truncate(len); // pipelined bytes beyond the request are dropped
        }
        while body.len() < len {
            let want = (len - body.len()).min(chunk.len());
            let n = match stream.read(&mut chunk[..want]) {
                Ok(0) => return Err(RequestError::Disconnected),
                Ok(n) => n,
                Err(e) if timeout_kind(&e) => return Err(RequestError::Timeout),
                Err(e) => return Err(RequestError::Io(e)),
            };
            body.extend_from_slice(&chunk[..n]);
        }
    } else {
        body.clear();
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_target(target: &str) -> Result<(&str, BTreeMap<String, String>), RequestError> {
    let (path, qs) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if !path.starts_with('/') {
        return Err(RequestError::Malformed("request target"));
    }
    let mut query = BTreeMap::new();
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(percent_decode(k), percent_decode(v));
    }
    Ok((path, query))
}

/// Decode `%XX` escapes and `+` (space). Invalid escapes pass through
/// literally — query values here are loop labels and variant names, so
/// strictness buys nothing.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response ready to serialize: status, extra headers, body.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub reason: &'static str,
    pub content_type: &'static str,
    /// Extra headers as `(name, value)` pairs (e.g. `Retry-After`).
    pub extra: Vec<(&'static str, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, reason: &'static str, body: String) -> Response {
        Response {
            status,
            reason,
            content_type: "application/json",
            extra: Vec::new(),
            body: body.into_bytes(),
        }
    }

    pub fn text(status: u16, reason: &'static str, body: String) -> Response {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            extra: Vec::new(),
            body: body.into_bytes(),
        }
    }

    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.extra.push((name, value));
        self
    }

    /// Serialize head + body into one buffer (written with a single
    /// `write_all` so short-write truncation is the OS's doing, not
    /// interleaving).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Write the whole response; errors are returned for accounting but
    /// there is nothing further to do with a dead client.
    pub fn write(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }

    /// Write only the first half of the serialized response, then stop —
    /// the deterministic "torn response" fault: the client sees a valid
    /// status line but a short body and must treat the reply as corrupt.
    pub fn write_torn(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let bytes = self.to_bytes();
        stream.write_all(&bytes[..bytes.len() / 2])?;
        stream.flush()
    }
}

/// Minimal JSON string escaping (mirrors the CLI's ledger escaping).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// Run the parser against raw bytes sent over a real socket pair.
    fn parse_bytes(raw: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Keep the socket open briefly so the server sees the data,
            // then close (EOF) so incomplete requests fail Disconnected.
            s.flush().unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(2000)))
            .unwrap();
        let r = read_request(&mut stream, 8192, 65536);
        client.join().unwrap();
        r
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse_bytes(
            b"POST /analyze?variant=base&loop=hot%20spot HTTP/1.1\r\n\
              Host: x\r\nContent-Length: 5\r\nX-Padfa-Max-Steps: 100\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/analyze");
        assert_eq!(req.query.get("variant").map(String::as_str), Some("base"));
        assert_eq!(req.query.get("loop").map(String::as_str), Some("hot spot"));
        assert_eq!(req.header("x-padfa-max-steps"), Some("100"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn get_without_length_has_empty_body() {
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_without_length_is_411() {
        let e = parse_bytes(b"POST /analyze HTTP/1.1\r\nHost: x\r\n\r\n").unwrap_err();
        assert!(matches!(e, RequestError::LengthRequired));
        assert_eq!(e.status().map(|s| s.0), Some(411));
    }

    #[test]
    fn oversized_body_is_413_before_reading_it() {
        let e =
            parse_bytes(b"POST /analyze HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err();
        assert!(matches!(e, RequestError::TooLarge("request body")));
    }

    #[test]
    fn bad_request_line_is_400() {
        let e = parse_bytes(b"NONSENSE\r\n\r\n").unwrap_err();
        assert!(matches!(e, RequestError::Malformed(_)));
        assert_eq!(e.status().map(|s| s.0), Some(400));
    }

    #[test]
    fn torn_client_mid_body_is_disconnected() {
        // Content-Length promises 100 bytes; the client sends 3 and
        // closes. The server must classify this as a torn client, not
        // hang or crash.
        let e =
            parse_bytes(b"POST /analyze HTTP/1.1\r\nContent-Length: 100\r\n\r\nabc").unwrap_err();
        assert!(matches!(e, RequestError::Disconnected));
        assert!(e.status().is_none()); // nothing useful to write back
    }

    #[test]
    fn response_serialization_and_torn_write() {
        let r = Response::json(200, "OK", "{\"a\":1}".to_string())
            .with_header("Retry-After", "1".to_string());
        let bytes = r.to_bytes();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("{\"a\":1}"));
        // A torn write stops strictly short of the full serialization.
        assert!(bytes.len() / 2 < bytes.len());
    }
}
