//! The loop pattern library: each emitter appends one population unit to
//! a generated program and records expectations for its labeled loops.

use crate::corpus::{Expect, HardLoop};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Program generator state.
pub struct Gen {
    prog: String,
    body: String,
    extra_procs: String,
    pub hard: Vec<HardLoop>,
    k: usize,
    rng: StdRng,
    reshape_callee: bool,
    /// When `Some(wrap_var)`, the next pattern is wrapped in a
    /// sequential outer loop and emitted at nesting depth 1.
    wrap: bool,
}

impl Gen {
    pub fn new(prog: &str, seed: u64) -> Gen {
        Gen {
            prog: prog.replace('-', "_"),
            body: String::new(),
            extra_procs: String::new(),
            hard: Vec::new(),
            k: 0,
            rng: StdRng::seed_from_u64(seed),
            reshape_callee: false,
            wrap: false,
        }
    }

    /// Assemble the final source text.
    pub fn finish(self) -> String {
        format!(
            "proc main(n: int, x: int, m: int, d: int) {{\n{}}}\n{}",
            self.body, self.extra_procs
        )
    }

    fn next_k(&mut self) -> usize {
        self.k += 1;
        self.k
    }

    fn trip(&mut self) -> usize {
        self.rng.gen_range(5..=10)
    }

    fn mark(&mut self, label: &str, expect: Expect) {
        let inner = self.wrap;
        self.hard.push(HardLoop {
            label: label.to_string(),
            expect,
            inner,
        });
    }

    /// Emit a pattern body, optionally wrapped in a sequential outer
    /// loop (so the interesting loop sits at depth 1).
    fn emit(&mut self, decls: String, stmts: String) {
        self.body.push_str(&decls);
        if self.wrap {
            let k = self.next_k();
            let n = self.trip();
            let _ = writeln!(self.body, "  array wz{k}[{sz}];", sz = n + 1);
            let _ = writeln!(self.body, "  for w = 2 to {n} {{");
            let _ = writeln!(self.body, "    wz{k}[w] = wz{k}[w - 1] + 1.0;");
            for line in stmts.lines() {
                let _ = writeln!(self.body, "  {line}");
            }
            let _ = writeln!(self.body, "  }}");
        } else {
            self.body.push_str(&stmts);
        }
    }

    /// Simple independent loop — base-parallel. One in three runs
    /// downward (negative step), exercising reversed iteration order.
    pub fn simple(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let c = self.rng.gen_range(1..5);
        let decls = format!("  array s{k}[{n}];\n");
        let stmts = if k.is_multiple_of(3) {
            format!("  for i = {n} to 1 step -1 {{ s{k}[i] = i * 2.0 + {c}.0; }}\n")
        } else {
            format!("  for i = 1 to {n} {{ s{k}[i] = i * 2.0 + {c}.0; }}\n")
        };
        self.emit(decls, stmts);
    }

    /// Two-level independent nest — both loops base-parallel.
    pub fn nest2(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let decls = format!("  array t{k}[{n}, {n}];\n");
        let stmts =
            format!("  for i = 1 to {n} {{ for j = 1 to {n} {{ t{k}[i, j] = i + j * 1.5; }} }}\n");
        self.emit(decls, stmts);
    }

    /// Scalar reduction — base-parallel (reduction recognition).
    /// Rotates through sum, max, min, and product forms.
    pub fn reduction(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let decls = format!("  array r{k}[{n}];\n  var rs{k}: real;\n");
        let update = match k % 4 {
            0 => format!("rs{k} = max(rs{k}, r{k}[i]);"),
            1 => format!("rs{k} = min(rs{k}, r{k}[i]);"),
            2 => format!("rs{k} = rs{k} * (1.0 + r{k}[i] * 0.001);"),
            _ => format!("rs{k} = rs{k} + r{k}[i];"),
        };
        let stmts = format!("  for i = 1 to {n} {{ {update} }}\n");
        self.emit(decls, stmts);
    }

    /// Privatizable temporary — base-parallel with privatization.
    pub fn privtemp(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let decls = format!("  array p{k}[{n}];\n  array pt{k}[4];\n");
        let stmts = format!(
            "  for i = 1 to {n} {{\n    for j = 1 to 4 {{ pt{k}[j] = p{k}[i] + j; }}\n    p{k}[i] = pt{k}[1] * pt{k}[4];\n  }}\n"
        );
        self.emit(decls, stmts);
    }

    /// True recurrence — sequential everywhere. Variants rotate through
    /// upward, downward, and scalar-carried forms for population
    /// diversity.
    pub fn seqrec(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        match k % 3 {
            0 => {
                // Downward recurrence.
                let decls = format!("  array q{k}[{sz}];\n", sz = n + 1);
                let stmts =
                    format!("  for i = {n} to 1 step -1 {{ q{k}[i] = q{k}[i + 1] + 0.5; }}\n");
                self.emit(decls, stmts);
            }
            1 => {
                // Scalar-carried recurrence (exposed read of `acc`).
                let decls = format!("  array q{k}[{n}];\n  var acc{k}: real;\n");
                let stmts = format!(
                    "  for i = 1 to {n} {{ q{k}[i] = acc{k}; acc{k} = acc{k} * 0.5 + q{k}[i]; }}\n"
                );
                self.emit(decls, stmts);
            }
            _ => {
                let decls = format!("  array q{k}[{n}];\n");
                let stmts = format!("  for i = 2 to {n} {{ q{k}[i] = q{k}[i - 1] + 0.5; }}\n");
                self.emit(decls, stmts);
            }
        }
    }

    /// Read I/O — not a candidate.
    pub fn ioloop(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let decls = format!("  array io{k}[{n}];\n  var iv{k}: real;\n");
        let stmts = format!("  for i = 1 to {n} {{ read iv{k}; io{k}[i] = iv{k}; }}\n");
        self.emit(decls, stmts);
    }

    /// Internal exit — not a candidate (the exit never fires on the
    /// standard workload, so execution still covers every iteration).
    pub fn exitloop(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let decls = format!("  array ex{k}[{n}];\n");
        let stmts = format!(
            "  for i = 1 to {n} {{ ex{k}[i] = i * 1.0; exit when (ex{k}[i] > 1000.0); }}\n"
        );
        self.emit(decls, stmts);
    }

    /// Inherently parallel subscript-array loop: the index array holds
    /// distinct values, so no dynamic dependence exists, but no static
    /// variant can know. Two loops: an init loop (base-parallel) and the
    /// target (ELPD-only).
    pub fn nonaffine_par(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let label = format!("np{k}");
        let decls = format!("  array na{k}[{n}];\n  array nix{k}[{n}] of int;\n");
        let stmts = format!(
            "  for i = 1 to {n} {{ nix{k}[i] = i; }}\n  for@{label} i = 1 to {n} {{ na{k}[nix{k}[i]] = na{k}[nix{k}[i]] * 0.5 + 1.0; }}\n"
        );
        self.emit(decls, stmts);
        self.mark(&label, Expect::ElpdOnly);
    }

    /// Colliding subscript-array loop: genuinely sequential.
    pub fn nonaffine_seq(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let label = format!("ns{k}");
        let decls = format!("  array nb{k}[{n}];\n  array njx{k}[{n}] of int;\n");
        let stmts = format!(
            "  for i = 1 to {n} {{ njx{k}[i] = 1; }}\n  for@{label} i = 1 to {n} {{ nb{k}[njx{k}[i]] = nb{k}[njx{k}[i]] * 0.5 + 1.0; }}\n"
        );
        self.emit(decls, stmts);
        self.mark(&label, Expect::Sequential);
    }

    /// Figure 1(a): write and read of a temporary under the same
    /// loop-invariant guard. Predicated/guarded analyses prove the read
    /// covered and privatize; base leaves the loop sequential. Three
    /// loops: the outer win plus two base-parallel inner loops.
    pub fn fig1a(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let nj = self.rng.gen_range(4..=8);
        let label = format!("f1a{k}");
        let decls = format!("  array ha{k}[{nj}];\n  array aa{k}[{n}, {nj}];\n");
        let stmts = format!(
            "  for@{label} i = 1 to {n} {{\n    if (x > 5) {{ for j = 1 to {nj} {{ ha{k}[j] = j * 2.0; }} }}\n    if (x > 5) {{ for j = 1 to {nj} {{ aa{k}[i, j] = ha{k}[j]; }} }}\n  }}\n"
        );
        self.emit(decls, stmts);
        self.mark(&label, Expect::PredicatedCT);
    }

    /// Figure 1(b): guarded write of `help[i]`, cross-iteration read of
    /// `help[i+1]` — parallel exactly when the guard is false, a derived
    /// run-time test.
    pub fn guard_rt(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let label = format!("grt{k}");
        let decls = format!("  array hb{k}[{sz}];\n  array ab{k}[{n}, 2];\n", sz = n + 1);
        let stmts = format!(
            "  for@{label} i = 1 to {n} {{\n    if (x > 5) {{ hb{k}[i] = ab{k}[i, 1] + 1.0; }}\n    ab{k}[i, 2] = hb{k}[i + 1];\n  }}\n"
        );
        self.emit(decls, stmts);
        self.mark(&label, Expect::PredicatedRT);
    }

    /// Boundary-condition test: iteration i writes element i and reads
    /// element m; a dependence exists only when m falls inside the
    /// iteration range — extraction derives the test on m.
    pub fn boundary_rt(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let label = format!("brt{k}");
        let decls = format!("  array hc{k}[64];\n  array ac{k}[64];\n");
        let stmts = format!(
            "  for@{label} i = 1 to {n} {{\n    hc{k}[i] = ac{k}[i] * 2.0;\n    ac{k}[i] = hc{k}[m];\n  }}\n"
        );
        self.emit(decls, stmts);
        self.mark(&label, Expect::PredicatedRT);
    }

    /// Figure 1(c): a guard over the loop index; embedding the guard
    /// into the region proves the accesses disjoint at compile time.
    /// Guarded analysis (no embedding) fails.
    pub fn embed(&mut self) {
        let k = self.next_k();
        let n = 10;
        let kk = 6; // distance > n/2: guarded ranges cannot collide
        let label = format!("emb{k}");
        let decls = format!("  array ae{k}[{n}];\n");
        let stmts = format!(
            "  for@{label} i = 1 to {n} {{\n    if (i > {kk}) {{ ae{k}[i] = ae{k}[i - {kk}] + 1.0; }}\n  }}\n"
        );
        self.emit(decls, stmts);
        self.mark(&label, Expect::EmbeddingCT);
    }

    /// Reshape divisibility: a callee fills its whole (linearized)
    /// parameter; the caller passes a 2-D array with symbolic extents.
    /// The extracted `size == r*c` guard makes the must-write cover the
    /// caller array, enabling privatization under a run-time test.
    pub fn reshape_rt(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let label = format!("rsh{k}");
        if !self.reshape_callee {
            self.reshape_callee = true;
            let _ = writeln!(
                self.extra_procs,
                "proc zfill_{p}(b: array[mm], mm: int) {{ for q = 1 to mm {{ b[q] = 0.5; }} }}",
                p = self.prog
            );
        }
        let decls = format!("  array g{k}[n, n];\n  array ag{k}[{n}];\n");
        let stmts = format!(
            "  for@{label} i = 1 to {n} {{\n    call zfill_{p}(g{k}, n * n);\n    ag{k}[i] = g{k}[1, 1] + g{k}[n, n];\n  }}\n",
            p = self.prog
        );
        self.emit(decls, stmts);
        self.mark(&label, Expect::PredicatedRT);
    }

    /// Complementary-guard pattern: two guarded writes to *different*
    /// element ranges of the same array, each matched by a read under
    /// the same guard. Keeping the guarded pieces separate (K >= 2)
    /// proves the loop independent at compile time; merging them into a
    /// single piece (K = 1) loses the correlation and leaves the loop
    /// sequential — the pattern that makes the K ablation meaningful.
    pub fn multi_guard(&mut self) {
        let k = self.next_k();
        let n = self.trip();
        let label = format!("mg{k}");
        let decls = format!("  array hm{k}[{sz}];\n  array am{k}[{n}];\n", sz = n + 1);
        let stmts = format!(
            "  for@{label} i = 1 to {n} {{\n    if (x > 5) {{ hm{k}[i] = am{k}[i]; }}\n    if (x <= 5) {{ hm{k}[i + 1] = am{k}[i] * 2.0; }}\n    if (x > 5) {{ am{k}[i] = hm{k}[i]; }}\n    if (x <= 5) {{ am{k}[i] = hm{k}[i + 1]; }}\n  }}\n"
        );
        self.emit(decls, stmts);
        self.mark(&label, Expect::PredicatedCT);
    }

    /// Run the next pattern wrapped in a sequential outer loop.
    pub fn wrapped(&mut self, f: impl FnOnce(&mut Gen)) {
        self.wrap = true;
        f(self);
        self.wrap = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_ir::parse::parse_program;

    fn gen_one(f: impl FnOnce(&mut Gen)) -> (String, Vec<HardLoop>) {
        let mut g = Gen::new("test", 42);
        f(&mut g);
        let hard = g.hard.clone();
        (g.finish(), hard)
    }

    #[test]
    fn every_pattern_parses() {
        let (src, _) = gen_one(|g| {
            g.simple();
            g.nest2();
            g.reduction();
            g.privtemp();
            g.seqrec();
            g.ioloop();
            g.exitloop();
            g.nonaffine_par();
            g.nonaffine_seq();
            g.fig1a();
            g.guard_rt();
            g.boundary_rt();
            g.embed();
            g.reshape_rt();
        });
        parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    }

    #[test]
    fn wrapped_patterns_parse_and_mark_inner() {
        let (src, hard) = gen_one(|g| {
            g.wrapped(|g| g.fig1a());
            g.wrapped(|g| g.guard_rt());
        });
        parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert!(hard.iter().all(|h| h.inner));
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = gen_one(|g| {
            g.simple();
            g.fig1a();
        });
        let (b, _) = gen_one(|g| {
            g.simple();
            g.fig1a();
        });
        assert_eq!(a, b);
    }

    #[test]
    fn reshape_emits_callee_once() {
        let (src, _) = gen_one(|g| {
            g.reshape_rt();
            g.reshape_rt();
        });
        assert_eq!(src.matches("proc zfill_test").count(), 1);
        parse_program(&src).unwrap();
    }
}
