//! The paper's Figure 1: four examples motivating predicated array
//! data-flow analysis. Each is a standalone program whose outermost
//! labeled loop (`@outer`) is the loop of interest.

use padfa_ir::{parse::parse_program, Program};

/// Figure 1(a) — *improves compile-time analysis*: the write and the
/// read of `help` sit under the same loop-invariant guard. Guarded
/// values prove every exposed read covered, so `help` privatizes and the
/// outer loop parallelizes at compile time; the unpredicated base
/// analysis loses the must-write at the merge and stays sequential.
pub fn fig1a() -> Program {
    parse_program(
        "proc main(c: int, n: int, x: int) {
            array help[100];
            array a[100, 100];
            for@outer i = 1 to c {
                if (x > 5) {
                    for j = 1 to n { help[j] = j * 2.0; }
                }
                if (x > 5) {
                    for j = 1 to n { a[i, j] = help[j]; }
                }
            }
        }",
    )
    .expect("fig1a parses")
}

/// Figure 1(b) — *derives a run-time test*: the write of `help[i]` is
/// guarded; iteration `i` reads `help[i+1]`, which iteration `i+1` may
/// write. The cross-iteration flow dependence exists only when the
/// guard holds, so the predicated analysis emits the two-version test
/// `!(x > 5) ...` and parallelizes the loop whenever the guard is false
/// at entry.
pub fn fig1b() -> Program {
    parse_program(
        "proc main(c: int, x: int) {
            array help[101];
            array a[100, 2];
            for@outer i = 1 to c {
                if (x > 5) { help[i] = a[i, 1] + 1.0; }
                a[i, 2] = help[i + 1];
            }
        }",
    )
    .expect("fig1b parses")
}

/// Figure 1(c) — *benefits from predicate embedding*: the guard `i > 6`
/// mentions the loop index. Embedding it into the array regions before
/// projection proves the guarded write range `[7..10]` disjoint from
/// the guarded read range `[1..4]`; without embedding the guard must be
/// discarded and the ranges appear to overlap.
pub fn fig1c() -> Program {
    parse_program(
        "proc main(c: int) {
            array a[10];
            for@outer i = 1 to 10 {
                if (i > 6) { a[i] = a[i - 6] + 1.0; }
            }
        }",
    )
    .expect("fig1c parses")
}

/// Figure 1(d) — *benefits from predicate extraction*: the write loop
/// covers `help[2..d]` and may execute zero iterations; whether `help`
/// is upward-exposed at the outer loop depends on `d` — a condition
/// that lives in the region constraints until extraction moves it into
/// a predicate. (In our framework the exposed remainder regions carry
/// the emptiness conditions, so privatization with copy-in already
/// succeeds at compile time; the run-time-test flavor of extraction is
/// exercised by [`fig1d_runtime`].)
pub fn fig1d() -> Program {
    parse_program(
        "proc main(c: int, n: int, d: int) {
            array help[100];
            array a[100, 100];
            for@outer i = 1 to c {
                for j = 2 to d { help[j] = i * 1.0 + j; }
                for j = 2 to d { a[i, j] = help[j - 1]; }
            }
        }",
    )
    .expect("fig1d parses")
}

/// The run-time-test variant of extraction (boundary condition): the
/// loop writes `help[i]` and reads `help[m]`; a dependence requires `m`
/// to fall inside the iteration range — extraction derives exactly that
/// condition on `m`, negated into the loop's run-time test.
pub fn fig1d_runtime() -> Program {
    parse_program(
        "proc main(c: int, m: int) {
            array help[100];
            array a[100];
            for@outer i = 1 to c {
                help[i] = a[i] * 2.0;
                a[i] = help[m];
            }
        }",
    )
    .expect("fig1d_runtime parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_core::{analyze_program, Options, Outcome};

    fn outer(prog: &Program, opts: &Options) -> Outcome {
        analyze_program(prog, opts)
            .unwrap()
            .by_label("outer")
            .expect("outer loop")
            .outcome
            .clone()
    }

    #[test]
    fn fig1a_needs_predicates() {
        let p = fig1a();
        assert!(matches!(outer(&p, &Options::base()), Outcome::Sequential));
        assert!(outer(&p, &Options::guarded()).is_parallelizable());
        assert!(outer(&p, &Options::predicated()).is_parallelizable());
    }

    #[test]
    fn fig1b_needs_runtime_test() {
        let p = fig1b();
        assert!(matches!(outer(&p, &Options::base()), Outcome::Sequential));
        assert!(matches!(
            outer(&p, &Options::guarded()),
            Outcome::Sequential
        ));
        assert!(matches!(
            outer(&p, &Options::predicated()),
            Outcome::ParallelIf(_)
        ));
    }

    #[test]
    fn fig1c_needs_embedding() {
        let p = fig1c();
        assert!(matches!(outer(&p, &Options::base()), Outcome::Sequential));
        assert!(matches!(
            outer(&p, &Options::guarded()),
            Outcome::Sequential
        ));
        assert!(matches!(
            outer(&p, &Options::predicated()),
            Outcome::Parallel
        ));
    }

    #[test]
    fn fig1d_parallelizes_with_region_conditions() {
        let p = fig1d();
        assert!(outer(&p, &Options::predicated()).is_parallelizable());
    }

    #[test]
    fn fig1d_runtime_needs_extraction() {
        let p = fig1d_runtime();
        assert!(matches!(outer(&p, &Options::base()), Outcome::Sequential));
        assert!(matches!(
            outer(&p, &Options::guarded()),
            Outcome::Sequential
        ));
        match outer(&p, &Options::predicated()) {
            Outcome::ParallelIf(t) => assert!(t.is_runtime_testable()),
            other => panic!("expected run-time test, got {other}"),
        }
        // Extraction disabled: the test disappears.
        let mut no_ext = Options::predicated();
        no_ext.extraction = false;
        assert!(matches!(outer(&p, &no_ext), Outcome::Sequential));
    }
}
