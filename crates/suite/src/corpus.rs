//! Corpus assembly: benchmark programs with known loop populations.

use crate::patterns::Gen;
use crate::programs::{SuiteName, PROGRAM_SPECS};
use padfa_ir::{parse::parse_program, Program};
use padfa_rt::ArgValue;

/// What a generated loop is expected to be, across analysis variants.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expect {
    /// Parallelized by the base SUIF analysis (and everything above it).
    BaseParallel,
    /// Compile-time win that needs predicated values; the guarded
    /// (Gu/Li/Lee) variant also succeeds. Figure 1(a).
    PredicatedCT,
    /// Compile-time win that needs predicate embedding; the guarded
    /// variant fails. Figure 1(c).
    EmbeddingCT,
    /// Requires a derived run-time test (guards or extraction).
    /// Figure 1(b,d).
    PredicatedRT,
    /// Inherently parallel on the workload (ELPD says doall) but beyond
    /// every static variant.
    ElpdOnly,
    /// Genuinely sequential (a loop-carried flow dependence exists both
    /// statically and dynamically).
    Sequential,
    /// Not a candidate (read I/O or internal exit).
    NotCandidate,
}

impl Expect {
    /// Should this variant parallelize the loop (possibly with a
    /// run-time test)?
    pub fn parallelized_by(self, variant: padfa_core::Variant) -> bool {
        use padfa_core::Variant::*;
        match self {
            Expect::BaseParallel => true,
            Expect::PredicatedCT => variant != Base,
            Expect::EmbeddingCT | Expect::PredicatedRT => variant == Predicated,
            Expect::ElpdOnly | Expect::Sequential | Expect::NotCandidate => false,
        }
    }

    /// Should the ELPD inspector report the loop parallelizable on the
    /// standard workload?
    pub fn elpd_parallel(self) -> bool {
        !matches!(self, Expect::Sequential | Expect::NotCandidate)
    }
}

/// A labeled pattern loop with its expectation.
#[derive(Clone, Debug)]
pub struct HardLoop {
    pub label: String,
    pub expect: Expect,
    /// True when the pattern was wrapped inside a sequential outer loop
    /// (the win is at an inner nesting level).
    pub inner: bool,
}

/// One corpus program, ready for analysis and execution.
pub struct BenchProgram {
    pub name: &'static str,
    pub suite: SuiteName,
    pub source: String,
    pub program: Program,
    /// Arguments for `main(n, x, m, d)` — the standard workload.
    pub args: Vec<ArgValue>,
    /// Labeled loops with known expectations (the generator's hard
    /// patterns; filler loops are unlabeled).
    pub hard: Vec<HardLoop>,
}

impl BenchProgram {
    /// The standard workload: n=6 (reshape sizes), x=3 (guards false at
    /// run time), m=50 (boundary reads outside every iteration range),
    /// d=2.
    pub fn standard_args() -> Vec<ArgValue> {
        vec![
            ArgValue::Int(6),
            ArgValue::Int(3),
            ArgValue::Int(50),
            ArgValue::Int(2),
        ]
    }
}

/// Build the full corpus (one program per spec).
pub fn build_corpus() -> Vec<BenchProgram> {
    PROGRAM_SPECS
        .iter()
        .map(|spec| {
            let mut gen = Gen::new(spec.name, spec.seed);
            spec.emit(&mut gen);
            let hard = std::mem::take(&mut gen.hard);
            let source = gen.finish();
            let program = parse_program(&source).unwrap_or_else(|e| {
                panic!(
                    "generated program '{}' failed to parse: {e}\n{source}",
                    spec.name
                )
            });
            BenchProgram {
                name: spec.name,
                suite: spec.suite,
                source,
                program,
                args: BenchProgram::standard_args(),
                hard,
            }
        })
        .collect()
}

/// Build a single corpus program by name.
pub fn build_program(name: &str) -> Option<BenchProgram> {
    let spec = PROGRAM_SPECS.iter().find(|s| s.name == name)?;
    let mut gen = Gen::new(spec.name, spec.seed);
    spec.emit(&mut gen);
    let hard = std::mem::take(&mut gen.hard);
    let source = gen.finish();
    let program = parse_program(&source).ok()?;
    Some(BenchProgram {
        name: spec.name,
        suite: spec.suite,
        source,
        program,
        args: BenchProgram::standard_args(),
        hard,
    })
}
