//! Hand-written mini-applications in the style of the scientific codes
//! the paper's introduction motivates. Unlike the generated corpus,
//! these read like real (reduced) programs and exercise several
//! analysis features at once. Each returns the program plus a standard
//! argument list.

use padfa_ir::{parse::parse_program, Program};
use padfa_rt::{ArgValue, ArrayStore};

/// Jacobi relaxation with a convergence check and early exit.
///
/// The sweep loops are parallel (distinct read/write arrays); the outer
/// time loop is sequential (flow through `grid`); the residual loop is a
/// max-reduction; the driver loop is not a candidate (internal exit).
pub fn jacobi(n: usize, iters: usize) -> (Program, Vec<ArgValue>) {
    let src = format!(
        "proc main(steps: int, tol: real) {{
            array grid[{n}, {n}];
            array next[{n}, {n}];
            var resid: real;
            // Initialize the boundary to 1, interior to 0.
            for i = 1 to {n} {{
                grid[i, 1] = 1.0;
                grid[i, {n}] = 1.0;
                grid[1, i] = 1.0;
                grid[{n}, i] = 1.0;
            }}
            for@time t = 1 to steps {{
                // The sweep: every interior point from its neighbours.
                for@sweep i = 2 to {m} {{
                    for j = 2 to {m} {{
                        next[i, j] = (grid[i - 1, j] + grid[i + 1, j]
                                    + grid[i, j - 1] + grid[i, j + 1]) * 0.25;
                    }}
                }}
                // Residual (max-reduction) and copy-back.
                resid = 0.0;
                for@resid i = 2 to {m} {{
                    for j = 2 to {m} {{
                        resid = max(resid, abs(next[i, j] - grid[i, j]));
                    }}
                }}
                for@copy i = 2 to {m} {{
                    for j = 2 to {m} {{ grid[i, j] = next[i, j]; }}
                }}
                exit when (resid < tol);
            }}
            print resid;
        }}",
        n = n,
        m = n - 1,
    );
    let prog = parse_program(&src).expect("jacobi parses");
    (
        prog,
        vec![ArgValue::Int(iters as i64), ArgValue::Real(1e-6)],
    )
}

/// Particle-in-cell style push with a guarded boundary reflection —
/// a Figure 1(a)-shaped pattern occurring naturally: the scratch array
/// is written and read under the same per-call conditions, so guarded
/// analysis privatizes it.
pub fn particle_push(particles: usize, steps: usize) -> (Program, Vec<ArgValue>) {
    let src = format!(
        "proc main(steps: int, reflect: int) {{
            array pos[{p}];
            array vel[{p}];
            array force[{p}];
            for i = 1 to {p} {{
                pos[i] = i * 0.001;
                vel[i] = 0.5 - i * 0.0001;
            }}
            for@time t = 1 to steps {{
                // Independent force evaluation.
                for@force i = 1 to {p} {{
                    force[i] = sin(pos[i]) * 0.1 - vel[i] * 0.01;
                }}
                // Independent push with a guarded reflection.
                for@push i = 1 to {p} {{
                    vel[i] = vel[i] + force[i];
                    pos[i] = pos[i] + vel[i];
                    if (reflect > 0) {{
                        if (pos[i] > 10.0) {{
                            pos[i] = 20.0 - pos[i];
                            vel[i] = 0.0 - vel[i];
                        }}
                    }}
                }}
            }}
            print pos[1];
        }}",
        p = particles,
    );
    let prog = parse_program(&src).expect("particle_push parses");
    (prog, vec![ArgValue::Int(steps as i64), ArgValue::Int(1)])
}

/// Histogram binning through an index array — the loop every static
/// analysis must leave sequential, recognized as an array reduction by
/// the compiler, and classified by ELPD at run time.
pub fn histogram(samples: usize, bins: usize) -> (Program, Vec<ArgValue>) {
    let src = format!(
        "proc main(n: int, bin: array[{s}] of int) {{
            array counts[{b}];
            array weights[{s}];
            var total: real;
            for i = 1 to n {{ weights[i] = 1.0 + i % 7; }}
            // Array sum-reduction through a subscript array.
            for@hist i = 1 to n {{
                counts[bin[i]] = counts[bin[i]] + weights[i];
            }}
            for@norm i = 1 to {b} {{ counts[i] = counts[i] / n; }}
            for@tot i = 1 to {b} {{ total = total + counts[i]; }}
            print total;
        }}",
        s = samples,
        b = bins,
    );
    let prog = parse_program(&src).expect("histogram parses");
    let bin_data: Vec<i64> = (0..samples)
        .map(|i| ((i * 2654435761usize) % bins) as i64 + 1)
        .collect();
    (
        prog,
        vec![
            ArgValue::Int(samples as i64),
            ArgValue::Array(ArrayStore::from_i64(bin_data)),
        ],
    )
}

/// A "runaway" program: an astronomically large trip count standing in
/// for a computation that never finishes. The hot loop is a recognized
/// scalar sum-reduction, so the predicated analysis plans it parallel —
/// which makes this the canonical input for proving that fuel budgets
/// terminate both the sequential path and the worker pool (each worker
/// exhausts its share of the parent's budget).
pub fn runaway(trip: i64) -> (Program, Vec<ArgValue>) {
    let src = "proc main(n: int) {
            var s: real;
            for@hot i = 1 to n {
                s = s + 1.0;
            }
            print s;
        }";
    let prog = parse_program(src).expect("runaway parses");
    (prog, vec![ArgValue::Int(trip)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_core::{analyze_program, Options, Outcome};
    use padfa_rt::{run_main, ExecError, ExecPlan, RunConfig};

    fn check_parallel_matches(prog: &Program, args: Vec<ArgValue>, tol: f64) {
        let seq = run_main(prog, args.clone(), &RunConfig::sequential()).unwrap();
        let result = analyze_program(prog, &Options::predicated()).unwrap();
        let plan = ExecPlan::from_analysis(prog, &result);
        let par = run_main(prog, args, &RunConfig::parallel(4, plan)).unwrap();
        let d = seq.max_abs_diff(&par);
        assert!(d <= tol, "diverged by {d}");
    }

    #[test]
    fn jacobi_analysis_shape() {
        let (prog, args) = jacobi(16, 10);
        let r = analyze_program(&prog, &Options::predicated()).unwrap();
        assert!(
            r.by_label("time").unwrap().not_candidate.is_some(),
            "time loop has an internal exit"
        );
        assert!(r.by_label("sweep").unwrap().outcome.is_parallel());
        assert!(r.by_label("copy").unwrap().outcome.is_parallel());
        let resid = r.by_label("resid").unwrap();
        assert!(resid.outcome.is_parallelizable(), "{}", resid.outcome);
        assert!(resid
            .reductions
            .iter()
            .any(|x| x.op == padfa_core::ReduceOp::Max));
        check_parallel_matches(&prog, args, 1e-12);
    }

    #[test]
    fn jacobi_converges() {
        let (prog, args) = jacobi(12, 500);
        let out = run_main(&prog, args, &RunConfig::sequential()).unwrap();
        let resid = out.printed[0].as_f64();
        assert!(resid < 1e-6, "did not converge: {resid}");
        // The exit fired before exhausting the step budget.
        assert!(out.stats.iterations < 500 * 3 * 12 * 12);
    }

    #[test]
    fn particle_push_parallel_loops() {
        let (prog, args) = particle_push(128, 4);
        let r = analyze_program(&prog, &Options::predicated()).unwrap();
        assert!(r.by_label("force").unwrap().outcome.is_parallel());
        assert!(r.by_label("push").unwrap().outcome.is_parallel());
        // The time loop carries flow dependences through pos/vel.
        assert!(matches!(
            r.by_label("time").unwrap().outcome,
            Outcome::Sequential
        ));
        check_parallel_matches(&prog, args, 1e-12);
    }

    #[test]
    fn runaway_terminates_with_fuel_on_both_paths() {
        let (prog, args) = runaway(1_000_000_000);
        // Sequential path: the budget is the only way back.
        let cfg = RunConfig::sequential().with_fuel(10_000);
        let err = run_main(&prog, args.clone(), &cfg).unwrap_err();
        assert!(matches!(err, ExecError::FuelExhausted), "got {err:?}");
        // Parallel path: the hot loop is planned parallel (reduction),
        // so the budget must bite inside the worker pool too.
        let r = analyze_program(&prog, &Options::predicated()).unwrap();
        assert!(r.by_label("hot").unwrap().outcome.is_parallelizable());
        let plan = ExecPlan::from_analysis(&prog, &r);
        let cfg = RunConfig::parallel(4, plan).with_fuel(10_000);
        let err = run_main(&prog, args.clone(), &cfg).unwrap_err();
        assert!(matches!(err, ExecError::FuelExhausted), "got {err:?}");
        // With enough fuel the same program completes normally.
        let (prog, args) = runaway(500);
        let out = run_main(&prog, args, &RunConfig::sequential().with_fuel(10_000)).unwrap();
        assert_eq!(out.printed[0].as_f64(), 500.0);
    }

    #[test]
    fn histogram_reduction_and_elpd() {
        let (prog, args) = histogram(64, 8);
        let r = analyze_program(&prog, &Options::predicated()).unwrap();
        let hist = r.by_label("hist").unwrap();
        assert!(
            hist.outcome.is_parallelizable(),
            "array reduction: {}",
            hist.outcome
        );
        assert!(hist.reductions.iter().any(|x| x.is_array));
        assert!(r.by_label("norm").unwrap().outcome.is_parallel());
        assert!(r.by_label("tot").unwrap().outcome.is_parallelizable());
        check_parallel_matches(&prog, args, 1e-9);
    }
}
