//! # padfa-suite
//!
//! The benchmark corpus for the PPoPP'99 evaluation.
//!
//! The paper measures three suites — SPECfp95, the NAS sample
//! benchmarks, and Perfect — plus one additional program: ~30 programs
//! with more than 4000 loops in total. Those Fortran sources (and their
//! reference inputs) are not available here, so this crate builds a
//! **synthetic corpus with the same population structure**: for each
//! program, a deterministic generator assembles loops drawn from a
//! pattern library whose members have known analyzability:
//!
//! * patterns the base SUIF analysis parallelizes (simple parallel
//!   loops, nests, scalar/array reductions, clean privatizable
//!   temporaries) — the ">50% parallelized by base" population;
//! * genuinely sequential recurrences and non-candidates (read I/O,
//!   internal exits);
//! * *inherently parallel but compile-time-invisible* loops
//!   (subscript-array accesses that never collide on the given input) —
//!   parallel according to the ELPD run-time test but beyond every
//!   static variant;
//! * the paper's predicated patterns (Figure 1(a)–(d), boundary
//!   conditions, reshape divisibility): loops the predicated analysis
//!   parallelizes at compile time or under a derived run-time test.
//!
//! Per-program pattern counts are calibrated so the corpus reproduces
//! the paper's aggregate shape (see `EXPERIMENTS.md`); per-program
//! numbers are reconstructions, not the original per-benchmark counts.
//!
//! [`fig1`] contains the four motivating examples as standalone
//! programs; [`kernels`] holds the compute-heavy kernels used for the
//! speedup figure.

pub mod apps;
pub mod corpus;
pub mod fig1;
pub mod kernels;
pub mod patterns;
pub mod programs;
pub mod stats;

pub use corpus::{build_corpus, BenchProgram, Expect, HardLoop};
pub use programs::{SuiteName, PROGRAM_SPECS};
