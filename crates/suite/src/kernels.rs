//! Compute-heavy kernels for the speedup figure.
//!
//! The paper reports improved speedups for five programs once the
//! predicated analysis parallelizes a high-coverage *outer* loop that
//! base SUIF ran sequentially (exploiting only inner, fine-grain
//! parallelism). Each kernel here reproduces that structure: an outer
//! loop with a predicated pattern (safe on the measurement input) whose
//! body does real floating-point work in an inner loop the base
//! analysis can parallelize — so both configurations run in parallel,
//! but at different granularities.

use padfa_ir::{parse::parse_program, Program};
use padfa_rt::ArgValue;

/// One speedup kernel.
pub struct KernelSpec {
    /// The corpus program whose speedup this kernel models.
    pub name: &'static str,
    /// Which predicated mechanism gates the outer loop.
    pub mechanism: &'static str,
}

/// The five improved programs of the speedup figure.
pub static KERNELS: &[KernelSpec] = &[
    KernelSpec {
        name: "su2cor",
        mechanism: "guard run-time test",
    },
    KernelSpec {
        name: "hydro2d",
        mechanism: "guarded privatization (compile time)",
    },
    KernelSpec {
        name: "applu",
        mechanism: "boundary run-time test",
    },
    KernelSpec {
        name: "turb3d",
        mechanism: "predicate embedding (compile time)",
    },
    KernelSpec {
        name: "wave5",
        mechanism: "guard run-time test + privatization",
    },
];

/// Build the kernel program for one of the five improved programs.
///
/// `rows` scales the outer trip count and `cols` the inner work; the
/// standard arguments from [`kernel_args`] keep every run-time test on
/// its parallel path.
pub fn kernel(name: &str, rows: usize, cols: usize) -> Program {
    let src = match name {
        // Outer loop gated by a guard-derived run-time test (fig 1(b)).
        "su2cor" => format!(
            "proc main(c: int, x: int) {{
                array help[{r1}];
                array a[{r}, {c}];
                array b[{r}, {c}];
                for@hot i = 1 to c {{
                    if (x > 5) {{ help[i] = a[i, 1] + 1.0; }}
                    for j = 1 to {c} {{
                        b[i, j] = sqrt(abs(a[i, j]) + 1.0) + sin(a[i, j] * 0.01) + help[i + 1];
                    }}
                    a[i, 2] = help[i + 1];
                }}
            }}",
            r = rows,
            r1 = rows + 1,
            c = cols
        ),
        // Outer loop parallel via guarded privatization (fig 1(a)).
        "hydro2d" => format!(
            "proc main(c: int, x: int) {{
                array help[{c}];
                array a[{r}, {c}];
                for@hot i = 1 to c {{
                    if (x > 5) {{
                        for j = 1 to {c} {{ help[j] = j * 2.0; }}
                    }}
                    for j = 1 to {c} {{
                        a[i, j] = cos(a[i, j] * 0.02) * 0.5 + exp(a[i, j] * 0.001 - 1.0);
                    }}
                    if (x > 5) {{
                        for j = 1 to {c} {{ a[i, j] = a[i, j] + help[j]; }}
                    }}
                }}
            }}",
            r = rows,
            c = cols
        ),
        // Outer loop gated by a boundary-condition test (extraction).
        "applu" => format!(
            "proc main(c: int, m: int) {{
                array help[{r2}];
                array a[{r}, {c}];
                for@hot i = 1 to c {{
                    help[i] = a[i, 1] * 2.0;
                    for j = 1 to {c} {{
                        a[i, j] = sqrt(a[i, j] * a[i, j] + 2.0) + sin(a[i, j] * 0.03);
                    }}
                    a[i, 1] = a[i, 1] + help[m];
                }}
            }}",
            r = rows,
            r2 = rows.max(64) + 64,
            c = cols
        ),
        // Outer loop parallel via predicate embedding (fig 1(c)): the
        // index-guarded recurrence distance exceeds the half range.
        "turb3d" => format!(
            "proc main(c: int, x: int) {{
                array e[{r2}];
                array a[{r}, {c}];
                for@hot i = 1 to c {{
                    if (i > {half}) {{ e[i] = e[i - {half}] + 1.0; }}
                    for j = 1 to {c} {{
                        a[i, j] = exp(a[i, j] * 0.001) + cos(a[i, j] * 0.04) * 0.25;
                    }}
                }}
            }}",
            r = rows,
            r2 = rows + 1,
            c = cols,
            half = rows / 2 + 1
        ),
        // Guard test plus privatized workspace.
        "wave5" => format!(
            "proc main(c: int, x: int) {{
                array help[{r1}];
                array w[{c}];
                array a[{r}, {c}];
                for@hot i = 1 to c {{
                    if (x > 5) {{ help[i] = a[i, 1]; }}
                    for j = 1 to {c} {{ w[j] = a[i, j] * 0.5 + sin(j * 0.1); }}
                    for j = 1 to {c} {{ a[i, j] = w[j] + sqrt(abs(w[j]) + 0.5); }}
                    a[i, 2] = a[i, 2] + help[i + 1];
                }}
            }}",
            r = rows,
            r1 = rows + 1,
            c = cols
        ),
        other => panic!("unknown kernel '{other}'"),
    };
    parse_program(&src).unwrap_or_else(|e| panic!("kernel '{name}' failed to parse: {e}\n{src}"))
}

/// Standard arguments for a kernel: the outer trip count equals `rows`
/// and every run-time test takes its parallel path (`x = 3`, `m`
/// outside the iteration range).
pub fn kernel_args(name: &str, rows: usize) -> Vec<ArgValue> {
    match name {
        "applu" => vec![ArgValue::Int(rows as i64), ArgValue::Int(rows as i64 + 50)],
        _ => vec![ArgValue::Int(rows as i64), ArgValue::Int(3)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_core::{analyze_program, Options, Outcome};
    use padfa_rt::{run_main, ExecPlan, RunConfig};

    #[test]
    fn all_kernels_parse_and_split_variants() {
        for spec in KERNELS {
            let prog = kernel(spec.name, 32, 16);
            let base = analyze_program(&prog, &Options::base()).unwrap();
            let pred = analyze_program(&prog, &Options::predicated()).unwrap();
            let hot_base = &base.by_label("hot").unwrap().outcome;
            let hot_pred = &pred.by_label("hot").unwrap().outcome;
            assert!(
                matches!(hot_base, Outcome::Sequential),
                "{}: base must not parallelize the hot loop, got {hot_base}",
                spec.name
            );
            assert!(
                hot_pred.is_parallelizable(),
                "{}: predicated must parallelize the hot loop, got {hot_pred}",
                spec.name
            );
        }
    }

    #[test]
    fn kernels_run_correctly_in_parallel() {
        for spec in KERNELS {
            let prog = kernel(spec.name, 16, 8);
            let args = kernel_args(spec.name, 16);
            let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
            for opts in [Options::base(), Options::predicated()] {
                let res = analyze_program(&prog, &opts).unwrap();
                let plan = ExecPlan::from_analysis(&prog, &res);
                let par = run_main(&prog, args.clone(), &RunConfig::parallel(4, plan)).unwrap();
                assert!(
                    seq.max_abs_diff(&par) < 1e-9,
                    "{} diverged under {:?}",
                    spec.name,
                    opts.variant
                );
            }
        }
    }

    #[test]
    fn predicated_runs_hot_loop_parallel() {
        for spec in KERNELS {
            let prog = kernel(spec.name, 16, 8);
            let args = kernel_args(spec.name, 16);
            let res = analyze_program(&prog, &Options::predicated()).unwrap();
            let plan = ExecPlan::from_analysis(&prog, &res);
            let par = run_main(&prog, args, &RunConfig::parallel(4, plan)).unwrap();
            assert!(
                par.stats.parallel_loops >= 1 && par.stats.tests_failed == 0,
                "{}: stats {:?}",
                spec.name,
                par.stats
            );
        }
    }
}
