//! The 30-program corpus specification.
//!
//! Program names follow the paper's three suites (SPECfp95, NAS sample
//! benchmarks, Perfect) plus one additional program ("addl" — our copy
//! of the paper does not preserve its identity). Loop populations are
//! *synthetic reconstructions*: each spec scales a common filler
//! template (the population base SUIF handles, plus sequential loops,
//! non-candidates, and subscript-array loops only ELPD can classify) and
//! adds the program's predicated win patterns. The nine programs in
//! which the paper reports additional *outer* parallel loops carry
//! outer-level win patterns; other programs carry wins wrapped inside
//! sequential outer loops.

use crate::patterns::Gen;

/// Benchmark suite of a program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SuiteName {
    Specfp95,
    NasSample,
    Perfect,
    Additional,
}

impl SuiteName {
    pub fn label(self) -> &'static str {
        match self {
            SuiteName::Specfp95 => "SPECfp95",
            SuiteName::NasSample => "NAS",
            SuiteName::Perfect => "Perfect",
            SuiteName::Additional => "other",
        }
    }
}

/// Win-pattern counts for one program (outer-level and wrapped/inner).
#[derive(Clone, Copy, Default, Debug)]
pub struct Wins {
    pub fig1a: usize,
    pub guard_rt: usize,
    pub boundary_rt: usize,
    pub embed: usize,
    pub reshape: usize,
    pub multi_guard: usize,
    pub fig1a_in: usize,
    pub guard_rt_in: usize,
    pub boundary_rt_in: usize,
    pub embed_in: usize,
}

impl Wins {
    /// All-zero win counts (const-compatible `Default`).
    pub const NONE: Wins = Wins {
        fig1a: 0,
        guard_rt: 0,
        boundary_rt: 0,
        embed: 0,
        reshape: 0,
        multi_guard: 0,
        fig1a_in: 0,
        guard_rt_in: 0,
        boundary_rt_in: 0,
        embed_in: 0,
    };

    pub fn outer(&self) -> usize {
        self.fig1a + self.guard_rt + self.boundary_rt + self.embed + self.reshape + self.multi_guard
    }

    pub fn total(&self) -> usize {
        self.outer() + self.fig1a_in + self.guard_rt_in + self.boundary_rt_in + self.embed_in
    }
}

/// One corpus program.
pub struct ProgramSpec {
    pub name: &'static str,
    pub suite: SuiteName,
    pub seed: u64,
    /// Filler population size (approximate loop count before wins).
    pub size: usize,
    pub wins: Wins,
}

impl ProgramSpec {
    /// Emit the program into a generator: scaled filler template plus
    /// the win patterns.
    pub fn emit(&self, g: &mut Gen) {
        // Filler template per 79 loops:
        //   simple 10, nest2 6 (12 loops), reduction 4, privtemp 5 (10),
        //   seqrec 21, io 8, exit 4, nonaffine_par 2.5 (5),
        //   nonaffine_seq 3 (6).
        let u = self.size as f64 / 79.0;
        let count = |base: f64| -> usize { (base * u).round().max(1.0) as usize };
        let simple = count(10.0);
        let nest2 = count(6.0);
        let reduction = count(4.0);
        let privtemp = count(5.0);
        let seqrec = count(21.0);
        let ioloop = count(8.0);
        let exitloop = count(4.0);
        let nonaffine_par = count(2.5);
        let nonaffine_seq = count(3.0);

        // Interleave fillers so generated programs aren't blocky.
        let max = simple
            .max(nest2)
            .max(reduction)
            .max(privtemp)
            .max(seqrec)
            .max(ioloop)
            .max(exitloop)
            .max(nonaffine_par)
            .max(nonaffine_seq);
        for round in 0..max {
            if round < simple {
                g.simple();
            }
            if round < nest2 {
                g.nest2();
            }
            if round < reduction {
                g.reduction();
            }
            if round < privtemp {
                g.privtemp();
            }
            if round < seqrec {
                g.seqrec();
            }
            if round < ioloop {
                g.ioloop();
            }
            if round < exitloop {
                g.exitloop();
            }
            if round < nonaffine_par {
                g.nonaffine_par();
            }
            if round < nonaffine_seq {
                g.nonaffine_seq();
            }
        }

        let w = self.wins;
        for _ in 0..w.fig1a {
            g.fig1a();
        }
        for _ in 0..w.guard_rt {
            g.guard_rt();
        }
        for _ in 0..w.boundary_rt {
            g.boundary_rt();
        }
        for _ in 0..w.embed {
            g.embed();
        }
        for _ in 0..w.reshape {
            g.reshape_rt();
        }
        for _ in 0..w.multi_guard {
            g.multi_guard();
        }
        for _ in 0..w.fig1a_in {
            g.wrapped(|g| g.fig1a());
        }
        for _ in 0..w.guard_rt_in {
            g.wrapped(|g| g.guard_rt());
        }
        for _ in 0..w.boundary_rt_in {
            g.wrapped(|g| g.boundary_rt());
        }
        for _ in 0..w.embed_in {
            g.wrapped(|g| g.embed());
        }
    }

    /// Whether the paper-style tables should list this program among the
    /// nine with additional outer parallel loops.
    pub fn improved_outer(&self) -> bool {
        self.wins.outer() > 0
    }
}

macro_rules! wins {
    ($($field:ident : $v:expr),* $(,)?) => {
        Wins { $($field: $v,)* ..Wins::NONE }
    };
}

/// The corpus: 10 SPECfp95 + 8 NAS sample + 11 Perfect + 1 additional.
///
/// The nine improved programs (outer wins) are: su2cor, hydro2d, applu,
/// turb3d, wave5, cgm, adm, dyfesm, qcd — a reconstruction; our copy of
/// the paper does not preserve the original list.
pub static PROGRAM_SPECS: &[ProgramSpec] = &[
    // ---- SPECfp95 ----
    ProgramSpec {
        name: "tomcatv",
        suite: SuiteName::Specfp95,
        seed: 101,
        size: 20,
        wins: wins!(),
    },
    ProgramSpec {
        name: "swim",
        suite: SuiteName::Specfp95,
        seed: 102,
        size: 28,
        wins: wins!(),
    },
    ProgramSpec {
        name: "su2cor",
        suite: SuiteName::Specfp95,
        seed: 103,
        size: 150,
        wins: wins!(fig1a: 3, guard_rt: 3, boundary_rt: 2, reshape: 1, guard_rt_in: 2),
    },
    ProgramSpec {
        name: "hydro2d",
        suite: SuiteName::Specfp95,
        seed: 104,
        size: 180,
        wins: wins!(fig1a: 4, guard_rt: 3, embed: 2, boundary_rt: 2, multi_guard: 1, fig1a_in: 1),
    },
    ProgramSpec {
        name: "mgrid",
        suite: SuiteName::Specfp95,
        seed: 105,
        size: 56,
        wins: wins!(guard_rt_in: 1),
    },
    ProgramSpec {
        name: "applu",
        suite: SuiteName::Specfp95,
        seed: 106,
        size: 180,
        wins: wins!(fig1a: 3, guard_rt: 3, boundary_rt: 2, embed: 1, reshape: 1, boundary_rt_in: 2),
    },
    ProgramSpec {
        name: "turb3d",
        suite: SuiteName::Specfp95,
        seed: 107,
        size: 64,
        wins: wins!(fig1a: 2, guard_rt: 2, embed: 1),
    },
    ProgramSpec {
        name: "apsi",
        suite: SuiteName::Specfp95,
        seed: 108,
        size: 290,
        wins: wins!(fig1a_in: 2, boundary_rt_in: 2, guard_rt_in: 1),
    },
    ProgramSpec {
        name: "fpppp",
        suite: SuiteName::Specfp95,
        seed: 109,
        size: 56,
        wins: wins!(),
    },
    ProgramSpec {
        name: "wave5",
        suite: SuiteName::Specfp95,
        seed: 110,
        size: 360,
        wins: wins!(fig1a: 4, guard_rt: 4, boundary_rt: 3, embed: 2, reshape: 1, multi_guard: 1, guard_rt_in: 2),
    },
    // ---- NAS sample benchmarks ----
    ProgramSpec {
        name: "appbt",
        suite: SuiteName::NasSample,
        seed: 201,
        size: 220,
        wins: wins!(guard_rt_in: 2, boundary_rt_in: 2),
    },
    ProgramSpec {
        name: "applu-nas",
        suite: SuiteName::NasSample,
        seed: 202,
        size: 160,
        wins: wins!(fig1a_in: 2),
    },
    ProgramSpec {
        name: "appsp",
        suite: SuiteName::NasSample,
        seed: 203,
        size: 200,
        wins: wins!(embed_in: 2),
    },
    ProgramSpec {
        name: "buk",
        suite: SuiteName::NasSample,
        seed: 204,
        size: 18,
        wins: wins!(),
    },
    ProgramSpec {
        name: "cgm",
        suite: SuiteName::NasSample,
        seed: 205,
        size: 26,
        wins: wins!(guard_rt: 2, boundary_rt: 1),
    },
    ProgramSpec {
        name: "embar",
        suite: SuiteName::NasSample,
        seed: 206,
        size: 10,
        wins: wins!(),
    },
    ProgramSpec {
        name: "fftpde",
        suite: SuiteName::NasSample,
        seed: 207,
        size: 46,
        wins: wins!(boundary_rt_in: 1),
    },
    ProgramSpec {
        name: "mgrid-nas",
        suite: SuiteName::NasSample,
        seed: 208,
        size: 46,
        wins: wins!(),
    },
    // ---- Perfect ----
    ProgramSpec {
        name: "adm",
        suite: SuiteName::Perfect,
        seed: 301,
        size: 280,
        wins: wins!(fig1a: 3, guard_rt: 3, boundary_rt: 2, embed: 1, multi_guard: 1, fig1a_in: 1),
    },
    ProgramSpec {
        name: "arc2d",
        suite: SuiteName::Perfect,
        seed: 302,
        size: 250,
        wins: wins!(fig1a_in: 2, guard_rt_in: 2),
    },
    ProgramSpec {
        name: "bdna",
        suite: SuiteName::Perfect,
        seed: 303,
        size: 200,
        wins: wins!(boundary_rt_in: 2),
    },
    ProgramSpec {
        name: "dyfesm",
        suite: SuiteName::Perfect,
        seed: 304,
        size: 230,
        wins: wins!(fig1a: 3, guard_rt: 2, boundary_rt: 2, reshape: 1, embed_in: 1),
    },
    ProgramSpec {
        name: "flo52",
        suite: SuiteName::Perfect,
        seed: 305,
        size: 160,
        wins: wins!(embed_in: 2),
    },
    ProgramSpec {
        name: "mdg",
        suite: SuiteName::Perfect,
        seed: 306,
        size: 36,
        wins: wins!(),
    },
    ProgramSpec {
        name: "mg3d",
        suite: SuiteName::Perfect,
        seed: 307,
        size: 260,
        wins: wins!(guard_rt_in: 2),
    },
    ProgramSpec {
        name: "ocean",
        suite: SuiteName::Perfect,
        seed: 308,
        size: 110,
        wins: wins!(fig1a_in: 2),
    },
    ProgramSpec {
        name: "qcd",
        suite: SuiteName::Perfect,
        seed: 309,
        size: 130,
        wins: wins!(guard_rt: 2, boundary_rt: 2, embed: 1),
    },
    ProgramSpec {
        name: "spec77",
        suite: SuiteName::Perfect,
        seed: 310,
        size: 340,
        wins: wins!(fig1a_in: 2, guard_rt_in: 2, boundary_rt_in: 1),
    },
    ProgramSpec {
        name: "track",
        suite: SuiteName::Perfect,
        seed: 311,
        // Distinct from mgrid's (56, guard_rt_in: 1): the generator is
        // structural, so sharing a (size, wins) shape would make the two
        // programs — and their session stats — byte-identical twins.
        size: 48,
        wins: wins!(guard_rt_in: 1, boundary_rt_in: 1),
    },
    // ---- the additional program ----
    ProgramSpec {
        name: "addl",
        suite: SuiteName::Additional,
        seed: 401,
        size: 36,
        wins: wins!(guard_rt_in: 1),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_programs_with_nine_improved() {
        assert_eq!(PROGRAM_SPECS.len(), 30);
        let improved: Vec<&str> = PROGRAM_SPECS
            .iter()
            .filter(|s| s.improved_outer())
            .map(|s| s.name)
            .collect();
        assert_eq!(improved.len(), 9, "improved: {improved:?}");
    }

    #[test]
    fn suites_have_paper_sizes() {
        let count = |s: SuiteName| PROGRAM_SPECS.iter().filter(|p| p.suite == s).count();
        assert_eq!(count(SuiteName::Specfp95), 10);
        assert_eq!(count(SuiteName::NasSample), 8);
        assert_eq!(count(SuiteName::Perfect), 11);
        assert_eq!(count(SuiteName::Additional), 1);
    }

    /// The generator is structural: two specs sharing a `(size, wins)`
    /// shape produce byte-identical program bodies (and therefore
    /// byte-identical session stats), which silently degrades the corpus
    /// to 29 distinct programs. `track` was once such a twin of `mgrid`.
    #[test]
    fn no_structural_twins() {
        let mut shapes: Vec<String> = PROGRAM_SPECS
            .iter()
            .map(|s| format!("{} {:?}", s.size, s.wins))
            .collect();
        shapes.sort_unstable();
        let before = shapes.len();
        shapes.dedup();
        assert_eq!(
            shapes.len(),
            before,
            "two programs share a (size, wins) shape and generate identical bodies"
        );
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = PROGRAM_SPECS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
    }
}
