//! Table computation over the corpus: the numbers behind Table 1 /
//! Table 2 of the evaluation.

use crate::corpus::BenchProgram;
use padfa_core::{analyze_program, AnalysisResult, Options, Outcome, Variant};
use padfa_ir::LoopId;
use padfa_omega::Var;
use padfa_rt::elpd::elpd_inspect;

/// Per-program Table 1 row.
#[derive(Clone, Debug)]
pub struct ProgramRow {
    pub name: &'static str,
    pub suite: &'static str,
    pub total_loops: usize,
    /// Candidate loops (no read I/O, no internal exit).
    pub candidates: usize,
    /// Parallelized by each variant (compile time or with a run-time
    /// test).
    pub base_par: usize,
    pub guarded_par: usize,
    pub pred_par: usize,
    /// Predicated loops that needed a run-time test.
    pub pred_rt: usize,
    /// Candidates left sequential by base.
    pub remaining: usize,
    /// Of the remaining, loops the ELPD inspector reports parallelizable
    /// on the standard workload ("inherently parallel").
    pub elpd_parallel: usize,
    /// Of the ELPD-parallel remaining, loops the predicated analysis
    /// parallelizes.
    pub recovered: usize,
    /// Additional outermost loops parallelized by predicated vs base.
    pub new_outer: usize,
}

impl ProgramRow {
    pub fn recovery_pct(&self) -> f64 {
        if self.elpd_parallel == 0 {
            0.0
        } else {
            100.0 * self.recovered as f64 / self.elpd_parallel as f64
        }
    }
}

fn parallelized_ids(result: &AnalysisResult) -> Vec<LoopId> {
    result
        .loops
        .iter()
        .filter(|l| l.parallelized())
        .map(|l| l.id)
        .collect()
}

/// Compute one program's row. `run_elpd` controls whether the run-time
/// inspection is performed (it executes the program once per remaining
/// loop).
pub fn program_row(bp: &BenchProgram, run_elpd: bool) -> ProgramRow {
    let base = analyze_program(&bp.program, &Options::base()).expect("analysis failed");
    let guarded = analyze_program(&bp.program, &Options::guarded()).expect("analysis failed");
    let pred = analyze_program(&bp.program, &Options::predicated()).expect("analysis failed");

    let base_ids = parallelized_ids(&base);
    let pred_ids = parallelized_ids(&pred);
    let candidates: Vec<LoopId> = base
        .loops
        .iter()
        .filter(|l| l.not_candidate.is_none())
        .map(|l| l.id)
        .collect();
    let remaining: Vec<LoopId> = candidates
        .iter()
        .copied()
        .filter(|id| !base_ids.contains(id))
        .collect();

    let mut elpd_parallel = 0;
    let mut recovered = 0;
    for &id in &remaining {
        let is_pred_par = pred_ids.contains(&id);
        if run_elpd {
            // Exclude compiler-recognized reductions, as the paper's
            // instrumentation sits on top of the compiler's information.
            let exclude: Vec<Var> = base
                .loop_report(id)
                .map(|r| r.reductions.iter().map(|x| x.target).collect())
                .unwrap_or_default();
            match elpd_inspect(&bp.program, bp.args.clone(), id, &exclude) {
                Ok(v) if v.parallelizable => {
                    elpd_parallel += 1;
                    if is_pred_par {
                        recovered += 1;
                    }
                }
                _ => {}
            }
        } else if is_pred_par {
            // Without ELPD, count recovered loops only.
            recovered += 1;
        }
    }

    let new_outer = pred
        .loops
        .iter()
        .filter(|l| l.depth == 0 && l.parallelized() && !base_ids.contains(&l.id))
        .count();

    ProgramRow {
        name: bp.name,
        suite: bp.suite.label(),
        total_loops: base.loops.len(),
        candidates: candidates.len(),
        base_par: base_ids.len(),
        guarded_par: parallelized_ids(&guarded).len(),
        pred_par: pred_ids.len(),
        pred_rt: pred.num_runtime_tested(),
        remaining: remaining.len(),
        elpd_parallel,
        recovered,
        new_outer,
    }
}

/// Aggregate totals over rows.
#[derive(Clone, Copy, Debug, Default)]
pub struct Totals {
    pub total_loops: usize,
    pub candidates: usize,
    pub base_par: usize,
    pub guarded_par: usize,
    pub pred_par: usize,
    pub pred_rt: usize,
    pub remaining: usize,
    pub elpd_parallel: usize,
    pub recovered: usize,
    pub programs_with_new_outer: usize,
}

pub fn aggregate(rows: &[ProgramRow]) -> Totals {
    let mut t = Totals::default();
    for r in rows {
        t.total_loops += r.total_loops;
        t.candidates += r.candidates;
        t.base_par += r.base_par;
        t.guarded_par += r.guarded_par;
        t.pred_par += r.pred_par;
        t.pred_rt += r.pred_rt;
        t.remaining += r.remaining;
        t.elpd_parallel += r.elpd_parallel;
        t.recovered += r.recovered;
        if r.new_outer > 0 {
            t.programs_with_new_outer += 1;
        }
    }
    t
}

impl Totals {
    pub fn base_pct(&self) -> f64 {
        100.0 * self.base_par as f64 / self.total_loops.max(1) as f64
    }

    pub fn recovery_pct(&self) -> f64 {
        if self.elpd_parallel == 0 {
            0.0
        } else {
            100.0 * self.recovered as f64 / self.elpd_parallel as f64
        }
    }
}

/// Check the hard-loop expectations of one program against the three
/// analysis variants (generator integrity; used by tests and the table
/// harness in `--verify` mode).
pub fn verify_expectations(bp: &BenchProgram) -> Result<(), String> {
    let results = [
        (
            Variant::Base,
            analyze_program(&bp.program, &Options::base()).expect("analysis failed"),
        ),
        (
            Variant::Guarded,
            analyze_program(&bp.program, &Options::guarded()).expect("analysis failed"),
        ),
        (
            Variant::Predicated,
            analyze_program(&bp.program, &Options::predicated()).expect("analysis failed"),
        ),
    ];
    let mut errors = Vec::new();
    for h in &bp.hard {
        for (variant, result) in &results {
            let Some(report) = result.by_label(&h.label) else {
                errors.push(format!("{}: loop {} missing", bp.name, h.label));
                continue;
            };
            let got = report.parallelized();
            let want = h.expect.parallelized_by(*variant);
            if got != want {
                errors.push(format!(
                    "{}: loop {} ({:?}) under {variant:?}: expected parallelized={want}, got {} ({})",
                    bp.name, h.label, h.expect, got, report.outcome
                ));
            }
            if matches!(h.expect, crate::corpus::Expect::PredicatedRT)
                && *variant == Variant::Predicated
                && !matches!(report.outcome, Outcome::ParallelIf(_))
            {
                errors.push(format!(
                    "{}: loop {} expected a run-time test, got {}",
                    bp.name, h.label, report.outcome
                ));
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::build_program;

    #[test]
    fn small_program_row_shape() {
        let bp = build_program("tomcatv").unwrap();
        let row = program_row(&bp, true);
        assert!(
            row.total_loops >= 15,
            "tomcatv has {} loops",
            row.total_loops
        );
        assert!(row.base_par > 0);
        assert!(row.base_par <= row.candidates);
        assert!(row.remaining + row.base_par == row.candidates);
        // No win patterns in tomcatv.
        assert_eq!(row.new_outer, 0);
        assert!(
            row.elpd_parallel >= 1,
            "nonaffine_par loops are ELPD-parallel"
        );
    }

    #[test]
    fn improved_program_expectations_hold() {
        let bp = build_program("cgm").unwrap();
        verify_expectations(&bp).unwrap();
        let row = program_row(&bp, true);
        assert!(row.new_outer >= 2, "cgm has outer wins: {row:?}");
        assert!(row.pred_par > row.base_par);
        assert!(row.guarded_par <= row.pred_par);
        assert!(row.recovered >= 2);
    }

    #[test]
    fn wrapped_wins_counted_as_inner() {
        let bp = build_program("track").unwrap();
        verify_expectations(&bp).unwrap();
        let row = program_row(&bp, false);
        assert_eq!(row.new_outer, 0, "track's wins are inner: {row:?}");
        assert!(row.pred_par > row.base_par);
    }
}
