//! Differential soundness harness over the full benchmark corpus:
//! a starved work budget may only *lose* parallel loops relative to
//! the exact (unlimited) analysis, never gain them, and every program
//! must still complete with a classified result.

use padfa_core::{analyze_program, Options, WorkBudget};
use padfa_suite::build_corpus;

#[test]
fn starved_corpus_degrades_monotonically() {
    for bp in build_corpus() {
        let exact = analyze_program(&bp.program, &Options::predicated())
            .unwrap_or_else(|e| panic!("{}: exact analysis failed: {e}", bp.name));
        let exact_parallel: Vec<_> = exact
            .loops
            .iter()
            .filter(|r| r.parallelized())
            .map(|r| r.id)
            .collect();

        let opts = Options::predicated().with_budget(WorkBudget::steps(1000));
        let starved = analyze_program(&bp.program, &opts)
            .unwrap_or_else(|e| panic!("{}: starved analysis failed: {e}", bp.name));
        assert_eq!(
            exact.loops.len(),
            starved.loops.len(),
            "{}: budget must not change the loop census",
            bp.name
        );
        for report in &starved.loops {
            if report.parallelized() {
                assert!(
                    exact_parallel.contains(&report.id),
                    "{}: loop {:?} is parallel only under the starved budget",
                    bp.name,
                    report.id
                );
            }
        }
    }
}

/// A budget generous enough for the whole corpus reproduces the exact
/// per-loop outcomes — degradation is a cliff we only step off when
/// the watchdog actually fires.
#[test]
fn generous_budget_matches_unlimited() {
    for bp in build_corpus() {
        let exact = analyze_program(&bp.program, &Options::predicated()).unwrap();
        let opts = Options::predicated().with_budget(WorkBudget::steps(50_000_000));
        let budgeted = analyze_program(&bp.program, &opts).unwrap();
        assert_eq!(budgeted.stats.degraded_procs, 0, "{}", bp.name);
        let render = |r: &padfa_core::AnalysisResult| {
            r.loops
                .iter()
                .map(|l| format!("{l}"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&exact), render(&budgeted), "{}", bp.name);
    }
}
