//! Threshold-invariance test over the full benchmark corpus: the
//! spawn threshold only decides *where* a task runs (spawned lane vs
//! inline on the deciding thread), never *what* it computes, so the
//! rendered analysis output must be byte-identical across every
//! `--spawn-threshold` — from "spawn everything" (0) through the
//! calibrated default to "inline everything" (`u64::MAX`) — at any
//! worker count.

use padfa_core::{analyze_program_session, AnalysisSession, Options};
use padfa_suite::corpus::build_corpus;

/// Render every loop report and every procedure summary of one corpus
/// program in canonical order.
fn render(prog: &padfa_ir::Program, jobs: usize, threshold: u64) -> String {
    let sess =
        AnalysisSession::new(Options::predicated().with_spawn_threshold(threshold)).with_jobs(jobs);
    let (result, summaries) = analyze_program_session(prog, &sess).unwrap();
    let mut out = String::new();
    for report in &result.loops {
        out.push_str(&format!("{report}\n"));
    }
    let mut names: Vec<&String> = summaries.keys().collect();
    names.sort();
    for name in names {
        out.push_str(&format!("== {name} ==\n{}", summaries[name]));
    }
    out
}

#[test]
fn corpus_reports_identical_across_spawn_thresholds() {
    let default = padfa_core::DEFAULT_SPAWN_THRESHOLD;
    for bench in build_corpus() {
        // Baseline: sequential run at the default threshold.
        let seq = render(&bench.program, 1, default);
        for jobs in [1, 4] {
            for threshold in [0, default, u64::MAX] {
                let got = render(&bench.program, jobs, threshold);
                assert_eq!(
                    seq, got,
                    "{}: --jobs {jobs} --spawn-threshold {threshold} diverged \
                     from the jobs-1/default baseline",
                    bench.name
                );
            }
        }
    }
}
