//! Warm-vs-cold differential over the full benchmark corpus: running
//! every program against a shared persistent store — cold (populating)
//! and then warm (replaying from disk) — must render byte-identical
//! reports and summaries, and the warm pass must actually be served
//! from the store.

use padfa_core::{analyze_program_session, AnalysisSession, Options, Store, StoreConfig};
use padfa_suite::corpus::build_corpus;
use std::sync::Arc;

/// Render every loop report and every procedure summary of one corpus
/// program in canonical order, optionally against a store.
fn render(prog: &padfa_ir::Program, store: Option<&Arc<Store>>) -> String {
    let mut sess = AnalysisSession::new(Options::predicated());
    if let Some(s) = store {
        sess = sess.with_store(Arc::clone(s));
    }
    let (result, summaries) = analyze_program_session(prog, &sess).unwrap();
    let mut out = String::new();
    for report in &result.loops {
        out.push_str(&format!("{report}\n"));
    }
    let mut names: Vec<&String> = summaries.keys().collect();
    names.sort();
    for name in names {
        out.push_str(&format!("== {name} ==\n{}", summaries[name]));
    }
    out
}

#[test]
fn warm_corpus_rerun_is_bit_identical_and_mostly_hits() {
    let dir = std::env::temp_dir().join(format!("padfa_suite_store_diff_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus = build_corpus();

    // Storeless baseline, then a cold pass that populates the store.
    let cold_store = Arc::new(Store::open(StoreConfig::new(&dir, "suite-diff")));
    for bench in &corpus {
        let plain = render(&bench.program, None);
        let cold = render(&bench.program, Some(&cold_store));
        assert_eq!(plain, cold, "{}: cold store pass diverged", bench.name);
    }
    assert!(
        cold_store.take_warnings().is_empty(),
        "cold pass must be warning-free"
    );
    drop(cold_store); // seal the journal

    // Warm pass from a fresh process-like reopen.
    let warm_store = Arc::new(Store::open(StoreConfig::new(&dir, "suite-diff")));
    for bench in &corpus {
        let plain = render(&bench.program, None);
        let warm = render(&bench.program, Some(&warm_store));
        assert_eq!(plain, warm, "{}: warm store pass diverged", bench.name);
    }
    let st = warm_store.stats();
    assert!(
        st.hit_rate() >= 0.8,
        "warm corpus hit rate {:.2} below 0.8 ({} hits / {} misses)",
        st.hit_rate(),
        st.hits,
        st.misses
    );
    assert_eq!(st.quarantined, 0);
    assert!(!st.degraded && !st.writes_degraded);
    assert!(warm_store.take_warnings().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
