//! Golden determinism test over the full benchmark corpus: the rendered
//! analysis output must be byte-identical regardless of the worker
//! count, and across repeated parallel runs.

use padfa_core::{analyze_program_session, AnalysisSession, Options};
use padfa_suite::corpus::build_corpus;

/// Render every loop report and every procedure summary of one corpus
/// program in canonical order.
fn render(prog: &padfa_ir::Program, jobs: usize) -> String {
    let sess = AnalysisSession::new(Options::predicated()).with_jobs(jobs);
    let (result, summaries) = analyze_program_session(prog, &sess).unwrap();
    let mut out = String::new();
    for report in &result.loops {
        out.push_str(&format!("{report}\n"));
    }
    let mut names: Vec<&String> = summaries.keys().collect();
    names.sort();
    for name in names {
        out.push_str(&format!("== {name} ==\n{}", summaries[name]));
    }
    out
}

#[test]
fn corpus_reports_identical_across_worker_counts() {
    for bench in build_corpus() {
        let seq = render(&bench.program, 1);
        for jobs in [2, 4] {
            let par = render(&bench.program, jobs);
            assert_eq!(
                seq, par,
                "{}: --jobs 1 vs --jobs {jobs} diverged",
                bench.name
            );
        }
        let par_again = render(&bench.program, 4);
        assert_eq!(seq, par_again, "{}: two --jobs 4 runs diverged", bench.name);
    }
}
