//! Integration tests for decision provenance: the `padfa explain`
//! subcommand (text + JSON), the Chrome trace-event writer, and
//! cross-jobs determinism of provenance trees and metrics counters.

use std::process::Command;

fn padfa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_padfa"))
}

const DEMO: &str = "proc main(n: int, x: int) {
    array help[101];
    array a[100, 2];
    var s: real;
    for@hot i = 1 to n {
        if (x > 5) { help[i] = a[i, 1]; }
        a[i, 2] = help[i + 1] + i * 0.5;
    }
    for@sum i = 1 to n { s = s + a[i, 2]; }
    print s;
}";

/// Minimal temp-file helper (no external crates).
struct TempPath(std::path::PathBuf);

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn temp(tag: &str, contents: &str) -> TempPath {
    let path = std::env::temp_dir().join(format!("padfa-explain-{}-{tag}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    TempPath(path)
}

#[test]
fn explain_text_shows_evidence_tree() {
    let f = temp("demo.mf", DEMO);
    let out = padfa().arg("explain").arg(&f.0).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // The two-version loop: winner, emitted test, and pair evidence.
    assert!(text.contains("main:hot depth=0 -> parallel if"), "{text}");
    assert!(text.contains("winner: runtime-test"), "{text}");
    assert!(text.contains("run-time test:"), "{text}");
    assert!(text.contains("array help: runtime-tested"), "{text}");
    assert!(text.contains("write/read"), "{text}");
    assert!(text.contains("guards-exclude"), "{text}");
    assert!(text.contains("regions-disjoint"), "{text}");
    // The reduction loop is attributed too.
    assert!(text.contains("main:sum"), "{text}");
    assert!(text.contains("reduction s"), "{text}");
}

#[test]
fn explain_loop_filter_selects_one_loop() {
    let f = temp("filter.mf", DEMO);
    let out = padfa()
        .args(["explain", "--loop", "sum"])
        .arg(&f.0)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("main:sum"), "{text}");
    assert!(!text.contains("main:hot"), "{text}");

    let out = padfa()
        .args(["explain", "--loop", "no-such-loop"])
        .arg(&f.0)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no analyzed loop"), "{err}");
}

#[test]
fn explain_json_is_structured() {
    let f = temp("json.mf", DEMO);
    let out = padfa()
        .args(["explain", "--json", "--loop", "hot"])
        .arg(&f.0)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("{\"schema_version\":"), "{text}");
    assert!(text.trim_end().ends_with("]}"), "{text}");
    assert!(text.contains("\"label\":\"hot\""), "{text}");
    assert!(text.contains("\"winner\":\"runtime-test\""), "{text}");
    assert!(text.contains("\"mechanisms\":{\"predicates\":"), "{text}");
    assert!(
        text.contains("\"array\":\"help\",\"verdict\":\"runtime-tested\""),
        "{text}"
    );
    assert!(
        text.contains("\"dep_pairs\":[{\"kind\":\"write/write\""),
        "{text}"
    );
    assert!(text.contains("\"outcome\":\"parallel-if\""), "{text}");
    assert!(balanced(&text), "unbalanced JSON: {text}");
}

/// Brace/bracket balance check that skips string literals — a cheap
/// structural sanity check in lieu of a JSON parser.
fn balanced(s: &str) -> bool {
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut esc = false;
    for c in s.chars() {
        if in_str {
            match (esc, c) {
                (true, _) => esc = false,
                (false, '\\') => esc = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_str
}

#[test]
fn analyze_trace_writes_chrome_trace_json() {
    let f = temp("trace.mf", DEMO);
    let trace =
        std::env::temp_dir().join(format!("padfa-explain-{}-trace.json", std::process::id()));
    let _ = std::fs::remove_file(&trace);
    let out = padfa()
        .args(["analyze", "--jobs", "2", "--trace"])
        .arg(&trace)
        .arg(&f.0)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&trace).unwrap();
    let _ = std::fs::remove_file(&trace);
    // Chrome trace-event format: one top-level object with a
    // `traceEvents` array of complete ("X") and instant events.
    assert!(
        json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
        "{json}"
    );
    assert!(json.trim_end().ends_with("]}"), "{json}");
    assert!(balanced(&json), "unbalanced trace JSON");
    assert!(!json.contains(",]") && !json.contains(",}"), "{json}");
    for needle in [
        "\"name\":\"parse\"",
        "\"name\":\"pre_intern\"",
        "\"name\":\"proc main\"",
        "\"cat\":\"loop\"",
        "\"cat\":\"lattice\"",
        "\"ph\":\"X\"",
        "\"pid\":1",
    ] {
        assert!(json.contains(needle), "missing {needle} in: {json}");
    }
}

/// Replace the digits after every `key` occurrence with `0` — used to
/// mask the one provenance field that may legitimately differ across
/// `--jobs` (cap-hit counts advance only on memo misses, which race
/// benignly between workers).
fn mask_count(s: &str, key: &str) -> String {
    let mut out = String::new();
    let mut rest = s;
    while let Some(i) = rest.find(key) {
        let (head, tail) = rest.split_at(i + key.len());
        out.push_str(head);
        out.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Provenance trees and the deterministic metrics-counter subset must be
/// bit-identical for `--jobs 1` and `--jobs 4`.
#[test]
fn provenance_and_metrics_deterministic_across_jobs() {
    use padfa::analysis::{analyze_program_session, AnalysisSession, MetricsRegistry, Options};

    let corpus = padfa::suite::build_corpus();
    // The three programs with the most procedures exercise the
    // level-parallel driver hardest.
    let mut by_procs: Vec<_> = corpus.iter().collect();
    by_procs.sort_by_key(|b| std::cmp::Reverse(b.program.procedures.len()));
    for bench in by_procs.iter().take(3) {
        let run = |jobs: usize| {
            let reg = MetricsRegistry::new();
            let sess = AnalysisSession::new(Options::predicated())
                .with_jobs(jobs)
                .with_metrics(std::sync::Arc::clone(&reg));
            let (result, _) = analyze_program_session(&bench.program, &sess).unwrap();
            sess.publish_metrics();
            let trees: String = result
                .loops
                .iter()
                .map(|r| mask_count(&padfa::analysis::loop_json(r), "\"limit_overflows\":"))
                .collect();
            (trees, reg.deterministic_counters())
        };
        let (trees1, counters1) = run(1);
        let (trees4, counters4) = run(4);
        assert_eq!(
            trees1, trees4,
            "provenance differs across jobs ({})",
            bench.name
        );
        assert_eq!(
            counters1, counters4,
            "deterministic counters differ across jobs ({})",
            bench.name
        );
    }
}

/// The ISSUE acceptance criterion: every parallelized corpus loop is
/// attributed to exactly one winning mechanism, and every sequential
/// candidate to a concrete blocking dependence, exposed read, or budget
/// event.
#[test]
fn corpus_attribution_is_total() {
    use padfa::analysis::{analyze_program_session, AnalysisSession, Options};

    for bench in &padfa::suite::build_corpus() {
        let sess = AnalysisSession::new(Options::predicated());
        let (result, _) = analyze_program_session(&bench.program, &sess).unwrap();
        for r in &result.loops {
            if r.parallelized() {
                assert!(
                    r.provenance.winner.is_some(),
                    "{}: parallelized loop {:?} (id {}) has no winning mechanism",
                    bench.name,
                    r.label,
                    r.id.0
                );
            } else {
                assert!(
                    r.provenance.winner.is_none(),
                    "{}: sequential loop {:?} (id {}) claims a winner",
                    bench.name,
                    r.label,
                    r.id.0
                );
                if r.not_candidate.is_none() {
                    assert!(
                        r.provenance.has_blocker(),
                        "{}: sequential candidate {:?} (id {}) has no concrete blocker",
                        bench.name,
                        r.label,
                        r.id.0
                    );
                }
            }
        }
    }
}
