//! Integration tests for the `padfa` command-line driver.

use std::io::Write;
use std::process::Command;

fn padfa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_padfa"))
}

fn demo_file() -> temppath::TempPath {
    temppath::write(
        "proc main(n: int, x: int) {
            array help[101];
            array a[100, 2];
            var s: real;
            for@hot i = 1 to n {
                if (x > 5) { help[i] = a[i, 1]; }
                a[i, 2] = help[i + 1] + i * 0.5;
            }
            for@sum i = 1 to n { s = s + a[i, 2]; }
            print s;
        }",
    )
}

/// Minimal temp-file helper (no external crates).
mod temppath {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    static N: AtomicU32 = AtomicU32::new(0);

    pub fn write(contents: &str) -> TempPath {
        let n = N.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("padfa-cli-test-{}-{n}.mf", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        TempPath(path)
    }
}

#[test]
fn analyze_reports_two_version_loop() {
    let f = demo_file();
    let out = padfa().arg("analyze").arg(&f.0).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hot"), "{text}");
    assert!(text.contains("parallel if"), "{text}");
    assert!(
        text.contains("2 parallelized (1 with run-time tests)"),
        "{text}"
    );
}

#[test]
fn analyze_variants_differ() {
    let f = demo_file();
    let base = padfa()
        .args(["analyze", "--variant", "base"])
        .arg(&f.0)
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&base.stdout);
    assert!(
        text.contains("1 parallelized (0 with run-time tests)"),
        "{text}"
    );
}

#[test]
fn run_executes_and_prints() {
    let f = demo_file();
    let out = padfa()
        .args(["run"])
        .arg(&f.0)
        .args(["100", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // s = sum of i * 0.5 for i = 1..100 = 2525.
    assert!(stdout.trim().starts_with("2525"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parallel region"), "{stderr}");
}

#[test]
fn elpd_inspects_by_label() {
    let f = demo_file();
    let out = padfa()
        .args(["elpd"])
        .arg(&f.0)
        .args(["hot", "50", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("parallelizable=true"), "{text}");
}

#[test]
fn fmt_round_trips() {
    let f = demo_file();
    let out = padfa().arg("fmt").arg(&f.0).output().unwrap();
    assert!(out.status.success());
    // The pretty output must itself parse.
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    padfa_ir::parse::parse_program(&text).expect("fmt output parses");
}

#[test]
fn bad_file_fails_cleanly() {
    let f = temppath::write("proc broken( {");
    let out = padfa().arg("analyze").arg(&f.0).output().unwrap();
    assert_eq!(out.status.code(), Some(3), "parse errors exit with code 3");
    let err = String::from_utf8_lossy(&out.stderr);
    // Diagnostics carry a file:line:col span for editor integration.
    assert!(err.contains(&format!("{}:1:", f.0.display())), "{err}");
    assert!(err.contains("error:"), "{err}");
}

#[test]
fn missing_args_reported() {
    let f = demo_file();
    let out = padfa().arg("run").arg(&f.0).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing value"), "{err}");
    let _ = std::io::stderr().flush();
}

/// Assert a failed invocation exits nonzero with a one-line `padfa:`
/// diagnostic and no panic backtrace leaking to the user.
fn assert_clean_failure(out: &std::process::Output, needle: &str) {
    assert!(!out.status.success(), "expected failure");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("padfa: execution failed:"), "{err}");
    assert!(err.contains(needle), "wanted '{needle}' in: {err}");
    assert!(
        !err.contains("panicked at") && !err.contains("RUST_BACKTRACE"),
        "raw panic output leaked: {err}"
    );
}

#[test]
fn fuel_exhaustion_fails_cleanly_sequential() {
    let f = temppath::write(
        "proc main(n: int) { var s: real;
            for i = 1 to n { s = s + 1.0; } }",
    );
    let out = padfa()
        .args(["run", "--seq", "--fuel", "100"])
        .arg(&f.0)
        .arg("1000000000")
        .output()
        .unwrap();
    assert_clean_failure(&out, "fuel budget exhausted");
}

#[test]
fn fuel_exhaustion_fails_cleanly_parallel() {
    let f = temppath::write(
        "proc main(n: int) { var s: real;
            for i = 1 to n { s = s + 1.0; } }",
    );
    let out = padfa()
        .args(["run", "--workers", "4", "--fuel", "100"])
        .arg(&f.0)
        .arg("1000000000")
        .output()
        .unwrap();
    assert_clean_failure(&out, "fuel budget exhausted");
}

#[test]
fn out_of_bounds_fails_cleanly() {
    let f = temppath::write(
        "proc main(n: int) { array a[8];
            for i = 1 to n { a[i] = 1.0; } }",
    );
    let out = padfa()
        .args(["run", "--seq"])
        .arg(&f.0)
        .arg("9")
        .output()
        .unwrap();
    assert_clean_failure(&out, "out of bounds");
}

#[test]
fn division_by_zero_fails_cleanly() {
    let f = temppath::write("proc main(n: int) { var s: int; s = n / (n - n); print s; }");
    let out = padfa()
        .args(["run", "--seq"])
        .arg(&f.0)
        .arg("4")
        .output()
        .unwrap();
    assert_clean_failure(&out, "division by zero");
}

/// An injected worker panic with the fallback enabled: the run succeeds,
/// prints the right answer, and the summary reports the recovery.
#[test]
fn injected_panic_recovers_and_reports() {
    let f = temppath::write(
        "proc main(n: int) { array a[128]; var s: real;
            for i = 1 to n { a[i] = i * 2.0; }
            for i = 1 to n { s = s + a[i]; }
            print s; }",
    );
    let out = padfa()
        .args(["run", "--workers", "4", "--inject", "0:2:panic"])
        .arg(&f.0)
        .arg("128")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim().starts_with("16512"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fallback(s)"), "{stderr}");
    assert!(stderr.contains("recovered from"), "{stderr}");
    assert!(
        !stderr.contains("panicked at"),
        "isolated panic leaked a backtrace: {stderr}"
    );
}

/// The same injection with `--no-fallback`: a clean typed diagnostic.
#[test]
fn injected_panic_without_fallback_fails_cleanly() {
    let f = temppath::write(
        "proc main(n: int) { array a[128];
            for i = 1 to n { a[i] = i * 2.0; } }",
    );
    let out = padfa()
        .args([
            "run",
            "--workers",
            "4",
            "--no-fallback",
            "--inject",
            "1:2:panic",
        ])
        .arg(&f.0)
        .arg("128")
        .output()
        .unwrap();
    assert_clean_failure(&out, "worker 1 panicked");
}

#[test]
fn injected_error_without_fallback_fails_cleanly() {
    let f = temppath::write(
        "proc main(n: int) { array a[128];
            for i = 1 to n { a[i] = i * 2.0; } }",
    );
    let out = padfa()
        .args([
            "run",
            "--workers",
            "4",
            "--no-fallback",
            "--inject",
            "0:2:error",
        ])
        .arg(&f.0)
        .arg("128")
        .output()
        .unwrap();
    assert_clean_failure(&out, "division by zero");
}

#[test]
fn injected_corruption_without_fallback_fails_cleanly() {
    let f = temppath::write(
        "proc main(n: int) { array a[128];
            for i = 1 to n { a[i] = i * 2.0; } }",
    );
    let out = padfa()
        .args([
            "run",
            "--workers",
            "4",
            "--no-fallback",
            "--inject",
            "2:2:corrupt",
        ])
        .arg(&f.0)
        .arg("128")
        .output()
        .unwrap();
    assert_clean_failure(&out, "corrupted state");
}

#[test]
fn deadline_fails_cleanly() {
    let f = temppath::write(
        "proc main(n: int) { var s: real;
            for i = 1 to n { s = s + 1.0; } }",
    );
    let out = padfa()
        .args(["run", "--seq", "--deadline-ms", "0"])
        .arg(&f.0)
        .arg("1000000000")
        .output()
        .unwrap();
    assert_clean_failure(&out, "deadline exceeded");
}

#[test]
fn bad_inject_spec_shows_usage_error() {
    let f = temppath::write("proc main(n: int) { print n; }");
    let out = padfa()
        .args(["run", "--inject", "zero:two:bang"])
        .arg(&f.0)
        .arg("1")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bad --inject spec"), "{err}");
}

#[test]
fn elpd_fuel_budget_reported() {
    let f = temppath::write(
        "proc main(n: int) { array a[64];
            for@hot i = 1 to n { a[1] = a[1] + 1.0; } }",
    );
    let out = padfa()
        .args(["elpd"])
        .arg(&f.0)
        .args(["hot", "--fuel", "100", "1000000"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("padfa: inspection failed:"), "{err}");
    assert!(err.contains("fuel budget exhausted"), "{err}");
}

#[test]
fn run_summary_includes_fallback_count() {
    let f = demo_file();
    let out = padfa()
        .args(["run"])
        .arg(&f.0)
        .args(["100", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("0 fallback(s)"), "{stderr}");
}

#[test]
fn analyze_summaries_prints_dataflow_values() {
    let f = demo_file();
    let out = padfa()
        .args(["analyze", "--summaries"])
        .arg(&f.0)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("summary of main"), "{text}");
    assert!(text.contains("W="), "{text}");
    assert!(text.contains("E="), "{text}");
}

#[test]
fn usage_errors_exit_2() {
    let out = padfa().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = padfa().arg("analyze").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = padfa().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unreadable_file_exits_3() {
    let out = padfa()
        .arg("analyze")
        .arg("/nonexistent/padfa-no-such-file.mf")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn strict_budget_exhaustion_exits_4() {
    let f = demo_file();
    let out = padfa()
        .args(["analyze", "--max-steps", "1", "--strict"])
        .arg(&f.0)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("work budget exhausted"), "{err}");
}

#[test]
fn degrading_budget_still_succeeds_and_marks_loops() {
    let f = demo_file();
    let out = padfa()
        .args(["analyze", "--max-steps", "1"])
        .arg(&f.0)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("not-parallel (budget)"), "{text}");
    assert!(text.contains("degraded to conservative"), "{text}");
}

#[test]
fn corpus_classifies_every_program_and_resumes() {
    let ledger = std::env::temp_dir().join(format!(
        "padfa-cli-test-{}-corpus.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&ledger);
    let out = padfa()
        .args(["corpus", "--max-steps", "1000", "--keep-going", "--ledger"])
        .arg(&ledger)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 error, 0 panic"), "{text}");
    assert!(text.contains("per-suite loop attribution"), "{text}");

    let lines: Vec<String> = std::fs::read_to_string(&ledger)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    // Line 0 is the run stamp; every other line is one program row.
    assert!(lines.len() >= 2);
    assert!(
        lines[0].starts_with("{\"meta\":{\"schema_version\":"),
        "{}",
        lines[0]
    );
    assert!(lines[0].contains("\"git_rev\":"), "{}", lines[0]);
    assert!(lines[0].contains("\"host\":"), "{}", lines[0]);
    for line in &lines[1..] {
        assert!(line.starts_with("{\"name\":\""), "{line}");
        assert!(
            line.contains("\"outcome\":\"ok\"") || line.contains("\"outcome\":\"degraded\""),
            "{line}"
        );
        assert!(line.contains("\"won\":{\"base\":"), "{line}");
        assert!(line.contains("\"blocked\":"), "{line}");
    }

    // A resumed run skips everything already in the ledger and appends
    // nothing new.
    let out = padfa()
        .args([
            "corpus",
            "--max-steps",
            "1000",
            "--keep-going",
            "--resume",
            "--ledger",
        ])
        .arg(&ledger)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("skipped via --resume"), "{text}");
    let after: usize = std::fs::read_to_string(&ledger).unwrap().lines().count();
    assert_eq!(after, lines.len());
    let _ = std::fs::remove_file(&ledger);
}

/// A run killed mid-row leaves a truncated trailing ledger line.
/// `--resume` must not trust it: the partial row is dropped with a
/// warning and its program redone, leaving a complete ledger.
#[test]
fn corpus_resume_redoes_truncated_ledger_row() {
    let ledger = std::env::temp_dir().join(format!(
        "padfa-cli-test-{}-truncated.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&ledger);
    let out = padfa()
        .args(["corpus", "--max-steps", "1000", "--keep-going", "--ledger"])
        .arg(&ledger)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let full = std::fs::read_to_string(&ledger).unwrap();
    let complete_lines = full.lines().count();
    let last_line = full.lines().last().unwrap().to_string();
    let victim = last_line
        .strip_prefix("{\"name\":\"")
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .to_string();

    // Simulate the crash: keep the victim's name but cut the row mid-way
    // through its fields, with no trailing newline.
    let cut = full.len() - last_line.len() / 2 - 1;
    std::fs::write(&ledger, &full.as_bytes()[..cut]).unwrap();

    let out = padfa()
        .args([
            "corpus",
            "--max-steps",
            "1000",
            "--keep-going",
            "--resume",
            "--ledger",
        ])
        .arg(&ledger)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("truncated row"), "{err}");
    assert!(err.contains(&victim), "{err}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("skipped via --resume"), "{text}");
    // The victim reran: it appears in the resumed run's console output.
    assert!(text.contains(&victim), "victim not redone: {text}");

    // The ledger is whole again: same row count, every row complete,
    // exactly one row per program name.
    let after = std::fs::read_to_string(&ledger).unwrap();
    assert_eq!(after.lines().count(), complete_lines);
    assert!(after.ends_with('\n'));
    let mut names = Vec::new();
    for line in after.lines().skip(1) {
        assert!(line.starts_with("{\"name\":\""), "{line}");
        assert!(line.ends_with('}'), "incomplete row: {line}");
        names.push(line.split('"').nth(3).unwrap().to_string());
    }
    names.sort();
    let n = names.len();
    names.dedup();
    assert_eq!(names.len(), n, "duplicate rows after resume");
    let _ = std::fs::remove_file(&ledger);
}

fn store_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("padfa-cli-test-{}-store-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Warm store reruns must be byte-identical on stdout (reports and
/// verdicts), with persistence fully transparent.
#[test]
fn analyze_store_warm_rerun_is_identical() {
    let f = demo_file();
    let dir = store_dir("warm");
    let run = || {
        padfa()
            .args(["analyze", "--all", "--store"])
            .arg(&dir)
            .arg(&f.0)
            .output()
            .unwrap()
    };
    let cold = run();
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert!(cold.stderr.is_empty(), "cold run warned");
    let warm = run();
    assert!(warm.status.success());
    assert!(warm.stderr.is_empty(), "warm run warned");
    assert_eq!(cold.stdout, warm.stdout, "warm output differs from cold");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected bit flip over a warmed store must quarantine the entry,
/// warn on stderr, and still produce identical results with exit 0.
#[test]
fn analyze_store_bitflip_degrades_soundly() {
    let f = demo_file();
    let dir = store_dir("bitflip");
    let base = padfa()
        .args(["analyze", "--all", "--no-store"])
        .arg(&f.0)
        .output()
        .unwrap();
    let warmup = padfa()
        .args(["analyze", "--all", "--store"])
        .arg(&dir)
        .arg(&f.0)
        .output()
        .unwrap();
    assert!(warmup.status.success());
    let flipped = padfa()
        .args(["analyze", "--all", "--inject", "store-bitflip", "--store"])
        .arg(&dir)
        .arg(&f.0)
        .output()
        .unwrap();
    assert_eq!(flipped.status.code(), Some(0), "fault must not change exit");
    assert_eq!(flipped.stdout, base.stdout, "fault changed results");
    let err = String::from_utf8_lossy(&flipped.stderr);
    assert!(err.contains("quarantined"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Budgeted runs bypass the store (cached hits would skew step
/// accounting), with a warning rather than silent divergence.
#[test]
fn store_is_disabled_under_budget_with_warning() {
    let f = demo_file();
    let dir = store_dir("budget");
    let out = padfa()
        .args(["analyze", "--max-steps", "100000", "--store"])
        .arg(&dir)
        .arg(&f.0)
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("disabled under a work budget"), "{err}");
    assert!(!dir.exists(), "store dir created despite budget bypass");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_store_inject_spec_exits_2() {
    let f = demo_file();
    let out = padfa()
        .args(["analyze", "--inject", "store-seeded:notanumber:3"])
        .arg(&f.0)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bad --inject spec"), "{err}");

    let out = padfa()
        .args(["analyze", "--inject", "W:S:panic"])
        .arg(&f.0)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("only injects store-"), "{err}");
}
