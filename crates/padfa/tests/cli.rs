//! Integration tests for the `padfa` command-line driver.

use std::io::Write;
use std::process::Command;

fn padfa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_padfa"))
}

fn demo_file() -> temppath::TempPath {
    temppath::write(
        "proc main(n: int, x: int) {
            array help[101];
            array a[100, 2];
            var s: real;
            for@hot i = 1 to n {
                if (x > 5) { help[i] = a[i, 1]; }
                a[i, 2] = help[i + 1] + i * 0.5;
            }
            for@sum i = 1 to n { s = s + a[i, 2]; }
            print s;
        }",
    )
}

/// Minimal temp-file helper (no external crates).
mod temppath {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    static N: AtomicU32 = AtomicU32::new(0);

    pub fn write(contents: &str) -> TempPath {
        let n = N.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "padfa-cli-test-{}-{n}.mf",
            std::process::id()
        ));
        std::fs::write(&path, contents).unwrap();
        TempPath(path)
    }
}

#[test]
fn analyze_reports_two_version_loop() {
    let f = demo_file();
    let out = padfa().arg("analyze").arg(&f.0).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hot"), "{text}");
    assert!(text.contains("parallel if"), "{text}");
    assert!(text.contains("2 parallelized (1 with run-time tests)"), "{text}");
}

#[test]
fn analyze_variants_differ() {
    let f = demo_file();
    let base = padfa()
        .args(["analyze", "--variant", "base"])
        .arg(&f.0)
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&base.stdout);
    assert!(text.contains("1 parallelized (0 with run-time tests)"), "{text}");
}

#[test]
fn run_executes_and_prints() {
    let f = demo_file();
    let out = padfa()
        .args(["run"])
        .arg(&f.0)
        .args(["100", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // s = sum of i * 0.5 for i = 1..100 = 2525.
    assert!(stdout.trim().starts_with("2525"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parallel region"), "{stderr}");
}

#[test]
fn elpd_inspects_by_label() {
    let f = demo_file();
    let out = padfa()
        .args(["elpd"])
        .arg(&f.0)
        .args(["hot", "50", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("parallelizable=true"), "{text}");
}

#[test]
fn fmt_round_trips() {
    let f = demo_file();
    let out = padfa().arg("fmt").arg(&f.0).output().unwrap();
    assert!(out.status.success());
    // The pretty output must itself parse.
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    padfa_ir::parse::parse_program(&text).expect("fmt output parses");
}

#[test]
fn bad_file_fails_cleanly() {
    let f = temppath::write("proc broken( {");
    let out = padfa().arg("analyze").arg(&f.0).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parse error"), "{err}");
}

#[test]
fn missing_args_reported() {
    let f = demo_file();
    let out = padfa().arg("run").arg(&f.0).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing value"), "{err}");
    let _ = std::io::stderr().flush();
}

#[test]
fn analyze_summaries_prints_dataflow_values() {
    let f = demo_file();
    let out = padfa()
        .args(["analyze", "--summaries"])
        .arg(&f.0)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("summary of main"), "{text}");
    assert!(text.contains("W="), "{text}");
    assert!(text.contains("E="), "{text}");
}
