//! # padfa
//!
//! Predicated array data-flow analysis for automatic parallelization — a
//! from-scratch reproduction of Moon & Hall, *Evaluation of Predicated
//! Array Data-Flow Analysis for Automatic Parallelization* (PPoPP 1999).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`ir`] — the mini-Fortran IR, parser, and builder;
//! * [`omega`] — integer linear inequality systems (regions);
//! * [`pred`] — the predicate domain (embedding/extraction);
//! * [`analysis`] — the predicated array data-flow analysis and its
//!   baseline variants;
//! * [`rt`] — the interpreter, parallel executor, and ELPD inspector;
//! * [`suite`] — the synthetic benchmark corpus and kernels;
//! * [`service`] — the analysis-as-a-service HTTP daemon.
//!
//! ## Quick start
//!
//! ```
//! use padfa::prelude::*;
//!
//! let src = "proc main(n: int, x: int) {
//!     array help[101];
//!     array a[100, 2];
//!     for@hot i = 1 to n {
//!         if (x > 5) { help[i] = a[i, 1]; }
//!         a[i, 2] = help[i + 1];
//!     }
//! }";
//! let prog = parse_program(src).unwrap();
//!
//! // Analyze: the hot loop needs a run-time test.
//! let result = analyze_program(&prog, &Options::predicated()).unwrap();
//! let hot = result.by_label("hot").unwrap();
//! assert!(matches!(hot.outcome, Outcome::ParallelIf(_)));
//!
//! // Execute as a two-version loop and check against the sequential oracle.
//! let plan = ExecPlan::from_analysis(&prog, &result);
//! let args = vec![ArgValue::Int(100), ArgValue::Int(3)];
//! let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
//! let par = run_main(&prog, args, &RunConfig::parallel(4, plan)).unwrap();
//! assert_eq!(seq.max_abs_diff(&par), 0.0);
//! ```

pub use padfa_core as analysis;
pub use padfa_ir as ir;
pub use padfa_omega as omega;
pub use padfa_pred as pred;
pub use padfa_rt as rt;
pub use padfa_service as service;
pub use padfa_suite as suite;

/// The most common imports.
pub mod prelude {
    pub use padfa_core::{
        analyze_program, analyze_program_session, AnalysisError, AnalysisResult, AnalysisSession,
        OnExhausted, Options, Outcome, StatsSnapshot, Variant, WorkBudget,
    };
    pub use padfa_ir::parse::{parse_bool_expr, parse_expr, parse_program};
    pub use padfa_ir::{LoopId, Program, Var};
    pub use padfa_pred::Pred;
    pub use padfa_rt::elpd::elpd_inspect;
    pub use padfa_rt::{run_main, ArgValue, ArrayStore, ExecPlan, RunConfig, Value};
}
