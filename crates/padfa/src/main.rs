//! `padfa` — command-line driver for the predicated array data-flow
//! analysis.
//!
//! ```text
//! padfa analyze <file.mf> [--variant base|guarded|predicated] [--all] [--summaries]
//!                         [--jobs N] [--stats]
//! padfa run     <file.mf> [--workers N] [--seq] [--fuel N] [--deadline-ms N]
//!                         [--no-fallback] [--inject W:S:KIND] [ARG...]
//! padfa elpd    <file.mf> <loop-label-or-id> [--fuel N] [ARG...]
//! padfa fmt     <file.mf>
//! ```
//!
//! Scalar entry arguments are given positionally (`8 3 50`); integer
//! parameters take integers, real parameters accept either form. Array
//! parameters are zero-filled with their declared extents (which must
//! then be constant).
//!
//! `run` exposes the fault-tolerance controls of the executor: `--fuel`
//! bounds the statement budget (runaway programs exit with a clean
//! diagnostic), `--deadline-ms` bounds wall-clock time, `--inject
//! WORKER:STMT:panic|error|corrupt` arms the deterministic
//! fault-injection harness, and `--no-fallback` turns the transparent
//! sequential re-run into a hard error (useful for scripting around
//! failures).

use padfa::prelude::*;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  padfa analyze <file.mf> [--variant base|guarded|predicated] [--all]\n               \
         [--summaries] [--jobs N] [--stats]\n  \
         padfa run <file.mf> [--workers N] [--seq] [--fuel N] [--deadline-ms N]\n            \
         [--no-fallback] [--inject W:S:panic|error|corrupt] [ARG...]\n  \
         padfa elpd <file.mf> <loop-label-or-id> [--fuel N] [ARG...]\n  \
         padfa fmt <file.mf>"
    );
    exit(2)
}

fn load(path: &str) -> Program {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("padfa: cannot read {path}: {e}");
        exit(1)
    });
    parse_program(&src).unwrap_or_else(|e| {
        eprintln!("padfa: {path}: {e}");
        exit(1)
    })
}

/// Build entry arguments from CLI words, zero-filling array parameters.
fn entry_args(prog: &Program, words: &[String]) -> Vec<ArgValue> {
    let Some(entry) = prog.entry() else {
        eprintln!("padfa: program has no entry procedure");
        exit(1)
    };
    let mut out = Vec::new();
    let mut word = 0usize;
    for param in &entry.params {
        match &param.ty {
            padfa::ir::ParamTy::Scalar(ty) => {
                let w = words.get(word).unwrap_or_else(|| {
                    eprintln!(
                        "padfa: missing value for scalar parameter '{}' of '{}'",
                        param.name, entry.name
                    );
                    exit(1)
                });
                word += 1;
                match ty {
                    padfa::ir::ScalarTy::Int => match w.parse::<i64>() {
                        Ok(v) => out.push(ArgValue::Int(v)),
                        Err(_) => {
                            eprintln!(
                                "padfa: '{w}' is not an integer (parameter '{}')",
                                param.name
                            );
                            exit(1)
                        }
                    },
                    padfa::ir::ScalarTy::Real => match w.parse::<f64>() {
                        Ok(v) => out.push(ArgValue::Real(v)),
                        Err(_) => {
                            eprintln!("padfa: '{w}' is not a number (parameter '{}')", param.name);
                            exit(1)
                        }
                    },
                }
            }
            padfa::ir::ParamTy::Array { dims, ty } => {
                let mut extents = Vec::new();
                for d in dims {
                    match padfa::ir::affine::to_linexpr(d).filter(|l| l.is_const()) {
                        Some(l) if l.konst() >= 0 => extents.push(l.konst() as usize),
                        _ => {
                            eprintln!(
                                "padfa: array parameter '{}' needs constant extents to be \
                                 zero-filled from the command line",
                                param.name
                            );
                            exit(1)
                        }
                    }
                }
                out.push(ArgValue::Array(padfa::rt::ArrayStore::zeros(extents, *ty)));
            }
        }
    }
    if word < words.len() {
        eprintln!("padfa: {} extra argument(s)", words.len() - word);
        exit(1)
    }
    out
}

fn variant_options(name: &str) -> Options {
    match name {
        "base" => Options::base(),
        "guarded" => Options::guarded(),
        "predicated" => Options::predicated(),
        other => {
            eprintln!("padfa: unknown variant '{other}'");
            exit(2)
        }
    }
}

fn cmd_analyze(args: &[String]) {
    let mut file = None;
    let mut variant = "predicated".to_string();
    let mut show_all = false;
    let mut show_summaries = false;
    let mut show_stats = false;
    let mut jobs = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--variant" => variant = it.next().cloned().unwrap_or_else(|| usage()),
            "--all" => show_all = true,
            "--summaries" => show_summaries = true,
            "--stats" => show_stats = true,
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            _ if file.is_none() => file = Some(a.clone()),
            _ => usage(),
        }
    }
    let prog = load(&file.unwrap_or_else(|| usage()));
    let opts = variant_options(&variant);
    let sess = padfa::analysis::AnalysisSession::new(opts).with_jobs(jobs);
    let (result, summaries) = padfa::analysis::analyze_program_session(&prog, &sess);
    if show_summaries {
        let mut names: Vec<&String> = summaries.keys().collect();
        names.sort();
        for name in names {
            println!("== summary of {name} ==");
            print!("{}", summaries[name]);
            println!();
        }
    }
    let mut parallel = 0;
    let mut rt = 0;
    for report in &result.loops {
        if report.parallelized() {
            parallel += 1;
        }
        if matches!(report.outcome, Outcome::ParallelIf(_)) {
            rt += 1;
        }
        if show_all || report.parallelized() || report.not_candidate.is_some() {
            println!("{report}");
        }
    }
    println!(
        "\n{} loops: {} parallelized ({} with run-time tests) under the {} analysis",
        result.loops.len(),
        parallel,
        rt,
        variant
    );
    if show_stats {
        println!("\n== session statistics ==");
        print!("{}", result.stats);
    }
}

/// Parse a `WORKER:STMT:KIND` fault-injection spec from `--inject`.
fn parse_fault(spec: &str) -> padfa::rt::FaultSpec {
    use padfa::rt::{ExecError, FaultKind, FaultSpec};
    fn bad(spec: &str) -> ! {
        eprintln!("padfa: bad --inject spec '{spec}' (want WORKER:STMT:panic|error|corrupt)");
        exit(2)
    }
    let parts: Vec<&str> = spec.split(':').collect();
    let [worker, at_stmt, kind] = parts[..] else {
        bad(spec)
    };
    let worker: usize = worker.parse().unwrap_or_else(|_| bad(spec));
    let at_stmt: u64 = at_stmt.parse().unwrap_or_else(|_| bad(spec));
    let kind = match kind {
        "panic" => FaultKind::Panic,
        "error" => FaultKind::Error(ExecError::DivisionByZero),
        "corrupt" => FaultKind::CorruptStamp,
        _ => bad(spec),
    };
    FaultSpec {
        worker,
        at_stmt,
        kind,
    }
}

fn cmd_run(args: &[String]) {
    let mut file = None;
    let mut workers = 4usize;
    let mut seq = false;
    let mut fuel: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut no_fallback = false;
    let mut faults = padfa::rt::FaultPlan::none();
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seq" => seq = true,
            "--fuel" => {
                fuel = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-fallback" => no_fallback = true,
            "--inject" => {
                let spec = it.next().unwrap_or_else(|| usage());
                faults = faults.with(parse_fault(spec));
            }
            _ if file.is_none() => file = Some(a.clone()),
            _ => rest.push(a.clone()),
        }
    }
    let prog = load(&file.unwrap_or_else(|| usage()));
    let args = entry_args(&prog, &rest);
    let mut cfg = if seq || workers <= 1 {
        RunConfig::sequential()
    } else {
        let result = analyze_program(&prog, &Options::predicated());
        RunConfig::parallel(workers, ExecPlan::from_analysis(&prog, &result))
    };
    cfg.fuel = fuel;
    if let Some(ms) = deadline_ms {
        cfg = cfg.with_deadline(std::time::Duration::from_millis(ms));
    }
    cfg.faults = faults;
    if no_fallback {
        cfg = cfg.no_fallback();
    }
    match run_main(&prog, args, &cfg) {
        Ok(out) => {
            for v in &out.printed {
                match v {
                    Value::Int(x) => println!("{x}"),
                    Value::Real(x) => println!("{x}"),
                }
            }
            eprintln!(
                "-- {} statements, {} iterations, {} parallel region(s), \
                 {} fallback(s), tests {}/{} passed",
                out.total_work,
                out.stats.iterations,
                out.stats.parallel_loops,
                out.stats.fallbacks,
                out.stats.tests_passed,
                out.stats.tests_passed + out.stats.tests_failed,
            );
            if out.stats.fallbacks > 0 {
                eprintln!(
                    "-- recovered from {} worker failure(s) ({} panic(s)) by sequential re-run",
                    out.stats.fallbacks, out.stats.worker_panics,
                );
            }
        }
        Err(e) => {
            eprintln!("padfa: execution failed: {e}");
            exit(1)
        }
    }
}

fn cmd_elpd(args: &[String]) {
    let mut fuel: Option<u64> = None;
    let mut pos: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fuel" => {
                fuel = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => pos.push(a.clone()),
        }
    }
    if pos.len() < 2 {
        usage()
    }
    let prog = load(&pos[0]);
    let target = &pos[1];
    let rest = &pos[2..];
    let loop_id = padfa::ir::visit::find_loop_by_label(&prog, target)
        .map(|(_, l)| l.id)
        .or_else(|| {
            target
                .parse::<u32>()
                .ok()
                .map(LoopId)
                .filter(|id| padfa::ir::visit::find_loop(&prog, *id).is_some())
        })
        .unwrap_or_else(|| {
            eprintln!("padfa: no loop labeled or numbered '{target}'");
            exit(1)
        });
    let argv = entry_args(&prog, rest);
    match padfa::rt::elpd::elpd_inspect_budgeted(&prog, argv, loop_id, &[], fuel) {
        Ok(v) => {
            println!(
                "loop {target}: parallelizable={} privatization={} ({} invocation(s), {} iteration(s))",
                v.parallelizable, v.needs_privatization, v.invocations, v.iterations
            );
            let mut arrays: Vec<_> = v.arrays.iter().collect();
            arrays.sort_by_key(|(name, _)| (*name).clone());
            for (name, class) in arrays {
                println!("  {name}: {class:?}");
            }
            for s in &v.scalar_deps {
                println!("  scalar {s}: flow dependence");
            }
        }
        Err(e) => {
            eprintln!("padfa: inspection failed: {e}");
            exit(1)
        }
    }
}

fn cmd_fmt(args: &[String]) {
    if args.len() != 1 {
        usage()
    }
    let prog = load(&args[0]);
    print!("{}", padfa::ir::pretty::program_to_string(&prog));
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "analyze" => cmd_analyze(rest),
            "run" => cmd_run(rest),
            "elpd" => cmd_elpd(rest),
            "fmt" => cmd_fmt(rest),
            _ => usage(),
        },
        None => usage(),
    }
}
