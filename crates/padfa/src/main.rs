//! `padfa` — command-line driver for the predicated array data-flow
//! analysis.
//!
//! ```text
//! padfa analyze <file.mf> [--variant base|guarded|predicated] [--all] [--summaries]
//!                         [--jobs N] [--spawn-threshold N] [--stats] [--profile]
//!                         [--max-steps N] [--deadline-ms N]
//!                         [--strict] [--trace PATH] [--metrics-out PATH]
//!                         [--store DIR] [--no-store] [--inject store-FAULT]
//! padfa explain <file.mf> [--loop <label-or-id>] [--json] [--variant V] [--jobs N]
//! padfa run     <file.mf> [--workers N] [--seq] [--fuel N] [--deadline-ms N]
//!                         [--no-fallback] [--inject W:S:KIND] [ARG...]
//! padfa elpd    <file.mf> <loop-label-or-id> [--fuel N] [ARG...]
//! padfa fmt     <file.mf>
//! padfa corpus  [--variant V] [--jobs N] [--spawn-threshold N]
//!               [--max-steps N] [--deadline-ms N]
//!               [--ledger PATH] [--resume] [--keep-going] [--metrics-out PATH]
//!               [--store DIR] [--no-store] [--inject store-FAULT]
//! padfa serve   [--addr HOST:PORT] [--workers N] [--queue N] [--jobs N]
//!               [--default-max-steps N] [--max-steps-ceiling N]
//!               [--default-deadline-ms N] [--deadline-ms-ceiling N]
//!               [--read-timeout-ms N] [--drain-deadline-ms N]
//!               [--slow-ms N] [--slow-log PATH] [--debug-ring N]
//!               [--flight-dump-dir DIR]
//!               [--store DIR] [--no-store] [--inject FAULT]
//! padfa promcheck [FILE]
//! ```
//!
//! Scalar entry arguments are given positionally (`8 3 50`); integer
//! parameters take integers, real parameters accept either form. Array
//! parameters are zero-filled with their declared extents (which must
//! then be constant).
//!
//! `run` exposes the fault-tolerance controls of the executor: `--fuel`
//! bounds the statement budget (runaway programs exit with a clean
//! diagnostic), `--deadline-ms` bounds wall-clock time, `--inject
//! WORKER:STMT:panic|error|corrupt` arms the deterministic
//! fault-injection harness, and `--no-fallback` turns the transparent
//! sequential re-run into a hard error (useful for scripting around
//! failures).
//!
//! `analyze` exposes the analysis-side watchdog: `--max-steps` bounds
//! the lattice-operation count per procedure (deterministic),
//! `--deadline-ms` bounds per-procedure wall time, and `--strict` turns
//! budget exhaustion into a hard error (exit 4) instead of degrading
//! the procedure to a sound conservative summary.
//!
//! `--jobs N` runs the analysis on up to `N` worker lanes;
//! `--spawn-threshold N` sets the task scheduler's cost cutoff: units of
//! static estimated work below which a task runs inline on the deciding
//! thread instead of being dispatched to a lane (0 spawns everything
//! eligible, a huge value inlines everything). The threshold moves work
//! between threads but never changes results — the output and the
//! corpus ledger are byte-identical at any setting.
//!
//! `explain` prints the decision-provenance tree behind every loop
//! verdict — the dependence pair or exposed read that blocked
//! parallelism, the query outcome that discharged it, the decisive
//! predicate, the emitted run-time test, and any budget or cap-hit
//! degradation — as a human-readable tree or (`--json`) machine JSON.
//!
//! `analyze --store DIR` (or the `PADFA_STORE` environment variable)
//! attaches the crash-safe persistent memo store: lattice results and
//! whole-procedure summaries are content-addressed on disk, so a warm
//! rerun skips recomputation while producing bit-identical output. A
//! corrupt, locked, or failing store degrades to recomputation with a
//! typed warning — it can never change results or crash the run.
//! `--no-store` overrides the environment; `--inject store-write-fail[:N]`,
//! `store-read-fail[:N]`, `store-torn-write[:N]`, `store-bitflip[:N]`,
//! and `store-seeded:SEED:COUNT` deterministically exercise the store's
//! failure paths. Budgeted runs (`--max-steps`/`--deadline-ms`) bypass
//! the store: replaying cached results would change step accounting and
//! with it degradation decisions.
//!
//! `analyze --trace PATH` writes a Chrome trace-event JSON file
//! (loadable in Perfetto / `chrome://tracing`) with spans for parse,
//! per-procedure summarization, loop classification, and lattice-op
//! batches across all worker threads. `--metrics-out PATH` writes the
//! run's metrics-registry snapshot (counters + latency histograms).
//! `--profile` prints a per-phase self-time table reconstructed from
//! the always-on flight recorder (set `PADFA_NO_FLIGHT=1` to disable
//! recording entirely, which also disables `--profile`).
//!
//! `serve` runs the analysis as a long-lived HTTP daemon (`POST
//! /analyze`, `POST /explain`, `GET /healthz`, `GET /readyz`, `GET
//! /metrics`, `GET /debug/requests`, `GET /debug/flight`) with bounded
//! admission, per-request isolation, request-scoped tracing, and
//! graceful drain — see the `padfa-service` crate docs. `SIGINT` or
//! `SIGTERM` drains in-flight work, flushes the store, and exits 0.
//! `--slow-ms` sets the slow-request threshold (0 disables),
//! `--slow-log` appends slow-request forensics records to a file,
//! `--debug-ring` sizes the `/debug/requests` ring, and
//! `--flight-dump-dir` is where flight-ring sidecars land on a worker
//! panic or unclean drain. `--inject` additionally accepts the
//! service-layer faults `worker-panic[:K]`, `torn-response[:K]`,
//! `slow-request[:K[:MS]]`, `recorder-overflow[:K]`, and
//! `service-seeded:SEED:COUNT` (keyed on admission order).
//!
//! `promcheck` validates a Prometheus text-exposition scrape (a file,
//! or stdin when no path is given) against the same checker the test
//! suite uses: every sample typed, histogram buckets cumulative, `+Inf`
//! consistent with `_count`. CI scrapes `/metrics` and pipes it here.
//!
//! `corpus` runs the analysis over the full synthetic benchmark corpus,
//! isolating each program behind `catch_unwind`, and streams one JSON
//! line per program to a ledger for offline triage. Each row carries the
//! per-mechanism loop attribution (which technique won each parallelized
//! loop), and the run ends with the paper-style per-suite attribution
//! table. Fresh ledgers start with a `{"meta":...}` stamp line
//! (`schema_version`, git revision, host) so trajectories across
//! revisions stay comparable.
//!
//! ## Exit codes
//!
//! | code | meaning                                              |
//! |------|------------------------------------------------------|
//! | 0    | success (degraded summaries still count as success)  |
//! | 1    | runtime/execution failure (`run`, `elpd`)            |
//! | 2    | usage error                                          |
//! | 3    | unreadable input or parse/malformed-IR error         |
//! | 4    | work budget exhausted under `--strict`               |
//! | 5    | internal invariant failure (analyzer bug or panic)   |

use padfa::prelude::*;
use std::io::Write as _;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  padfa analyze <file.mf> [--variant base|guarded|predicated] [--all]\n               \
         [--summaries] [--jobs N] [--spawn-threshold N] [--stats] [--profile]\n               \
         [--max-steps N] [--deadline-ms N]\n               \
         [--strict] [--trace PATH] [--metrics-out PATH] [--store DIR] [--no-store]\n               \
         [--inject store-FAULT]\n  \
         padfa explain <file.mf> [--loop <label-or-id>] [--json] [--variant V] [--jobs N]\n  \
         padfa run <file.mf> [--workers N] [--seq] [--fuel N] [--deadline-ms N]\n            \
         [--no-fallback] [--inject W:S:panic|error|corrupt] [ARG...]\n  \
         padfa elpd <file.mf> <loop-label-or-id> [--fuel N] [ARG...]\n  \
         padfa fmt <file.mf>\n  \
         padfa corpus [--variant V] [--jobs N] [--spawn-threshold N]\n               \
         [--max-steps N] [--deadline-ms N]\n               \
         [--ledger PATH] [--resume] [--keep-going] [--metrics-out PATH]\n               \
         [--store DIR] [--no-store] [--inject store-FAULT]\n  \
         padfa serve [--addr HOST:PORT] [--workers N] [--queue N] [--jobs N]\n              \
         [--default-max-steps N] [--max-steps-ceiling N]\n              \
         [--default-deadline-ms N] [--deadline-ms-ceiling N]\n              \
         [--read-timeout-ms N] [--drain-deadline-ms N]\n              \
         [--slow-ms N] [--slow-log PATH] [--debug-ring N] [--flight-dump-dir DIR]\n              \
         [--store DIR] [--no-store] [--inject FAULT]\n  \
         padfa promcheck [FILE]"
    );
    exit(2)
}

/// Ledger / snapshot schema version. Bump when a field changes meaning.
const SCHEMA_VERSION: u32 = 3;

/// The current git revision (short hash, `+dirty` when the tree has
/// local modifications), or `"unknown"` outside a git checkout.
fn git_rev() -> String {
    let out = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
    };
    match out(&["rev-parse", "--short=12", "HEAD"]).filter(|s| !s.is_empty()) {
        Some(rev) => {
            let dirty = out(&["status", "--porcelain"]).map(|s| !s.is_empty());
            if dirty == Some(true) {
                format!("{rev}+dirty")
            } else {
                rev
            }
        }
        None => "unknown".to_string(),
    }
}

/// Coarse host identification for run stamps.
fn host_info() -> String {
    let host = std::env::var("HOSTNAME")
        .or_else(|_| std::env::var("HOST"))
        .unwrap_or_else(|_| "unknown-host".to_string());
    format!(
        "{host} ({} {})",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

/// Map a typed analysis error to the documented exit code.
fn exit_code(e: &AnalysisError) -> i32 {
    match e {
        AnalysisError::Parse(_) | AnalysisError::MalformedIr(_) => 3,
        AnalysisError::BudgetExhausted { .. } => 4,
        AnalysisError::Internal(_) => 5,
    }
}

fn load(path: &str) -> Program {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("padfa: cannot read {path}: {e}");
        exit(3)
    });
    parse_program(&src).unwrap_or_else(|e| {
        eprintln!("{path}:{}:{}: error: {}", e.line, e.col, e.msg);
        exit(3)
    })
}

/// Build entry arguments from CLI words, zero-filling array parameters.
fn entry_args(prog: &Program, words: &[String]) -> Vec<ArgValue> {
    let Some(entry) = prog.entry() else {
        eprintln!("padfa: program has no entry procedure");
        exit(1)
    };
    let mut out = Vec::new();
    let mut word = 0usize;
    for param in &entry.params {
        match &param.ty {
            padfa::ir::ParamTy::Scalar(ty) => {
                let w = words.get(word).unwrap_or_else(|| {
                    eprintln!(
                        "padfa: missing value for scalar parameter '{}' of '{}'",
                        param.name, entry.name
                    );
                    exit(1)
                });
                word += 1;
                match ty {
                    padfa::ir::ScalarTy::Int => match w.parse::<i64>() {
                        Ok(v) => out.push(ArgValue::Int(v)),
                        Err(_) => {
                            eprintln!(
                                "padfa: '{w}' is not an integer (parameter '{}')",
                                param.name
                            );
                            exit(1)
                        }
                    },
                    padfa::ir::ScalarTy::Real => match w.parse::<f64>() {
                        Ok(v) => out.push(ArgValue::Real(v)),
                        Err(_) => {
                            eprintln!("padfa: '{w}' is not a number (parameter '{}')", param.name);
                            exit(1)
                        }
                    },
                }
            }
            padfa::ir::ParamTy::Array { dims, ty } => {
                let mut extents = Vec::new();
                for d in dims {
                    match padfa::ir::affine::to_linexpr(d).filter(|l| l.is_const()) {
                        Some(l) if l.konst() >= 0 => extents.push(l.konst() as usize),
                        _ => {
                            eprintln!(
                                "padfa: array parameter '{}' needs constant extents to be \
                                 zero-filled from the command line",
                                param.name
                            );
                            exit(1)
                        }
                    }
                }
                out.push(ArgValue::Array(padfa::rt::ArrayStore::zeros(extents, *ty)));
            }
        }
    }
    if word < words.len() {
        eprintln!("padfa: {} extra argument(s)", words.len() - word);
        exit(1)
    }
    out
}

fn variant_options(name: &str) -> Options {
    match name {
        "base" => Options::base(),
        "guarded" => Options::guarded(),
        "predicated" => Options::predicated(),
        other => {
            eprintln!("padfa: unknown variant '{other}'");
            exit(2)
        }
    }
}

/// Shared budget-flag state for `analyze` and `corpus`.
#[derive(Default)]
struct BudgetFlags {
    max_steps: Option<u64>,
    deadline_ms: Option<u64>,
    strict: bool,
}

impl BudgetFlags {
    fn to_budget(&self) -> WorkBudget {
        WorkBudget {
            max_steps: self.max_steps,
            deadline_ms: self.deadline_ms,
            on_exhausted: if self.strict {
                OnExhausted::Error
            } else {
                OnExhausted::Degrade
            },
        }
    }
}

/// Shared persistent-store flag state for `analyze` and `corpus`.
#[derive(Default)]
struct StoreFlags {
    dir: Option<String>,
    disabled: bool,
    faults: padfa::analysis::IoFaultPlan,
}

impl StoreFlags {
    /// Resolve `--store` / `--no-store` / `PADFA_STORE` into an opened
    /// store handle. `None` means the session runs without persistence.
    /// Opening never fails: an unusable directory yields a degraded
    /// (in-memory-only) store whose warnings the caller drains.
    fn open(&self, budget: &WorkBudget) -> Option<std::sync::Arc<padfa::analysis::Store>> {
        if self.disabled {
            return None;
        }
        let dir = self
            .dir
            .clone()
            .or_else(|| std::env::var("PADFA_STORE").ok().filter(|s| !s.is_empty()))?;
        if !budget.is_unlimited() {
            eprintln!(
                "padfa: warning: persistent store disabled under a work budget \
                 (cached results would change step accounting)"
            );
            return None;
        }
        let cfg =
            padfa::analysis::StoreConfig::new(&dir, git_rev()).with_faults(self.faults.clone());
        Some(std::sync::Arc::new(padfa::analysis::Store::open(cfg)))
    }
}

/// Print every pending store warning (corruption, IO degradation, lock
/// contention) to stderr. Warnings never affect results or exit codes.
fn drain_store_warnings(store: &padfa::analysis::Store) {
    for w in store.take_warnings() {
        eprintln!("padfa: warning: {w}");
    }
}

/// Parse a `store-*` spec from `--inject` into the fault plan. Returns
/// false when the spec is not store-related (so callers can reject it).
fn parse_store_fault(spec: &str, plan: &mut padfa::analysis::IoFaultPlan) -> bool {
    use padfa::analysis::{IoFaultKind, IoFaultSpec};
    let bad = || -> ! {
        eprintln!(
            "padfa: bad --inject spec '{spec}' (want store-write-fail[:N], \
             store-read-fail[:N], store-torn-write[:N], store-bitflip[:N], \
             or store-seeded:SEED:COUNT)"
        );
        exit(2)
    };
    let mut parts = spec.split(':');
    let kind = match parts.next().unwrap_or("") {
        "store-write-fail" => IoFaultKind::WriteFail,
        "store-read-fail" => IoFaultKind::ReadFail,
        "store-torn-write" => IoFaultKind::TornWrite,
        "store-bitflip" => IoFaultKind::BitFlip,
        "store-seeded" => {
            let (Some(seed), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
                bad()
            };
            let seed: u64 = seed.parse().unwrap_or_else(|_| bad());
            let count: usize = count.parse().unwrap_or_else(|_| bad());
            // Draw faults from the first 32 store operations of each
            // kind: early enough to hit any realistic run.
            for f in padfa::analysis::IoFaultPlan::seeded(seed, count, 32).faults {
                plan.faults.push(f);
            }
            return true;
        }
        _ => return false,
    };
    let at_op = match parts.next() {
        None => 1,
        Some(n) if parts.next().is_none() => n.parse().unwrap_or_else(|_| bad()),
        Some(_) => bad(),
    };
    plan.faults.push(IoFaultSpec { at_op, kind });
    true
}

fn cmd_analyze(args: &[String]) {
    let mut file = None;
    let mut variant = "predicated".to_string();
    let mut show_all = false;
    let mut show_summaries = false;
    let mut show_stats = false;
    let mut show_profile = false;
    let mut jobs = 1usize;
    let mut spawn_threshold: Option<u64> = None;
    let mut budget = BudgetFlags::default();
    let mut store_flags = StoreFlags::default();
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--variant" => variant = it.next().cloned().unwrap_or_else(|| usage()),
            "--all" => show_all = true,
            "--summaries" => show_summaries = true,
            "--stats" => show_stats = true,
            "--profile" => show_profile = true,
            "--store" => store_flags.dir = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--no-store" => store_flags.disabled = true,
            "--inject" => {
                let spec = it.next().cloned().unwrap_or_else(|| usage());
                if !parse_store_fault(&spec, &mut store_flags.faults) {
                    eprintln!("padfa: analyze only injects store-* faults, got '{spec}'");
                    exit(2)
                }
            }
            "--trace" => trace_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--metrics-out" => metrics_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--spawn-threshold" => {
                spawn_threshold = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--max-steps" => {
                budget.max_steps = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--deadline-ms" => {
                budget.deadline_ms = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--strict" => budget.strict = true,
            _ if file.is_none() => file = Some(a.clone()),
            _ => usage(),
        }
    }
    let path = file.unwrap_or_else(|| usage());
    // Mark the flight-recorder high-water mark now so the profile table
    // covers exactly this run's events (parse included).
    let flight_wm = padfa::analysis::flight::watermark();
    if trace_out.is_some() {
        padfa::analysis::trace::start_capture();
    }
    let prog = {
        let _s = padfa::analysis::trace::span("parse", "parse");
        load(&path)
    };
    let mut opts = variant_options(&variant).with_budget(budget.to_budget());
    if let Some(t) = spawn_threshold {
        opts = opts.with_spawn_threshold(t);
    }
    let registry = metrics_out
        .as_ref()
        .map(|_| padfa::analysis::MetricsRegistry::new());
    let store = store_flags.open(&opts.budget);
    let mut sess = padfa::analysis::AnalysisSession::new(opts).with_jobs(jobs);
    if let Some(reg) = &registry {
        sess = sess.with_metrics(std::sync::Arc::clone(reg));
    }
    if let Some(s) = &store {
        sess = sess.with_store(std::sync::Arc::clone(s));
    }
    let (result, summaries) = match padfa::analysis::analyze_program_session(&prog, &sess) {
        Ok(out) => out,
        Err(e) => {
            if let Some(s) = &store {
                drain_store_warnings(s);
            }
            eprintln!("padfa: {path}: {e}");
            exit(exit_code(&e))
        }
    };
    if let Some(s) = &store {
        drain_store_warnings(s);
    }
    if let Some(out_path) = &trace_out {
        match padfa::analysis::trace::finish_capture() {
            Some(json) => {
                if let Err(e) = std::fs::write(out_path, json) {
                    eprintln!("padfa: cannot write trace {out_path}: {e}");
                    exit(1)
                }
                eprintln!("trace written to {out_path} (load in Perfetto or chrome://tracing)");
            }
            None => eprintln!("padfa: tracing support not compiled in; no trace written"),
        }
    }
    if let (Some(out_path), Some(reg)) = (&metrics_out, &registry) {
        sess.publish_metrics();
        let json = format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"git_rev\":\"{}\",\"host\":\"{}\",\
             \"variant\":\"{}\",\"jobs\":{jobs},\"metrics\":{}}}",
            json_escape(&git_rev()),
            json_escape(&host_info()),
            json_escape(&variant),
            reg.snapshot_json()
        );
        if let Err(e) = std::fs::write(out_path, json) {
            eprintln!("padfa: cannot write metrics {out_path}: {e}");
            exit(1)
        }
    }
    if show_summaries {
        let mut names: Vec<&String> = summaries.keys().collect();
        names.sort();
        for name in names {
            println!("== summary of {name} ==");
            print!("{}", summaries[name]);
            println!();
        }
    }
    let mut parallel = 0;
    let mut rt = 0;
    for report in &result.loops {
        if report.parallelized() {
            parallel += 1;
        }
        if matches!(report.outcome, Outcome::ParallelIf(_)) {
            rt += 1;
        }
        if show_all || report.parallelized() || report.not_candidate.is_some() {
            println!("{report}");
        }
    }
    println!(
        "\n{} loops: {} parallelized ({} with run-time tests) under the {} analysis",
        result.loops.len(),
        parallel,
        rt,
        variant
    );
    if result.stats.degraded_procs > 0 {
        println!(
            "note: {} procedure(s) hit the work budget and were degraded to \
             conservative (sequential) summaries",
            result.stats.degraded_procs
        );
    }
    if show_stats {
        println!("\n== session statistics ==");
        print!("{}", result.stats);
    }
    if show_profile {
        print_flight_profile(flight_wm);
    }
}

/// Print the per-phase self-time table reconstructed from the flight
/// recorder (`analyze --profile`). `watermark` bounds the table to the
/// current run's events.
fn print_flight_profile(watermark: u64) {
    use padfa::analysis::flight;
    if !flight::enabled() {
        eprintln!(
            "padfa: flight recorder is disabled (PADFA_NO_FLIGHT=1); \
             no profile available"
        );
        return;
    }
    let events = flight::events_since(watermark);
    let prof = flight::profile(&events);
    println!("\n== flight profile (per phase) ==");
    println!(
        "{:<18} {:>6} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "phase", "spans", "instants", "total_us", "self_us", "max_us", "value"
    );
    for (kind, st) in &prof {
        println!(
            "{:<18} {:>6} {:>8} {:>12} {:>12} {:>10} {:>10}",
            kind.name(),
            st.spans,
            st.instants,
            st.total_us,
            st.self_us,
            st.max_us,
            st.value
        );
    }
    let dropped = flight::overflows();
    if dropped > 0 {
        println!(
            "note: ring wrapped ({dropped} event(s) overwritten); \
             totals cover surviving events only"
        );
    }
}

/// `padfa explain`: print the decision-provenance tree behind every
/// loop verdict (or one loop selected by `--loop <label-or-id>`).
fn cmd_explain(args: &[String]) {
    let mut file = None;
    let mut variant = "predicated".to_string();
    let mut target: Option<String> = None;
    let mut json = false;
    let mut jobs = 1usize;
    let mut budget = BudgetFlags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--variant" => variant = it.next().cloned().unwrap_or_else(|| usage()),
            "--loop" => target = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--json" => json = true,
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--max-steps" => {
                budget.max_steps = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--deadline-ms" => {
                budget.deadline_ms = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            _ if file.is_none() => file = Some(a.clone()),
            _ => usage(),
        }
    }
    let path = file.unwrap_or_else(|| usage());
    let prog = load(&path);
    let opts = variant_options(&variant).with_budget(budget.to_budget());
    let sess = padfa::analysis::AnalysisSession::new(opts).with_jobs(jobs);
    let (result, _) = match padfa::analysis::analyze_program_session(&prog, &sess) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("padfa: {path}: {e}");
            exit(exit_code(&e))
        }
    };
    let selected: Vec<_> = match &target {
        Some(t) => {
            let hits: Vec<_> = result
                .loops
                .iter()
                .filter(|r| {
                    r.label.as_deref() == Some(t.as_str())
                        || t.parse::<u32>().is_ok_and(|n| r.id.0 == n)
                })
                .collect();
            if hits.is_empty() {
                eprintln!("padfa: no analyzed loop labeled or numbered '{t}'");
                exit(1)
            }
            hits
        }
        None => result.loops.iter().collect(),
    };
    if json {
        let loops: Vec<String> = selected
            .iter()
            .map(|r| padfa::analysis::loop_json(r))
            .collect();
        println!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"file\":\"{}\",\"variant\":\"{}\",\
             \"loops\":[{}]}}",
            json_escape(&path),
            json_escape(&variant),
            loops.join(",")
        );
    } else {
        for (i, r) in selected.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", padfa::analysis::render_text(r));
        }
    }
}

/// Minimal JSON string escaping for the corpus ledger.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One corpus-run outcome, serialized as a ledger line.
struct CorpusRow {
    name: String,
    suite: &'static str,
    outcome: &'static str,
    ms: u128,
    loops: usize,
    parallel: usize,
    steps: u64,
    peak_disjuncts: usize,
    peak_constraints: usize,
    degraded_procs: u64,
    limit_overflows: u64,
    /// Parallelized loops won by each mechanism, indexed by
    /// [`padfa::analysis::Mechanism`] discriminant order.
    won: [u64; 5],
    /// Sequential candidate loops attributed to a concrete blocking
    /// dependence, exposed read, or budget event.
    blocked: u64,
    error: Option<String>,
}

impl CorpusRow {
    fn to_jsonl(&self) -> String {
        let mut line = format!(
            "{{\"name\":\"{}\",\"suite\":\"{}\",\"outcome\":\"{}\",\"ms\":{},\
             \"loops\":{},\"parallel\":{},\"steps\":{},\"peak_disjuncts\":{},\
             \"peak_constraints\":{},\"degraded_procs\":{},\"limit_overflows\":{}",
            json_escape(&self.name),
            json_escape(self.suite),
            self.outcome,
            self.ms,
            self.loops,
            self.parallel,
            self.steps,
            self.peak_disjuncts,
            self.peak_constraints,
            self.degraded_procs,
            self.limit_overflows,
        );
        line.push_str(",\"won\":{");
        for (i, m) in padfa::analysis::Mechanism::ALL.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":{}", m.label(), self.won[i]));
        }
        line.push_str(&format!("}},\"blocked\":{}", self.blocked));
        if let Some(err) = &self.error {
            line.push_str(&format!(",\"error\":\"{}\"", json_escape(err)));
        }
        line.push('}');
        line
    }
}

/// Names already present in an existing ledger (for `--resume`). The
/// ledger is our own output format, so a plain prefix scan of each
/// line's `"name":"..."` field is sufficient — no JSON parser needed.
///
/// A run killed mid-write can leave a truncated final row. Such a row
/// must not count as done — the program's result never made it to disk
/// — so only rows that close their JSON object (`}`) are trusted; a
/// partial row is reported and its program redone.
fn ledger_names(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut names = Vec::new();
    for l in text.lines() {
        let Some(rest) = l.strip_prefix("{\"name\":\"") else {
            continue;
        };
        let Some(name) = rest.split('"').next() else {
            continue;
        };
        if !l.trim_end().ends_with('}') {
            eprintln!(
                "padfa: warning: ledger {path}: truncated row for '{name}' \
                 (interrupted run?); it will be redone"
            );
            continue;
        }
        names.push(name.to_string());
    }
    names
}

/// Drop a truncated trailing line (one with no terminating newline) left
/// by an interrupted run, so resumed rows start on a fresh line instead
/// of being glued onto the partial row. Complete rows always end in a
/// newline (the runner writes and flushes whole lines).
fn trim_partial_ledger_line(path: &str) {
    let Ok(bytes) = std::fs::read(path) else {
        return;
    };
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return;
    }
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    eprintln!(
        "padfa: warning: ledger {path}: dropping {} byte(s) of truncated trailing row",
        bytes.len() - keep
    );
    match std::fs::OpenOptions::new().write(true).open(path) {
        Ok(f) => {
            if let Err(e) = f.set_len(keep as u64) {
                eprintln!("padfa: cannot truncate ledger {path}: {e}");
                exit(1)
            }
        }
        Err(e) => {
            eprintln!("padfa: cannot open ledger {path}: {e}");
            exit(1)
        }
    }
}

fn cmd_corpus(args: &[String]) {
    let mut variant = "predicated".to_string();
    let mut jobs = 1usize;
    let mut spawn_threshold: Option<u64> = None;
    let mut budget = BudgetFlags::default();
    let mut ledger: Option<String> = None;
    let mut resume = false;
    let mut keep_going = false;
    let mut metrics_out: Option<String> = None;
    let mut store_flags = StoreFlags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--variant" => variant = it.next().cloned().unwrap_or_else(|| usage()),
            "--store" => store_flags.dir = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--no-store" => store_flags.disabled = true,
            "--inject" => {
                let spec = it.next().cloned().unwrap_or_else(|| usage());
                if !parse_store_fault(&spec, &mut store_flags.faults) {
                    eprintln!("padfa: corpus only injects store-* faults, got '{spec}'");
                    exit(2)
                }
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--spawn-threshold" => {
                spawn_threshold = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--max-steps" => {
                budget.max_steps = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--deadline-ms" => {
                budget.deadline_ms = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--strict" => budget.strict = true,
            "--ledger" => ledger = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--resume" => resume = true,
            "--keep-going" => keep_going = true,
            "--metrics-out" => metrics_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let mut opts = variant_options(&variant).with_budget(budget.to_budget());
    if let Some(t) = spawn_threshold {
        opts = opts.with_spawn_threshold(t);
    }
    let store = store_flags.open(&opts.budget);
    if let Some(s) = &store {
        drain_store_warnings(s); // surface open-time problems up front
    }

    let done: Vec<String> = match (&ledger, resume) {
        (Some(path), true) => {
            let names = ledger_names(path);
            trim_partial_ledger_line(path);
            names
        }
        _ => Vec::new(),
    };
    let mut ledger_file = ledger.as_ref().map(|path| {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(resume)
            .truncate(!resume)
            .write(true)
            .open(path)
            .unwrap_or_else(|e| {
                eprintln!("padfa: cannot open ledger {path}: {e}");
                exit(1)
            });
        std::io::BufWriter::new(f)
    });
    // Stamp fresh ledgers so rows stay attributable to a revision and
    // host. `--resume` scans only `{"name":"` prefixes, so the meta
    // line is invisible to it.
    if let (Some(f), false) = (&mut ledger_file, resume) {
        let meta = format!(
            "{{\"meta\":{{\"schema_version\":{SCHEMA_VERSION},\"git_rev\":\"{}\",\
             \"host\":\"{}\",\"variant\":\"{}\",\"jobs\":{jobs}}}}}",
            json_escape(&git_rev()),
            json_escape(&host_info()),
            json_escape(&variant),
        );
        if let Err(e) = writeln!(f, "{meta}") {
            eprintln!("padfa: cannot write ledger: {e}");
            exit(1)
        }
    }

    let corpus = padfa::suite::build_corpus();
    let total = corpus.len();
    let mut counts = [0usize; 4]; // ok, degraded, error, panic
    let mut first_failure: Option<i32> = None;
    // Winning-mechanism attribution per suite (the paper's table): how
    // many parallelized loops each technique won, plus the sequential
    // candidates pinned to a concrete blocker.
    let mut attribution: std::collections::BTreeMap<&'static str, ([u64; 5], u64)> =
        std::collections::BTreeMap::new();
    let aggregate = metrics_out
        .as_ref()
        .map(|_| padfa::analysis::MetricsRegistry::new());
    let started = std::time::Instant::now();
    let pending: Vec<&padfa::suite::BenchProgram> = corpus
        .iter()
        .filter(|bp| !done.iter().any(|n| n == bp.name))
        .collect();
    let skipped = total - pending.len();
    // Program-level fan-out (27 of 30 programs have one procedure, so
    // intra-program parallelism buys little here): up to `jobs` programs
    // run concurrently, each in its own single-threaded session against
    // the shared store. Rows come back in input order, so the ledger is
    // byte-identical to the sequential run.
    let results: Vec<(
        CorpusRow,
        Option<std::sync::Arc<padfa::analysis::MetricsRegistry>>,
    )> = padfa::analysis::par_map_jobs(jobs, &pending, |_, bp| {
        let t0 = std::time::Instant::now();
        // Each program runs behind its own unwind boundary: a panicking
        // program must not take the rest of the corpus down with it.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let reg = aggregate
                .as_ref()
                .map(|_| padfa::analysis::MetricsRegistry::new());
            let mut sess = padfa::analysis::AnalysisSession::new(opts.clone()).with_jobs(1);
            if let Some(r) = &reg {
                sess = sess.with_metrics(std::sync::Arc::clone(r));
            }
            if let Some(s) = &store {
                sess = sess.with_store(std::sync::Arc::clone(s));
            }
            let out = padfa::analysis::analyze_program_session(&bp.program, &sess);
            if out.is_ok() {
                sess.publish_metrics();
            }
            (out, reg)
        }));
        let ms = t0.elapsed().as_millis();
        let (run, reg) = match run {
            Ok((out, reg)) => (Ok(out), reg),
            Err(payload) => (Err(payload), None),
        };
        let row = match run {
            Ok(Ok((result, _))) => {
                let mut won = [0u64; 5];
                let mut blocked = 0u64;
                for r in &result.loops {
                    if let Some(w) = r.provenance.winner {
                        won[w as usize] += 1;
                    } else if r.not_candidate.is_none() && r.provenance.has_blocker() {
                        blocked += 1;
                    }
                }
                let outcome = if result.stats.degraded_procs > 0 {
                    "degraded"
                } else {
                    "ok"
                };
                CorpusRow {
                    name: bp.name.to_string(),
                    suite: bp.suite.label(),
                    outcome,
                    ms,
                    loops: result.loops.len(),
                    parallel: result.loops.iter().filter(|r| r.parallelized()).count(),
                    steps: result.stats.budget_steps,
                    peak_disjuncts: result.stats.peak_disjuncts,
                    peak_constraints: result.stats.peak_constraints,
                    degraded_procs: result.stats.degraded_procs,
                    limit_overflows: result.stats.limit_overflows,
                    won,
                    blocked,
                    error: None,
                }
            }
            Ok(Err(e)) => CorpusRow {
                name: bp.name.to_string(),
                suite: bp.suite.label(),
                outcome: "error",
                ms,
                loops: 0,
                parallel: 0,
                steps: 0,
                peak_disjuncts: 0,
                peak_constraints: 0,
                degraded_procs: 0,
                limit_overflows: 0,
                won: [0; 5],
                blocked: 0,
                error: Some(e.to_string()),
            },
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                CorpusRow {
                    name: bp.name.to_string(),
                    suite: bp.suite.label(),
                    outcome: "panic",
                    ms,
                    loops: 0,
                    parallel: 0,
                    steps: 0,
                    peak_disjuncts: 0,
                    peak_constraints: 0,
                    degraded_procs: 0,
                    limit_overflows: 0,
                    won: [0; 5],
                    blocked: 0,
                    error: Some(msg),
                }
            }
        };
        (row, reg)
    });
    if let Some(s) = &store {
        drain_store_warnings(s);
    }
    // Merge in input order: emission, counting, attribution, and the
    // metrics fold all see exactly the sequential order (and, without
    // --keep-going, stop at the first failure exactly as before — later
    // programs already ran, but their rows are not emitted).
    for (row, reg) in results {
        let idx = match row.outcome {
            "ok" => 0,
            "degraded" => 1,
            "error" => 2,
            _ => 3,
        };
        counts[idx] += 1;
        if idx <= 1 {
            // Fold this program's registry into the corpus-wide
            // aggregate: counters add up, except `peak.*`, which keeps
            // the per-program maximum.
            if let (Some(agg), Some(reg)) = (&aggregate, &reg) {
                for (k, v) in reg.counters_snapshot() {
                    // `store.*` counters are cumulative over the shared
                    // store; summing per-program snapshots would
                    // multiply-count them. The aggregate takes the
                    // store's final totals after the loop instead.
                    if k.starts_with("store.") {
                        continue;
                    }
                    let c = agg.counter(&k);
                    if k.starts_with("peak.") {
                        c.set(c.get().max(v));
                    } else {
                        c.add(v);
                    }
                }
            }
            let entry = attribution.entry(row.suite).or_default();
            for (slot, n) in entry.0.iter_mut().zip(row.won) {
                *slot += n;
            }
            entry.1 += row.blocked;
        }
        if idx >= 2 && first_failure.is_none() {
            first_failure = Some(match &row.error {
                _ if row.outcome == "panic" => 5,
                Some(msg) if msg.contains("work budget exhausted") => 4,
                _ => 5,
            });
        }
        println!(
            "{:<28} {:>9} {:>6} ms  {} loops, {} parallel{}",
            row.name,
            row.outcome,
            row.ms,
            row.loops,
            row.parallel,
            row.error
                .as_deref()
                .map(|e| format!("  ({e})"))
                .unwrap_or_default()
        );
        if let Some(f) = &mut ledger_file {
            if let Err(e) = writeln!(f, "{}", row.to_jsonl()) {
                eprintln!("padfa: cannot write ledger: {e}");
                exit(1)
            }
            // Flush per row so a crashed run leaves a usable ledger for
            // `--resume`.
            let _ = f.flush();
        }
        if idx >= 2 && !keep_going {
            break;
        }
    }
    if !attribution.is_empty() {
        println!("\nper-suite loop attribution (winning mechanism):");
        print!("{:<12}", "suite");
        for m in padfa::analysis::Mechanism::ALL {
            print!(" {:>12}", m.label());
        }
        println!(" {:>12}", "blocked");
        let mut totals = ([0u64; 5], 0u64);
        for (suite, (won, blocked)) in &attribution {
            print!("{suite:<12}");
            for (slot, n) in totals.0.iter_mut().zip(won) {
                *slot += n;
            }
            totals.1 += blocked;
            for n in won {
                print!(" {n:>12}");
            }
            println!(" {blocked:>12}");
        }
        print!("{:<12}", "total");
        for n in totals.0 {
            print!(" {n:>12}");
        }
        println!(" {:>12}", totals.1);
    }
    println!(
        "\ncorpus: {total} program(s): {} ok, {} degraded, {} error, {} panic{} in {:.1}s",
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        if skipped > 0 {
            format!(" ({skipped} skipped via --resume)")
        } else {
            String::new()
        },
        started.elapsed().as_secs_f64()
    );
    if let Some(s) = &store {
        s.flush();
        drain_store_warnings(s);
        let st = s.stats();
        println!(
            "store: {} hits, {} misses ({:.1}% hit rate), {} puts, {} loaded, {} quarantined",
            st.hits,
            st.misses,
            100.0 * st.hit_rate(),
            st.puts,
            st.loaded,
            st.quarantined
        );
        if st.degraded {
            println!("store: degraded — ran in-memory only");
        } else if st.writes_degraded {
            println!("store: persistence disabled mid-run; reads still served");
        }
        // The aggregate registry carries the store's final totals (the
        // per-program fold skips `store.*` — see above).
        if let Some(agg) = &aggregate {
            let pairs: [(&str, u64); 11] = [
                ("store.hits", st.hits),
                ("store.misses", st.misses),
                ("store.puts", st.puts),
                ("store.quarantined", st.quarantined),
                ("store.stale_segments", st.stale_segments),
                ("store.salvaged", st.salvaged),
                ("store.invalidated", st.invalidated),
                ("store.loaded", st.loaded),
                ("store.retries", st.retries),
                ("store.degraded", u64::from(st.degraded)),
                ("store.writes_degraded", u64::from(st.writes_degraded)),
            ];
            for (k, v) in pairs {
                agg.counter(k).set(v);
            }
        }
    }
    if let (Some(out_path), Some(agg)) = (&metrics_out, &aggregate) {
        let mut attr = String::from("{");
        for (i, (suite, (won, blocked))) in attribution.iter().enumerate() {
            if i > 0 {
                attr.push(',');
            }
            attr.push_str(&format!("\"{}\":{{", json_escape(suite)));
            for (j, m) in padfa::analysis::Mechanism::ALL.iter().enumerate() {
                attr.push_str(&format!("\"{}\":{},", m.label(), won[j]));
            }
            attr.push_str(&format!("\"blocked\":{blocked}}}"));
        }
        attr.push('}');
        let json = format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"git_rev\":\"{}\",\"host\":\"{}\",\
             \"variant\":\"{}\",\"jobs\":{jobs},\"programs\":{total},\
             \"attribution\":{attr},\"metrics\":{}}}",
            json_escape(&git_rev()),
            json_escape(&host_info()),
            json_escape(&variant),
            agg.snapshot_json()
        );
        if let Err(e) = std::fs::write(out_path, json) {
            eprintln!("padfa: cannot write metrics {out_path}: {e}");
            exit(1)
        }
        println!("metrics snapshot written to {out_path}");
    }
    match first_failure {
        Some(code) if !keep_going => exit(code),
        _ => {}
    }
}

/// Parse a `WORKER:STMT:KIND` fault-injection spec from `--inject`.
fn parse_fault(spec: &str) -> padfa::rt::FaultSpec {
    use padfa::rt::{ExecError, FaultKind, FaultSpec};
    fn bad(spec: &str) -> ! {
        eprintln!("padfa: bad --inject spec '{spec}' (want WORKER:STMT:panic|error|corrupt)");
        exit(2)
    }
    let parts: Vec<&str> = spec.split(':').collect();
    let [worker, at_stmt, kind] = parts[..] else {
        bad(spec)
    };
    let worker: usize = worker.parse().unwrap_or_else(|_| bad(spec));
    let at_stmt: u64 = at_stmt.parse().unwrap_or_else(|_| bad(spec));
    let kind = match kind {
        "panic" => FaultKind::Panic,
        "error" => FaultKind::Error(ExecError::DivisionByZero),
        "corrupt" => FaultKind::CorruptStamp,
        _ => bad(spec),
    };
    FaultSpec {
        worker,
        at_stmt,
        kind,
    }
}

fn cmd_run(args: &[String]) {
    let mut file = None;
    let mut workers = 4usize;
    let mut seq = false;
    let mut fuel: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut no_fallback = false;
    let mut faults = padfa::rt::FaultPlan::none();
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seq" => seq = true,
            "--fuel" => {
                fuel = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-fallback" => no_fallback = true,
            "--inject" => {
                let spec = it.next().unwrap_or_else(|| usage());
                faults = faults.with(parse_fault(spec));
            }
            _ if file.is_none() => file = Some(a.clone()),
            _ => rest.push(a.clone()),
        }
    }
    let path = file.unwrap_or_else(|| usage());
    let prog = load(&path);
    let args = entry_args(&prog, &rest);
    let mut cfg = if seq || workers <= 1 {
        RunConfig::sequential()
    } else {
        let result = match analyze_program(&prog, &Options::predicated()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("padfa: {path}: {e}");
                exit(exit_code(&e))
            }
        };
        RunConfig::parallel(workers, ExecPlan::from_analysis(&prog, &result))
    };
    cfg.fuel = fuel;
    if let Some(ms) = deadline_ms {
        cfg = cfg.with_deadline(std::time::Duration::from_millis(ms));
    }
    cfg.faults = faults;
    if no_fallback {
        cfg = cfg.no_fallback();
    }
    match run_main(&prog, args, &cfg) {
        Ok(out) => {
            for v in &out.printed {
                match v {
                    Value::Int(x) => println!("{x}"),
                    Value::Real(x) => println!("{x}"),
                }
            }
            eprintln!(
                "-- {} statements, {} iterations, {} parallel region(s), \
                 {} fallback(s), tests {}/{} passed",
                out.total_work,
                out.stats.iterations,
                out.stats.parallel_loops,
                out.stats.fallbacks,
                out.stats.tests_passed,
                out.stats.tests_passed + out.stats.tests_failed,
            );
            if out.stats.fallbacks > 0 {
                eprintln!(
                    "-- recovered from {} worker failure(s) ({} panic(s)) by sequential re-run",
                    out.stats.fallbacks, out.stats.worker_panics,
                );
            }
        }
        Err(e) => {
            eprintln!("padfa: execution failed: {e}");
            exit(1)
        }
    }
}

fn cmd_elpd(args: &[String]) {
    let mut fuel: Option<u64> = None;
    let mut pos: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fuel" => {
                fuel = Some(
                    it.next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => pos.push(a.clone()),
        }
    }
    if pos.len() < 2 {
        usage()
    }
    let prog = load(&pos[0]);
    let target = &pos[1];
    let rest = &pos[2..];
    let loop_id = padfa::ir::visit::find_loop_by_label(&prog, target)
        .map(|(_, l)| l.id)
        .or_else(|| {
            target
                .parse::<u32>()
                .ok()
                .map(LoopId)
                .filter(|id| padfa::ir::visit::find_loop(&prog, *id).is_some())
        })
        .unwrap_or_else(|| {
            eprintln!("padfa: no loop labeled or numbered '{target}'");
            exit(1)
        });
    let argv = entry_args(&prog, rest);
    match padfa::rt::elpd::elpd_inspect_budgeted(&prog, argv, loop_id, &[], fuel) {
        Ok(v) => {
            println!(
                "loop {target}: parallelizable={} privatization={} ({} invocation(s), {} iteration(s))",
                v.parallelizable, v.needs_privatization, v.invocations, v.iterations
            );
            let mut arrays: Vec<_> = v.arrays.iter().collect();
            arrays.sort_by_key(|(name, _)| (*name).clone());
            for (name, class) in arrays {
                println!("  {name}: {class:?}");
            }
            for s in &v.scalar_deps {
                println!("  scalar {s}: flow dependence");
            }
        }
        Err(e) => {
            eprintln!("padfa: inspection failed: {e}");
            exit(1)
        }
    }
}

fn cmd_fmt(args: &[String]) {
    if args.len() != 1 {
        usage()
    }
    let prog = load(&args[0]);
    print!("{}", padfa::ir::pretty::program_to_string(&prog));
}

/// Set by the SIGINT/SIGTERM handlers; `cmd_serve` polls it and drains.
static SHUTDOWN_REQUESTED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

extern "C" fn request_shutdown(_sig: i32) {
    SHUTDOWN_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Install drain-on-signal handlers via libc's `signal` (std already
/// links libc; no new dependency). The handler only flips an atomic —
/// async-signal-safe by construction.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, request_shutdown);
        signal(SIGTERM, request_shutdown);
    }
}

/// Parse a service-layer `--inject` spec (`worker-panic[:K]`,
/// `torn-response[:K]`, `slow-request[:K[:MS]]`, `recorder-overflow[:K]`,
/// `service-seeded:SEED:COUNT`). Returns false for non-service specs so
/// `store-*` can be tried next.
fn parse_service_fault(spec: &str, plan: &mut padfa::rt::ServiceFaultPlan) -> bool {
    use padfa::rt::{ServiceFaultKind, ServiceFaultSpec};
    let bad = || -> ! {
        eprintln!(
            "padfa: bad --inject spec '{spec}' (want worker-panic[:K], torn-response[:K], \
             slow-request[:K[:MS]], recorder-overflow[:K], service-seeded:SEED:COUNT, \
             or a store-* fault)"
        );
        exit(2)
    };
    let mut parts = spec.split(':');
    let kind = match parts.next().unwrap_or("") {
        "worker-panic" => ServiceFaultKind::WorkerPanic,
        "torn-response" => ServiceFaultKind::TornResponse,
        "recorder-overflow" => ServiceFaultKind::RecorderOverflow,
        "slow-request" => {
            // slow-request[:K[:MS]] — K-th admitted request sleeps MS
            // milliseconds (default: just over the default slow-request
            // threshold, so the forensics path fires out of the box).
            let at_request: u64 = match parts.next() {
                None => 1,
                Some(n) => n.parse().unwrap_or_else(|_| bad()),
            };
            let ms: u64 = match parts.next() {
                None => 1500,
                Some(n) if parts.next().is_none() => n.parse().unwrap_or_else(|_| bad()),
                Some(_) => bad(),
            };
            plan.faults.push(ServiceFaultSpec {
                at_request,
                kind: ServiceFaultKind::SlowRequest { ms },
            });
            return true;
        }
        "service-seeded" => {
            let (Some(seed), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
                bad()
            };
            let seed: u64 = seed.parse().unwrap_or_else(|_| bad());
            let count: usize = count.parse().unwrap_or_else(|_| bad());
            // Draw from the first 32 admissions — early enough to hit
            // any realistic smoke run.
            for f in padfa::rt::ServiceFaultPlan::seeded(seed, count, 32).faults {
                plan.faults.push(f);
            }
            return true;
        }
        _ => return false,
    };
    let at_request = match parts.next() {
        None => 1,
        Some(n) if parts.next().is_none() => n.parse().unwrap_or_else(|_| bad()),
        Some(_) => bad(),
    };
    plan.faults.push(ServiceFaultSpec { at_request, kind });
    true
}

/// `padfa serve`: run the analysis as a long-lived HTTP daemon until
/// SIGINT/SIGTERM, then drain gracefully and exit 0.
fn cmd_serve(args: &[String]) {
    use padfa::service::{Server, ServiceDeps, ServicePolicy};
    let mut addr = "127.0.0.1:7117".to_string();
    let mut policy = ServicePolicy::default();
    let mut store_flags = StoreFlags::default();
    let mut faults = padfa::rt::ServiceFaultPlan::none();
    let mut it = args.iter();
    let parse_u64 =
        |w: Option<&String>| -> u64 { w.and_then(|w| w.parse().ok()).unwrap_or_else(|| usage()) };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().cloned().unwrap_or_else(|| usage()),
            "--workers" => policy.workers = parse_u64(it.next()) as usize,
            "--queue" => policy.queue_depth = parse_u64(it.next()) as usize,
            "--jobs" => policy.jobs_per_request = parse_u64(it.next()) as usize,
            "--default-max-steps" => policy.default_max_steps = Some(parse_u64(it.next())),
            "--max-steps-ceiling" => policy.max_steps_ceiling = Some(parse_u64(it.next())),
            "--default-deadline-ms" => policy.default_deadline_ms = Some(parse_u64(it.next())),
            "--deadline-ms-ceiling" => policy.deadline_ms_ceiling = Some(parse_u64(it.next())),
            "--read-timeout-ms" => {
                policy.read_timeout = std::time::Duration::from_millis(parse_u64(it.next()))
            }
            "--write-timeout-ms" => {
                policy.write_timeout = std::time::Duration::from_millis(parse_u64(it.next()))
            }
            "--max-body-bytes" => policy.max_body_bytes = parse_u64(it.next()) as usize,
            "--drain-deadline-ms" => {
                policy.drain_deadline = std::time::Duration::from_millis(parse_u64(it.next()))
            }
            "--slow-ms" => policy.slow_request_ms = parse_u64(it.next()),
            "--slow-log" => {
                policy.slow_log = Some(std::path::PathBuf::from(
                    it.next().cloned().unwrap_or_else(|| usage()),
                ))
            }
            "--debug-ring" => policy.debug_ring = parse_u64(it.next()) as usize,
            "--flight-dump-dir" => {
                policy.flight_dump_dir = Some(std::path::PathBuf::from(
                    it.next().cloned().unwrap_or_else(|| usage()),
                ))
            }
            "--store" => store_flags.dir = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--no-store" => store_flags.disabled = true,
            "--inject" => {
                let spec = it.next().cloned().unwrap_or_else(|| usage());
                if !parse_service_fault(&spec, &mut faults)
                    && !parse_store_fault(&spec, &mut store_flags.faults)
                {
                    eprintln!("padfa: unknown --inject spec '{spec}'");
                    exit(2)
                }
            }
            _ => usage(),
        }
    }
    install_signal_handlers();
    // Per-request budgets are applied by the server from headers and
    // policy; the store itself is always eligible here (budgeted
    // requests bypass it per request, not per process).
    let store = store_flags.open(&WorkBudget::UNLIMITED);
    let store_desc = match (&store, &store_flags.dir) {
        (Some(_), Some(dir)) => dir.clone(),
        _ => "none".to_string(),
    };
    let deps = ServiceDeps {
        store,
        faults,
        git_rev: git_rev(),
        ..ServiceDeps::default()
    };
    let workers = policy.workers.max(1);
    let queue = policy.queue_depth.max(1);
    let server = match Server::start(&addr, policy, deps) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("padfa: cannot bind {addr}: {e}");
            exit(1)
        }
    };
    // Machine-parseable banner (CI reads the resolved ephemeral port).
    println!(
        "padfa: serving on http://{} (workers={workers} queue={queue} store={store_desc})",
        server.addr()
    );
    let _ = std::io::stdout().flush();
    while !SHUTDOWN_REQUESTED.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("padfa: draining...");
    let report = server.shutdown();
    eprintln!(
        "padfa: drained (admitted={} completed={} shed={} drained_in_queue={} panics={} clean={})",
        report.admitted,
        report.completed,
        report.shed,
        report.drained_in_queue,
        report.panics,
        report.clean
    );
    if let Some(dump) = &report.flight_dump {
        eprintln!("padfa: unclean drain; flight ring dumped to {dump}");
    }
    exit(if report.clean { 0 } else { 1 })
}

/// `padfa promcheck [FILE]`: validate a Prometheus text exposition (a
/// scrape of `/metrics`) with the in-repo checker. Reads stdin when no
/// file is given. Exit 0 on a clean exposition, 1 with the violation
/// list otherwise.
fn cmd_promcheck(args: &[String]) {
    let text = match args {
        [] => {
            let mut buf = String::new();
            if let Err(e) = std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf) {
                eprintln!("padfa: cannot read stdin: {e}");
                exit(3)
            }
            buf
        }
        [path] => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("padfa: cannot read {path}: {e}");
            exit(3)
        }),
        _ => usage(),
    };
    match padfa::service::check_exposition(&text) {
        Ok(()) => {
            let samples = text
                .lines()
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .count();
            println!("promcheck: ok ({samples} sample(s))");
        }
        Err(violations) => {
            for v in &violations {
                eprintln!("promcheck: {v}");
            }
            eprintln!("promcheck: {} violation(s)", violations.len());
            exit(1)
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "analyze" => cmd_analyze(rest),
            "explain" => cmd_explain(rest),
            "run" => cmd_run(rest),
            "elpd" => cmd_elpd(rest),
            "fmt" => cmd_fmt(rest),
            "corpus" => cmd_corpus(rest),
            "serve" => cmd_serve(rest),
            "promcheck" => cmd_promcheck(rest),
            _ => usage(),
        },
        None => usage(),
    }
}
