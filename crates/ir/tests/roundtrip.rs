//! Randomized test: any well-formed AST pretty-prints to text that
//! parses back to the identical AST (the printer and parser are exact
//! inverses on the IR's range). Programs are generated from fixed seeds
//! so every run checks the same ASTs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use padfa_ir::ast::*;
use padfa_ir::build;
use padfa_ir::{parse::parse_program, pretty};

fn add_one(e: Expr) -> Expr {
    Expr::Add(Box::new(e), Box::new(Expr::int(1)))
}

/// `abs(e) % m + 1`: the in-bounds index shape shared by the generators.
fn clamped_index(e: Expr, m: i64) -> Expr {
    add_one(Expr::Mod(
        Box::new(Expr::Call(Intrinsic::Abs, vec![e])),
        Box::new(Expr::int(m)),
    ))
}

/// Random integer-valued expressions over `n`, `x`, `i` and `k1[...]`.
fn int_expr(rng: &mut StdRng, depth: u32) -> Expr {
    if depth > 0 && rng.gen_bool(0.6) {
        return match rng.gen_range(0u32..5) {
            0 => Expr::Add(
                Box::new(int_expr(rng, depth - 1)),
                Box::new(int_expr(rng, depth - 1)),
            ),
            1 => Expr::Sub(
                Box::new(int_expr(rng, depth - 1)),
                Box::new(int_expr(rng, depth - 1)),
            ),
            2 => Expr::Mul(
                Box::new(int_expr(rng, depth - 1)),
                Box::new(int_expr(rng, depth - 1)),
            ),
            3 => Expr::Neg(Box::new(int_expr(rng, depth - 1))),
            _ => Expr::elem("k1", vec![clamped_index(int_expr(rng, depth - 1), 8)]),
        };
    }
    if rng.gen_bool(0.5) {
        Expr::int(rng.gen_range(-20i64..=20))
    } else {
        Expr::scalar(["n", "x", "i"][rng.gen_range(0usize..3)])
    }
}

/// Random real-valued expressions.
fn real_expr(rng: &mut StdRng, depth: u32) -> Expr {
    if depth > 0 && rng.gen_bool(0.6) {
        return match rng.gen_range(0u32..4) {
            0 => Expr::Add(
                Box::new(real_expr(rng, depth - 1)),
                Box::new(real_expr(rng, depth - 1)),
            ),
            1 => Expr::Mul(
                Box::new(real_expr(rng, depth - 1)),
                Box::new(real_expr(rng, depth - 1)),
            ),
            2 => Expr::Call(
                Intrinsic::Sqrt,
                vec![Expr::Call(Intrinsic::Abs, vec![real_expr(rng, depth - 1)])],
            ),
            _ => Expr::Call(
                Intrinsic::Max,
                vec![real_expr(rng, depth - 1), real_expr(rng, depth - 1)],
            ),
        };
    }
    match rng.gen_range(0u32..3) {
        0 => Expr::real(rng.gen_range(-100i64..=100) as f64 * 0.25),
        1 => Expr::scalar("r"),
        _ => Expr::elem("a1", vec![clamped_index(int_expr(rng, 1), 16)]),
    }
}

/// Random boolean conditions.
fn bool_expr(rng: &mut StdRng, depth: u32) -> BoolExpr {
    if depth > 0 && rng.gen_bool(0.5) {
        return match rng.gen_range(0u32..3) {
            0 => BoolExpr::and(bool_expr(rng, depth - 1), bool_expr(rng, depth - 1)),
            1 => BoolExpr::or(bool_expr(rng, depth - 1), bool_expr(rng, depth - 1)),
            _ => BoolExpr::not(bool_expr(rng, depth - 1)),
        };
    }
    let op = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][rng.gen_range(0usize..6)];
    BoolExpr::Cmp(op, int_expr(rng, 1), int_expr(rng, 1))
}

/// Random statements (loop bodies reference the index `i`).
fn stmt(rng: &mut StdRng, depth: u32) -> Stmt {
    if depth > 0 && rng.gen_bool(0.4) {
        return match rng.gen_range(0u32..3) {
            0 => {
                let c = bool_expr(rng, 2);
                let n = rng.gen_range(1usize..3);
                build::if_then(c, (0..n).map(|_| stmt(rng, depth - 1)).collect())
            }
            1 => {
                let c = bool_expr(rng, 2);
                build::if_else(c, vec![stmt(rng, depth - 1)], vec![stmt(rng, depth - 1)])
            }
            _ => {
                let hi = rng.gen_range(1i64..=8);
                let n = rng.gen_range(1usize..3);
                build::for_loop(
                    "j",
                    Expr::int(1),
                    Expr::int(hi),
                    (0..n).map(|_| stmt(rng, depth - 1)).collect(),
                )
            }
        };
    }
    match rng.gen_range(0u32..3) {
        0 => build::assign("r", real_expr(rng, 2)),
        1 => build::assign("x", int_expr(rng, 2)),
        _ => build::store(
            "a1",
            vec![clamped_index(int_expr(rng, 1), 16)],
            real_expr(rng, 1),
        ),
    }
}

fn random_program(rng: &mut StdRng) -> Program {
    let n = rng.gen_range(1usize..6);
    let stmts = (0..n).map(|_| stmt(rng, 2)).collect();
    build::program(vec![build::ProcBuilder::new("main")
        .int_param("n")
        .array("a1", vec![Expr::int(16)])
        .int_array("k1", vec![Expr::int(8)])
        .int_var("x")
        .real_var("r")
        .stmt(build::for_loop("i", Expr::int(1), Expr::scalar("n"), stmts))
        .build()])
}

const CASES: u64 = 96;

#[test]
fn pretty_parse_round_trip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x707 + seed);
        let prog = random_program(&mut rng);
        // The generated AST must resolve (all names declared).
        if padfa_ir::visit::resolve(&prog).is_err() {
            continue;
        }
        let text = pretty::program_to_string(&prog);
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n{text}"));
        assert_eq!(prog, reparsed, "round trip changed the AST:\n{}", text);
    }
}

#[test]
fn round_trip_is_idempotent() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1de0 + seed);
        let prog = random_program(&mut rng);
        if padfa_ir::visit::resolve(&prog).is_err() {
            continue;
        }
        let once = pretty::program_to_string(&prog);
        let twice = pretty::program_to_string(&parse_program(&once).unwrap());
        assert_eq!(once, twice);
    }
}

/// `k1` is only read through `abs(e) % 8 + 1`, so indices stay in
/// bounds; sanity-check that the generator produces runnable-looking
/// shapes at all (spot check, not a property).
#[test]
fn generator_produces_loops() {
    let mut rng = StdRng::seed_from_u64(0);
    let prog = random_program(&mut rng);
    assert_eq!(prog.procedures.len(), 1);
    assert!(padfa_ir::visit::count_loops(&prog) >= 1);
}
