//! Property test: any well-formed AST pretty-prints to text that parses
//! back to the identical AST (the printer and parser are exact inverses
//! on the IR's range).

use proptest::prelude::*;

use padfa_ir::ast::*;
use padfa_ir::build;
use padfa_ir::{parse::parse_program, pretty};

/// Random integer-valued expressions over `n`, `x`, `i` and `k1[...]`.
fn int_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-20i64..=20).prop_map(Expr::int),
        prop::sample::select(vec!["n", "x", "i"]).prop_map(Expr::scalar),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
            inner
                .clone()
                .prop_map(|a| Expr::elem("k1", vec![Expr::Mod(
                    Box::new(Expr::Call(Intrinsic::Abs, vec![a])),
                    Box::new(Expr::int(8)),
                )
                .into_add_one()])),
        ]
    })
    .boxed()
}

trait AddOne {
    fn into_add_one(self) -> Expr;
}
impl AddOne for Expr {
    fn into_add_one(self) -> Expr {
        Expr::Add(Box::new(self), Box::new(Expr::int(1)))
    }
}

/// Random real-valued expressions.
fn real_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-100i64..=100).prop_map(|v| Expr::real(v as f64 * 0.25)),
        Just(Expr::scalar("r")),
        int_expr(1).prop_map(|e| Expr::elem(
            "a1",
            vec![Expr::Add(
                Box::new(Expr::Mod(
                    Box::new(Expr::Call(Intrinsic::Abs, vec![e])),
                    Box::new(Expr::int(16)),
                )),
                Box::new(Expr::int(1)),
            )]
        )),
    ];
    leaf.prop_recursive(depth, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Call(Intrinsic::Sqrt, vec![
                Expr::Call(Intrinsic::Abs, vec![a])
            ])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Call(
                Intrinsic::Max,
                vec![a, b]
            )),
        ]
    })
    .boxed()
}

/// Random boolean conditions.
fn bool_expr() -> BoxedStrategy<BoolExpr> {
    let cmp = (
        prop::sample::select(vec![
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ]),
        int_expr(1),
        int_expr(1),
    )
        .prop_map(|(op, a, b)| BoolExpr::Cmp(op, a, b));
    cmp.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BoolExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BoolExpr::or(a, b)),
            inner.clone().prop_map(BoolExpr::not),
        ]
    })
    .boxed()
}

/// Random statements (loop bodies reference the index `i`).
fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let assign = prop_oneof![
        real_expr(2).prop_map(|e| build::assign("r", e)),
        int_expr(2).prop_map(|e| build::assign("x", e)),
        (int_expr(1), real_expr(1)).prop_map(|(i, e)| build::store(
            "a1",
            vec![Expr::Add(
                Box::new(Expr::Mod(
                    Box::new(Expr::Call(Intrinsic::Abs, vec![i])),
                    Box::new(Expr::int(16)),
                )),
                Box::new(Expr::int(1)),
            )],
            e
        )),
    ];
    assign
        .prop_recursive(depth, 10, 3, |inner| {
            prop_oneof![
                (bool_expr(), prop::collection::vec(inner.clone(), 1..3))
                    .prop_map(|(c, body)| build::if_then(c, body)),
                (
                    bool_expr(),
                    prop::collection::vec(inner.clone(), 1..2),
                    prop::collection::vec(inner.clone(), 1..2)
                )
                    .prop_map(|(c, t, e)| build::if_else(c, t, e)),
                (1i64..=8, prop::collection::vec(inner.clone(), 1..3)).prop_map(
                    |(hi, body)| build::for_loop("j", Expr::int(1), Expr::int(hi), body)
                ),
            ]
        })
        .boxed()
}

fn program_strategy() -> BoxedStrategy<Program> {
    prop::collection::vec(stmt(2), 1..6)
        .prop_map(|stmts| {
            build::program(vec![build::ProcBuilder::new("main")
                .int_param("n")
                .array("a1", vec![Expr::int(16)])
                .int_array("k1", vec![Expr::int(8)])
                .int_var("x")
                .real_var("r")
                .stmt(build::for_loop(
                    "i",
                    Expr::int(1),
                    Expr::scalar("n"),
                    stmts,
                ))
                .build()])
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pretty_parse_round_trip(prog in program_strategy()) {
        // The generated AST must resolve (all names declared).
        prop_assume!(padfa_ir::visit::resolve(&prog).is_ok());
        let text = pretty::program_to_string(&prog);
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n{text}"));
        prop_assert_eq!(&prog, &reparsed, "round trip changed the AST:\n{}", text);
    }

    #[test]
    fn round_trip_is_idempotent(prog in program_strategy()) {
        prop_assume!(padfa_ir::visit::resolve(&prog).is_ok());
        let once = pretty::program_to_string(&prog);
        let twice = pretty::program_to_string(&parse_program(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}

/// `k1` is only read through `abs(e) % 8 + 1`, so indices stay in
/// bounds; sanity-check that the generator produces runnable-looking
/// shapes at all (spot check, not a property).
#[test]
fn generator_produces_loops() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let tree = program_strategy().new_tree(&mut runner).unwrap();
    let prog = tree.current();
    assert_eq!(prog.procedures.len(), 1);
    assert!(padfa_ir::visit::count_loops(&prog) >= 1);
}
