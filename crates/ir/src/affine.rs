//! Affine extraction: the bridge from IR expressions into the
//! linear-inequality world of `padfa-omega`.

use crate::ast::{BoolExpr, CmpOp, Expr};
use padfa_omega::{Constraint, LinExpr};

/// Convert an integer expression to a linear expression over its scalar
/// variables, if it is affine. Multiplication is allowed only when one
/// side folds to a constant; `/`, `%`, reals, array reads, and intrinsic
/// calls are not affine.
pub fn to_linexpr(e: &Expr) -> Option<LinExpr> {
    match e {
        Expr::IntLit(v) => Some(LinExpr::constant(*v)),
        Expr::RealLit(_) => None,
        Expr::Scalar(v) => Some(LinExpr::var(*v)),
        Expr::Elem(..) => None,
        Expr::Add(a, b) => Some(to_linexpr(a)? + to_linexpr(b)?),
        Expr::Sub(a, b) => Some(to_linexpr(a)? - to_linexpr(b)?),
        Expr::Mul(a, b) => {
            let la = to_linexpr(a)?;
            let lb = to_linexpr(b)?;
            if la.is_const() {
                Some(lb.scaled(la.konst()))
            } else if lb.is_const() {
                Some(la.scaled(lb.konst()))
            } else {
                None
            }
        }
        Expr::Div(a, b) => {
            // Exact constant division only (e.g. `4 * n / 2`).
            let la = to_linexpr(a)?;
            let lb = to_linexpr(b)?;
            if lb.is_const() && lb.konst() != 0 {
                let d = lb.konst();
                let mut ok = la.konst() % d == 0;
                for (_, c) in la.terms() {
                    ok &= c % d == 0;
                }
                if ok {
                    return Some(la.exact_div(d));
                }
            }
            None
        }
        Expr::Mod(..) => None,
        Expr::Neg(a) => Some(-to_linexpr(a)?),
        Expr::Call(..) => None,
    }
}

/// A conjunction of linear constraints equivalent to a boolean condition,
/// when one exists (no disjunction, all comparisons affine).
pub fn cond_to_constraints(b: &BoolExpr) -> Option<Vec<Constraint>> {
    let dnf = cond_to_dnf(b, 1)?;
    dnf.into_iter().next()
}

/// Disjunctive normal form of an affine condition: a union of
/// constraint conjunctions, capped at `max_disjuncts` (returns `None`
/// above the cap or when any atom is non-affine).
pub fn cond_to_dnf(b: &BoolExpr, max_disjuncts: usize) -> Option<Vec<Vec<Constraint>>> {
    fn cmp_to_constraints(op: CmpOp, a: &Expr, b: &Expr) -> Option<Vec<Vec<Constraint>>> {
        let la = to_linexpr(a)?;
        let lb = to_linexpr(b)?;
        Some(match op {
            CmpOp::Eq => vec![vec![Constraint::eq(la, lb)]],
            CmpOp::Le => vec![vec![Constraint::leq(la, lb)]],
            CmpOp::Lt => vec![vec![Constraint::lt(la, lb)]],
            CmpOp::Ge => vec![vec![Constraint::geq(la, lb)]],
            CmpOp::Gt => vec![vec![Constraint::gt(la, lb)]],
            // a != b over the integers is (a < b) or (a > b).
            CmpOp::Ne => vec![
                vec![Constraint::lt(la.clone(), lb.clone())],
                vec![Constraint::gt(la, lb)],
            ],
        })
    }

    fn go(b: &BoolExpr, neg: bool, cap: usize) -> Option<Vec<Vec<Constraint>>> {
        match b {
            BoolExpr::Lit(v) => {
                if *v != neg {
                    Some(vec![vec![]]) // true: one empty conjunction
                } else {
                    Some(vec![]) // false: empty disjunction
                }
            }
            BoolExpr::Cmp(op, a, c) => {
                let op = if neg { op.negate() } else { *op };
                cmp_to_constraints(op, a, c)
            }
            BoolExpr::And(a, c) if !neg => conj(go(a, false, cap)?, go(c, false, cap)?, cap),
            BoolExpr::Or(a, c) if !neg => {
                let mut l = go(a, false, cap)?;
                let r = go(c, false, cap)?;
                l.extend(r);
                if l.len() > cap {
                    return None;
                }
                Some(l)
            }
            // De Morgan.
            BoolExpr::And(a, c) => {
                let mut l = go(a, true, cap)?;
                let r = go(c, true, cap)?;
                l.extend(r);
                if l.len() > cap {
                    return None;
                }
                Some(l)
            }
            BoolExpr::Or(a, c) => conj(go(a, true, cap)?, go(c, true, cap)?, cap),
            BoolExpr::Not(a) => go(a, !neg, cap),
        }
    }

    fn conj(
        l: Vec<Vec<Constraint>>,
        r: Vec<Vec<Constraint>>,
        cap: usize,
    ) -> Option<Vec<Vec<Constraint>>> {
        let mut out = Vec::new();
        for a in &l {
            for b in &r {
                let mut c = a.clone();
                c.extend(b.iter().cloned());
                out.push(c);
                if out.len() > cap {
                    return None;
                }
            }
        }
        Some(out)
    }

    go(b, false, max_disjuncts)
}

/// Logical negation of a condition, pushed through comparisons.
pub fn negate(b: &BoolExpr) -> BoolExpr {
    match b {
        BoolExpr::Lit(v) => BoolExpr::Lit(!v),
        BoolExpr::Cmp(op, a, c) => BoolExpr::Cmp(op.negate(), a.clone(), c.clone()),
        BoolExpr::And(a, c) => BoolExpr::or(negate(a), negate(c)),
        BoolExpr::Or(a, c) => BoolExpr::and(negate(a), negate(c)),
        BoolExpr::Not(a) => (**a).clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_bool_expr, parse_expr};
    use padfa_omega::Var;

    #[test]
    fn affine_extraction() {
        let e = parse_expr("2 * i + n - 3").unwrap();
        let l = to_linexpr(&e).unwrap();
        assert_eq!(l.coeff(Var::new("i")), 2);
        assert_eq!(l.coeff(Var::new("n")), 1);
        assert_eq!(l.konst(), -3);
    }

    #[test]
    fn non_affine_rejected() {
        assert!(to_linexpr(&parse_expr("i * j").unwrap()).is_none());
        assert!(to_linexpr(&parse_expr("i % 2").unwrap()).is_none());
        assert!(to_linexpr(&parse_expr("a[i]").unwrap()).is_none());
        assert!(to_linexpr(&parse_expr("sqrt(i)").unwrap()).is_none());
    }

    #[test]
    fn exact_constant_division() {
        let l = to_linexpr(&parse_expr("(4 * n + 8) / 2").unwrap()).unwrap();
        assert_eq!(l.coeff(Var::new("n")), 2);
        assert_eq!(l.konst(), 4);
        assert!(to_linexpr(&parse_expr("n / 2").unwrap()).is_none());
    }

    #[test]
    fn simple_conjunction() {
        let b = parse_bool_expr("i >= 1 and i <= n").unwrap();
        let cs = cond_to_constraints(&b).unwrap();
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn disjunction_needs_dnf() {
        let b = parse_bool_expr("i < 1 or i > n").unwrap();
        assert!(cond_to_constraints(&b).is_none());
        let dnf = cond_to_dnf(&b, 4).unwrap();
        assert_eq!(dnf.len(), 2);
    }

    #[test]
    fn ne_splits() {
        let b = parse_bool_expr("i != j").unwrap();
        let dnf = cond_to_dnf(&b, 4).unwrap();
        assert_eq!(dnf.len(), 2);
    }

    #[test]
    fn negation_through_not() {
        let b = parse_bool_expr("not (i <= n)").unwrap();
        let cs = cond_to_constraints(&b).unwrap();
        assert_eq!(cs.len(), 1);
        // i > n, i.e. i - n - 1 >= 0.
        let env = |v: Var| {
            if v == Var::new("i") {
                Some(5)
            } else if v == Var::new("n") {
                Some(4)
            } else {
                None
            }
        };
        assert_eq!(cs[0].eval(&env), Some(true));
    }

    #[test]
    fn de_morgan_negate() {
        let b = parse_bool_expr("x > 0 and y > 0").unwrap();
        let n = negate(&b);
        assert!(matches!(n, BoolExpr::Or(..)));
    }

    #[test]
    fn dnf_cap_respected() {
        // Each `!=` doubles the disjunct count: 2^3 = 8 > cap 4.
        let b = parse_bool_expr("i != 1 and j != 2 and k != 3").unwrap();
        assert!(cond_to_dnf(&b, 4).is_none());
        assert!(cond_to_dnf(&b, 8).is_some());
    }

    #[test]
    fn non_affine_condition_rejected() {
        let b = parse_bool_expr("a[i] > 0.0").unwrap();
        assert!(cond_to_dnf(&b, 4).is_none());
    }
}
