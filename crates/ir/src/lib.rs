//! # padfa-ir
//!
//! The program representation consumed by the predicated array data-flow
//! analysis: a mini-Fortran abstract syntax tree that doubles as the
//! hierarchical *region graph* of the SUIF framework (Hall et al.): a
//! program region is a basic block, an `if`, a loop body, a loop, a
//! procedure call, or a procedure body — all of which appear directly as
//! nested [`ast::Stmt`] / [`ast::Block`] structure here.
//!
//! The crate provides:
//!
//! * [`ast`] — expressions, statements, procedures, programs;
//! * [`parse`] — a lexer + recursive-descent parser for the textual
//!   mini-Fortran surface syntax (see crate examples);
//! * [`build`] — a programmatic builder API;
//! * [`affine`] — extraction of linear expressions over loop indices and
//!   symbolic variables, the bridge into `padfa-omega`;
//! * [`pretty`] — a round-trippable pretty printer;
//! * [`visit`] — traversal helpers (loop enumeration, nesting).
//!
//! ## Surface syntax
//!
//! ```text
//! proc smooth(n: int, a: array[100]) {
//!   var t: real;
//!   for@L1 i = 2 to n {
//!     a[i] = a[i-1] * 0.5;
//!   }
//! }
//! ```
//!
//! ```
//! let src = "proc p(n: int, a: array[100]) { for i = 1 to n { a[i] = 0.0; } }";
//! let prog = padfa_ir::parse::parse_program(src).unwrap();
//! assert_eq!(prog.procedures.len(), 1);
//! assert_eq!(padfa_ir::visit::count_loops(&prog), 1);
//! ```

pub mod affine;
pub mod ast;
pub mod build;
// The parser is the input boundary: every malformed program must come
// back as a spanned `ParseError`, never a panic.
#[cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
pub mod parse;
pub mod pretty;
pub mod testgen;
pub mod visit;

pub use ast::{
    ArrayDecl, Block, BoolExpr, CmpOp, Expr, Intrinsic, LValue, Loop, LoopId, Param, ParamTy,
    Procedure, Program, ScalarTy, Stmt,
};
pub use padfa_omega::Var;
