//! Programmatic builder API for constructing programs without source
//! text. The benchmark corpus generator uses this interface.

use crate::ast::*;
use padfa_omega::Var;

/// Fluent builder for a [`Procedure`].
pub struct ProcBuilder {
    name: String,
    params: Vec<Param>,
    arrays: Vec<ArrayDecl>,
    scalars: Vec<ScalarDecl>,
    stmts: Vec<Stmt>,
}

impl ProcBuilder {
    pub fn new(name: &str) -> ProcBuilder {
        ProcBuilder {
            name: name.to_string(),
            params: Vec::new(),
            arrays: Vec::new(),
            scalars: Vec::new(),
            stmts: Vec::new(),
        }
    }

    pub fn int_param(mut self, name: &str) -> Self {
        self.params.push(Param {
            name: Var::new(name),
            ty: ParamTy::Scalar(ScalarTy::Int),
        });
        self
    }

    pub fn real_param(mut self, name: &str) -> Self {
        self.params.push(Param {
            name: Var::new(name),
            ty: ParamTy::Scalar(ScalarTy::Real),
        });
        self
    }

    pub fn array_param(mut self, name: &str, dims: Vec<Expr>) -> Self {
        self.params.push(Param {
            name: Var::new(name),
            ty: ParamTy::Array {
                dims,
                ty: ScalarTy::Real,
            },
        });
        self
    }

    pub fn array(mut self, name: &str, dims: Vec<Expr>) -> Self {
        self.arrays.push(ArrayDecl {
            name: Var::new(name),
            dims,
            ty: ScalarTy::Real,
        });
        self
    }

    pub fn int_array(mut self, name: &str, dims: Vec<Expr>) -> Self {
        self.arrays.push(ArrayDecl {
            name: Var::new(name),
            dims,
            ty: ScalarTy::Int,
        });
        self
    }

    pub fn int_var(mut self, name: &str) -> Self {
        self.scalars.push(ScalarDecl {
            name: Var::new(name),
            ty: ScalarTy::Int,
            init: None,
        });
        self
    }

    pub fn int_var_init(mut self, name: &str, init: i64) -> Self {
        self.scalars.push(ScalarDecl {
            name: Var::new(name),
            ty: ScalarTy::Int,
            init: Some(Expr::int(init)),
        });
        self
    }

    pub fn real_var(mut self, name: &str) -> Self {
        self.scalars.push(ScalarDecl {
            name: Var::new(name),
            ty: ScalarTy::Real,
            init: None,
        });
        self
    }

    pub fn stmt(mut self, s: Stmt) -> Self {
        self.stmts.push(s);
        self
    }

    pub fn stmts(mut self, ss: impl IntoIterator<Item = Stmt>) -> Self {
        self.stmts.extend(ss);
        self
    }

    pub fn build(self) -> Procedure {
        Procedure {
            name: self.name,
            params: self.params,
            arrays: self.arrays,
            scalars: self.scalars,
            body: Block::new(self.stmts),
        }
    }
}

/// `for v = lo to hi { body }`
pub fn for_loop(var: &str, lo: Expr, hi: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For(Loop {
        id: LoopId(u32::MAX),
        label: None,
        var: Var::new(var),
        lo,
        hi,
        step: 1,
        body: Block::new(body),
    })
}

/// `for@label v = lo to hi { body }`
pub fn labeled_loop(label: &str, var: &str, lo: Expr, hi: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For(Loop {
        id: LoopId(u32::MAX),
        label: Some(label.to_string()),
        var: Var::new(var),
        lo,
        hi,
        step: 1,
        body: Block::new(body),
    })
}

/// `lhs = rhs;` for an array element.
pub fn store(array: &str, idxs: Vec<Expr>, rhs: Expr) -> Stmt {
    Stmt::Assign {
        lhs: LValue::elem(array, idxs),
        rhs,
    }
}

/// `x = rhs;` for a scalar.
pub fn assign(scalar: &str, rhs: Expr) -> Stmt {
    Stmt::Assign {
        lhs: LValue::scalar(scalar),
        rhs,
    }
}

/// `if (c) { then }` with no else branch.
pub fn if_then(cond: BoolExpr, then: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_blk: Block::new(then),
        else_blk: Block::default(),
    }
}

/// `if (c) { then } else { els }`
pub fn if_else(cond: BoolExpr, then: Vec<Stmt>, els: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_blk: Block::new(then),
        else_blk: Block::new(els),
    }
}

/// Shorthand constructors for expressions.
pub mod e {
    use super::*;

    pub fn i(v: i64) -> Expr {
        Expr::int(v)
    }
    pub fn r(v: f64) -> Expr {
        Expr::real(v)
    }
    pub fn sv(name: &str) -> Expr {
        Expr::scalar(name)
    }
    pub fn at(array: &str, idxs: Vec<Expr>) -> Expr {
        Expr::elem(array, idxs)
    }
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }
    pub fn imod(a: Expr, b: Expr) -> Expr {
        Expr::Mod(Box::new(a), Box::new(b))
    }
    pub fn call(intr: Intrinsic, args: Vec<Expr>) -> Expr {
        Expr::Call(intr, args)
    }

    pub fn lt(a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Lt, a, b)
    }
    pub fn le(a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Le, a, b)
    }
    pub fn gt(a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Gt, a, b)
    }
    pub fn ge(a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Ge, a, b)
    }
    pub fn eq(a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Eq, a, b)
    }
    pub fn ne(a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Ne, a, b)
    }
}

/// Assemble a finalized program from procedures.
pub fn program(procs: Vec<Procedure>) -> Program {
    Program::new(procs)
}

#[cfg(test)]
mod tests {
    use super::e::*;
    use super::*;
    use crate::visit;

    #[test]
    fn builder_matches_parser() {
        let built = program(vec![ProcBuilder::new("main")
            .int_param("n")
            .array("a", vec![i(100)])
            .stmt(for_loop(
                "i",
                i(1),
                sv("n"),
                vec![store("a", vec![sv("i")], r(0.0))],
            ))
            .build()]);
        let parsed = crate::parse::parse_program(
            "proc main(n: int) { array a[100]; for i = 1 to n { a[i] = 0.0; } }",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn built_programs_resolve() {
        let p = program(vec![ProcBuilder::new("main")
            .int_param("n")
            .array("a", vec![i(64), i(64)])
            .int_var("x")
            .stmt(assign("x", i(0)))
            .stmt(for_loop(
                "i",
                i(1),
                sv("n"),
                vec![if_then(
                    gt(sv("x"), i(0)),
                    vec![store("a", vec![sv("i"), i(1)], r(1.0))],
                )],
            ))
            .build()]);
        assert!(visit::resolve(&p).is_ok());
        assert_eq!(visit::count_loops(&p), 1);
    }

    #[test]
    fn labeled_loops_findable() {
        let p = program(vec![ProcBuilder::new("main")
            .int_param("n")
            .array("a", vec![i(10)])
            .stmt(labeled_loop(
                "kern",
                "i",
                i(1),
                sv("n"),
                vec![store("a", vec![sv("i")], r(2.0))],
            ))
            .build()]);
        assert!(visit::find_loop_by_label(&p, "kern").is_some());
    }
}
