//! Traversal helpers and the name/shape resolver.

use crate::ast::*;
use padfa_omega::Var;

/// Count all loops in the program.
pub fn count_loops(p: &Program) -> usize {
    let mut n = 0;
    for_each_loop(p, &mut |_, _, _| n += 1);
    n
}

/// Visit every loop with its enclosing procedure and nesting depth
/// (0 = outermost in its procedure).
pub fn for_each_loop<'p>(p: &'p Program, f: &mut dyn FnMut(&'p Procedure, &'p Loop, usize)) {
    fn walk<'p>(
        proc: &'p Procedure,
        b: &'p Block,
        depth: usize,
        f: &mut dyn FnMut(&'p Procedure, &'p Loop, usize),
    ) {
        for s in &b.stmts {
            match s {
                Stmt::For(l) => {
                    f(proc, l, depth);
                    walk(proc, &l.body, depth + 1, f);
                }
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    walk(proc, then_blk, depth, f);
                    walk(proc, else_blk, depth, f);
                }
                _ => {}
            }
        }
    }
    for proc in &p.procedures {
        walk(proc, &proc.body, 0, f);
    }
}

/// Find the loop with the given id.
pub fn find_loop(p: &Program, id: LoopId) -> Option<(&Procedure, &Loop)> {
    let mut found = None;
    for_each_loop(p, &mut |proc, l, _| {
        if l.id == id && found.is_none() {
            found = Some((proc, l));
        }
    });
    found
}

/// Find a loop by its source label.
pub fn find_loop_by_label<'p>(p: &'p Program, label: &str) -> Option<(&'p Procedure, &'p Loop)> {
    let mut found = None;
    for_each_loop(p, &mut |proc, l, _| {
        if l.label.as_deref() == Some(label) && found.is_none() {
            found = Some((proc, l));
        }
    });
    found
}

/// Map every loop to its immediate enclosing loop (within the same
/// procedure), if any.
pub fn loop_parents(p: &Program) -> std::collections::HashMap<LoopId, Option<LoopId>> {
    fn walk(
        b: &Block,
        parent: Option<LoopId>,
        out: &mut std::collections::HashMap<LoopId, Option<LoopId>>,
    ) {
        for s in &b.stmts {
            match s {
                Stmt::For(l) => {
                    out.insert(l.id, parent);
                    walk(&l.body, Some(l.id), out);
                }
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    walk(then_blk, parent, out);
                    walk(else_blk, parent, out);
                }
                _ => {}
            }
        }
    }
    let mut out = std::collections::HashMap::new();
    for proc in &p.procedures {
        walk(&proc.body, None, &mut out);
    }
    out
}

struct Resolver<'p> {
    prog: &'p Program,
    errors: Vec<String>,
}

impl<'p> Resolver<'p> {
    fn err(&mut self, msg: String) {
        self.errors.push(msg);
    }

    fn check_expr(&mut self, proc: &Procedure, indices: &[Var], e: &Expr) {
        match e {
            Expr::IntLit(_) | Expr::RealLit(_) => {}
            Expr::Scalar(v) => {
                if proc.scalar_ty(*v).is_none() && !indices.contains(v) {
                    // Whole-array mention in scalar position is an error.
                    if proc.array_dims(*v).is_some() {
                        self.err(format!(
                            "{}: array '{v}' used without subscripts",
                            proc.name
                        ));
                    } else {
                        self.err(format!("{}: undeclared scalar '{v}'", proc.name));
                    }
                }
            }
            Expr::Elem(a, idxs) => {
                match proc.array_dims(*a) {
                    None => self.err(format!("{}: undeclared array '{a}'", proc.name)),
                    Some(dims) => {
                        if dims.len() != idxs.len() {
                            self.err(format!(
                                "{}: array '{a}' has {} dimension(s) but {} subscript(s) given",
                                proc.name,
                                dims.len(),
                                idxs.len()
                            ));
                        }
                    }
                }
                for i in idxs {
                    self.check_expr(proc, indices, i);
                }
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b) => {
                self.check_expr(proc, indices, a);
                self.check_expr(proc, indices, b);
            }
            Expr::Neg(a) => self.check_expr(proc, indices, a),
            Expr::Call(_, args) => {
                for a in args {
                    self.check_expr(proc, indices, a);
                }
            }
        }
    }

    fn check_bool(&mut self, proc: &Procedure, indices: &[Var], b: &BoolExpr) {
        match b {
            BoolExpr::Lit(_) => {}
            BoolExpr::Cmp(_, x, y) => {
                self.check_expr(proc, indices, x);
                self.check_expr(proc, indices, y);
            }
            BoolExpr::And(x, y) | BoolExpr::Or(x, y) => {
                self.check_bool(proc, indices, x);
                self.check_bool(proc, indices, y);
            }
            BoolExpr::Not(x) => self.check_bool(proc, indices, x),
        }
    }

    fn check_block(&mut self, proc: &Procedure, indices: &mut Vec<Var>, b: &Block) {
        for s in &b.stmts {
            match s {
                Stmt::Assign { lhs, rhs } => {
                    match lhs {
                        LValue::Scalar(v) => {
                            if indices.contains(v) {
                                self.err(format!(
                                    "{}: assignment to active loop index '{v}'",
                                    proc.name
                                ));
                            } else if proc.scalar_ty(*v).is_none() {
                                self.err(format!("{}: undeclared scalar '{v}'", proc.name));
                            }
                        }
                        LValue::Elem(a, idxs) => {
                            match proc.array_dims(*a) {
                                None => self.err(format!("{}: undeclared array '{a}'", proc.name)),
                                Some(dims) => {
                                    if dims.len() != idxs.len() {
                                        self.err(format!(
                                            "{}: array '{a}' subscript arity mismatch",
                                            proc.name
                                        ));
                                    }
                                }
                            }
                            for i in idxs {
                                self.check_expr(proc, indices, i);
                            }
                        }
                    }
                    self.check_expr(proc, indices, rhs);
                }
                Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    self.check_bool(proc, indices, cond);
                    self.check_block(proc, indices, then_blk);
                    self.check_block(proc, indices, else_blk);
                }
                Stmt::For(l) => {
                    self.check_expr(proc, indices, &l.lo);
                    self.check_expr(proc, indices, &l.hi);
                    if indices.contains(&l.var) {
                        self.err(format!(
                            "{}: loop index '{}' shadows an enclosing loop index",
                            proc.name, l.var
                        ));
                    }
                    indices.push(l.var);
                    self.check_block(proc, indices, &l.body);
                    indices.pop();
                }
                Stmt::Call { callee, args } => {
                    let Some(target) = self.prog.proc(callee) else {
                        self.err(format!(
                            "{}: call to unknown procedure '{callee}'",
                            proc.name
                        ));
                        continue;
                    };
                    if target.params.len() != args.len() {
                        self.err(format!(
                            "{}: call to '{callee}' passes {} argument(s), expected {}",
                            proc.name,
                            args.len(),
                            target.params.len()
                        ));
                        continue;
                    }
                    for (arg, param) in args.iter().zip(&target.params) {
                        match (&param.ty, arg) {
                            (ParamTy::Array { .. }, Arg::Array(v)) => {
                                if proc.array_dims(*v).is_none() {
                                    self.err(format!(
                                        "{}: undeclared array '{v}' passed to '{callee}'",
                                        proc.name
                                    ));
                                }
                            }
                            (ParamTy::Array { .. }, Arg::Scalar(_)) => {
                                self.err(format!(
                                    "{}: scalar passed where '{callee}' expects an array",
                                    proc.name
                                ));
                            }
                            (ParamTy::Scalar(_), Arg::Array(v)) => {
                                // Parser ambiguity: a bare identifier.
                                // Accept if it names a scalar in scope.
                                if proc.scalar_ty(*v).is_none() && !indices.contains(v) {
                                    self.err(format!(
                                        "{}: '{v}' is not a scalar in scope for call to '{callee}'",
                                        proc.name
                                    ));
                                }
                            }
                            (ParamTy::Scalar(_), Arg::Scalar(e)) => {
                                self.check_expr(proc, indices, e);
                            }
                        }
                    }
                }
                Stmt::Read(v) => {
                    if proc.scalar_ty(*v).is_none() {
                        self.err(format!("{}: read into undeclared scalar '{v}'", proc.name));
                    }
                }
                Stmt::Print(e) => self.check_expr(proc, indices, e),
                Stmt::ExitWhen(c) => self.check_bool(proc, indices, c),
            }
        }
    }
}

/// Check name binding, subscript arity, and call signatures across the
/// whole program. Returns the first batch of errors joined together.
pub fn resolve(p: &Program) -> Result<(), String> {
    let mut r = Resolver {
        prog: p,
        errors: Vec::new(),
    };
    for proc in &p.procedures {
        let mut indices = Vec::new();
        r.check_block(proc, &mut indices, &proc.body);
    }
    if r.errors.is_empty() {
        Ok(())
    } else {
        Err(r.errors.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn counts_and_parents() {
        let src = "proc main(n: int) { array a[10, 10];
            for i = 1 to n {
                for j = 1 to n { a[i, j] = 0.0; }
            }
            for k = 1 to n { a[k, 1] = 1.0; }
        }";
        let p = parse_program(src).unwrap();
        assert_eq!(count_loops(&p), 3);
        let parents = loop_parents(&p);
        assert_eq!(parents[&LoopId(0)], None);
        assert_eq!(parents[&LoopId(1)], Some(LoopId(0)));
        assert_eq!(parents[&LoopId(2)], None);
    }

    #[test]
    fn find_by_label() {
        let src = "proc main(n: int) { array a[10];
            for@hot i = 1 to n { a[i] = 0.0; } }";
        let p = parse_program(src).unwrap();
        let (_, l) = find_loop_by_label(&p, "hot").unwrap();
        assert_eq!(l.id, LoopId(0));
        assert!(find_loop_by_label(&p, "cold").is_none());
    }

    #[test]
    fn rejects_undeclared_names() {
        assert!(parse_program("proc m() { x = 1; }").is_err());
        assert!(parse_program("proc m() { a[1] = 1.0; }").is_err());
        assert!(parse_program("proc m(n: int) { var x: int; x = n + q; }").is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        assert!(parse_program("proc m() { array a[10, 10]; a[1] = 0.0; }").is_err());
        let ok = parse_program("proc m() { array a[10, 10]; a[1, 2] = 0.0; }");
        assert!(ok.is_ok());
    }

    #[test]
    fn rejects_bad_calls() {
        assert!(parse_program("proc m() { call nosuch(); }").is_err());
        assert!(
            parse_program("proc f(n: int) { } proc m() { call f(); }").is_err(),
            "arg count mismatch"
        );
        assert!(
            parse_program("proc f(a: array[10]) { } proc m(n: int) { call f(n); }").is_err(),
            "scalar passed for array"
        );
    }

    #[test]
    fn accepts_scalar_actual_parsed_as_array_form() {
        let src = "proc f(n: int) { } proc m(k: int) { call f(k); }";
        assert!(parse_program(src).is_ok());
    }

    #[test]
    fn rejects_loop_index_abuse() {
        assert!(
            parse_program("proc m(n: int) { array a[9]; for i = 1 to n { i = 2; } }").is_err(),
            "assignment to loop index"
        );
        assert!(
            parse_program(
                "proc m(n: int) { array a[9]; for i = 1 to n { for i = 1 to n { a[i] = 0.0; } } }"
            )
            .is_err(),
            "shadowed loop index"
        );
    }

    #[test]
    fn whole_array_in_scalar_position_rejected() {
        assert!(parse_program("proc m() { array a[10]; var x: real; x = a; }").is_err());
    }
}
