//! Abstract syntax = region graph of the mini-Fortran language.

use padfa_omega::Var;
use std::collections::HashMap;
use std::fmt;

/// Scalar element type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScalarTy {
    Int,
    Real,
}

/// Comparison operators in boolean expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The comparison with operands swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`!(a op b)` ⇔ `a op.negate() b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    pub fn apply_i(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    pub fn apply_f(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Numeric intrinsic functions (used to give kernels realistic work).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Intrinsic {
    Sin,
    Cos,
    Sqrt,
    Exp,
    Abs,
    Min,
    Max,
}

impl Intrinsic {
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "sqrt" => Intrinsic::Sqrt,
            "exp" => Intrinsic::Exp,
            "abs" => Intrinsic::Abs,
            "min" => Intrinsic::Min,
            "max" => Intrinsic::Max,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Exp => "exp",
            Intrinsic::Abs => "abs",
            Intrinsic::Min => "min",
            Intrinsic::Max => "max",
        }
    }

    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Min | Intrinsic::Max => 2,
            _ => 1,
        }
    }
}

/// Arithmetic expressions. Typing (int vs real) is resolved by the
/// declarations in scope; integer expressions are the only ones eligible
/// for subscripts and affine extraction.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    IntLit(i64),
    RealLit(f64),
    /// Scalar variable reference (loop index, parameter, or local).
    Scalar(Var),
    /// `a[e1, ..., ek]`
    Elem(Var, Vec<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    /// Integer remainder (Fortran `mod`).
    Mod(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    Call(Intrinsic, Vec<Expr>),
}

impl Expr {
    pub fn scalar(name: &str) -> Expr {
        Expr::Scalar(Var::new(name))
    }

    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v)
    }

    pub fn real(v: f64) -> Expr {
        Expr::RealLit(v)
    }

    pub fn elem(array: &str, idxs: Vec<Expr>) -> Expr {
        Expr::Elem(Var::new(array), idxs)
    }

    /// All scalar variables read by this expression.
    pub fn scalar_vars(&self, out: &mut Vec<Var>) {
        match self {
            Expr::IntLit(_) | Expr::RealLit(_) => {}
            Expr::Scalar(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Expr::Elem(_, idxs) => {
                for e in idxs {
                    e.scalar_vars(out);
                }
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b) => {
                a.scalar_vars(out);
                b.scalar_vars(out);
            }
            Expr::Neg(a) => a.scalar_vars(out),
            Expr::Call(_, args) => {
                for e in args {
                    e.scalar_vars(out);
                }
            }
        }
    }

    /// Visit every array element access `(array, subscripts)` in the
    /// expression.
    pub fn for_each_access(&self, f: &mut dyn FnMut(Var, &[Expr])) {
        match self {
            Expr::IntLit(_) | Expr::RealLit(_) | Expr::Scalar(_) => {}
            Expr::Elem(a, idxs) => {
                f(*a, idxs);
                for e in idxs {
                    e.for_each_access(f);
                }
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b) => {
                a.for_each_access(f);
                b.for_each_access(f);
            }
            Expr::Neg(a) => a.for_each_access(f),
            Expr::Call(_, args) => {
                for e in args {
                    e.for_each_access(f);
                }
            }
        }
    }
}

/// `Eq`/`Hash` cannot be derived because of the `f64` literal. The
/// grammar has no spelling for NaN, so every `RealLit` the parser (or
/// the analysis) produces is a finite number for which the derived
/// `PartialEq` is reflexive; hashing the IEEE bit pattern is then
/// consistent with equality.
impl Eq for Expr {}

impl std::hash::Hash for Expr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Expr::IntLit(v) => v.hash(state),
            Expr::RealLit(v) => v.to_bits().hash(state),
            Expr::Scalar(v) => v.hash(state),
            Expr::Elem(a, idxs) => {
                a.hash(state);
                idxs.hash(state);
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b) => {
                a.hash(state);
                b.hash(state);
            }
            Expr::Neg(a) => a.hash(state),
            Expr::Call(i, args) => {
                i.hash(state);
                args.hash(state);
            }
        }
    }
}

/// Boolean expressions used in `if` conditions, `exit when`, and derived
/// predicates.
#[derive(Clone, PartialEq, Debug)]
pub enum BoolExpr {
    Lit(bool),
    Cmp(CmpOp, Expr, Expr),
    And(Box<BoolExpr>, Box<BoolExpr>),
    Or(Box<BoolExpr>, Box<BoolExpr>),
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> BoolExpr {
        BoolExpr::Cmp(op, a, b)
    }

    pub fn and(a: BoolExpr, b: BoolExpr) -> BoolExpr {
        BoolExpr::And(Box::new(a), Box::new(b))
    }

    pub fn or(a: BoolExpr, b: BoolExpr) -> BoolExpr {
        BoolExpr::Or(Box::new(a), Box::new(b))
    }

    #[allow(clippy::should_implement_trait)] // constructor mirroring `and`/`or`
    pub fn not(a: BoolExpr) -> BoolExpr {
        BoolExpr::Not(Box::new(a))
    }

    /// All scalar variables read.
    pub fn scalar_vars(&self, out: &mut Vec<Var>) {
        match self {
            BoolExpr::Lit(_) => {}
            BoolExpr::Cmp(_, a, b) => {
                a.scalar_vars(out);
                b.scalar_vars(out);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.scalar_vars(out);
                b.scalar_vars(out);
            }
            BoolExpr::Not(a) => a.scalar_vars(out),
        }
    }

    /// True when the expression reads no array elements (such conditions
    /// are candidates for cheap run-time tests).
    pub fn is_scalar_only(&self) -> bool {
        let mut scalar_only = true;
        self.for_each_access(&mut |_, _| scalar_only = false);
        scalar_only
    }

    /// Visit every array access.
    pub fn for_each_access(&self, f: &mut dyn FnMut(Var, &[Expr])) {
        match self {
            BoolExpr::Lit(_) => {}
            BoolExpr::Cmp(_, a, b) => {
                a.for_each_access(f);
                b.for_each_access(f);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.for_each_access(f);
                b.for_each_access(f);
            }
            BoolExpr::Not(a) => a.for_each_access(f),
        }
    }
}

/// See the note on [`Expr`]'s `Eq`: real literals are never NaN.
impl Eq for BoolExpr {}

impl std::hash::Hash for BoolExpr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            BoolExpr::Lit(b) => b.hash(state),
            BoolExpr::Cmp(op, a, b) => {
                op.hash(state);
                a.hash(state);
                b.hash(state);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.hash(state);
                b.hash(state);
            }
            BoolExpr::Not(a) => a.hash(state),
        }
    }
}

/// Assignment target.
#[derive(Clone, PartialEq, Debug)]
pub enum LValue {
    Scalar(Var),
    Elem(Var, Vec<Expr>),
}

impl LValue {
    pub fn scalar(name: &str) -> LValue {
        LValue::Scalar(Var::new(name))
    }

    pub fn elem(array: &str, idxs: Vec<Expr>) -> LValue {
        LValue::Elem(Var::new(array), idxs)
    }
}

/// Unique loop identity within a [`Program`] (assigned by
/// [`Program::finalize`], in preorder per procedure).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LoopId(pub u32);

/// A counted `for` loop: `for v = lo to hi step s { body }`.
///
/// The step is a non-zero integer constant; a negative step iterates
/// downward (`for i = n to 1 step -1`), matching Fortran `DO` loops.
#[derive(Clone, PartialEq, Debug)]
pub struct Loop {
    pub id: LoopId,
    /// Optional source label (`for@L10 ...`), used by reports and tables.
    pub label: Option<String>,
    pub var: Var,
    pub lo: Expr,
    pub hi: Expr,
    pub step: i64,
    pub body: Block,
}

/// Statements.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    Assign {
        lhs: LValue,
        rhs: Expr,
    },
    If {
        cond: BoolExpr,
        then_blk: Block,
        else_blk: Block,
    },
    For(Loop),
    Call {
        callee: String,
        /// Actual arguments: scalar expressions or whole-array names.
        args: Vec<Arg>,
    },
    /// `read x;` — I/O: disqualifies enclosing loops from parallelization.
    Read(Var),
    /// `print e;` — I/O.
    Print(Expr),
    /// `exit when (c);` — internal loop exit: disqualifies the enclosing
    /// loop.
    ExitWhen(BoolExpr),
}

/// An actual argument at a call site.
#[derive(Clone, PartialEq, Debug)]
pub enum Arg {
    Scalar(Expr),
    /// Pass a whole array by reference.
    Array(Var),
}

/// A straight-line-or-nested sequence of statements (a region body).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

impl Block {
    pub fn new(stmts: Vec<Stmt>) -> Block {
        Block { stmts }
    }
}

/// Local or parameter array shape: one extent expression per dimension.
/// Extents may be symbolic (parameters) but must be affine.
#[derive(Clone, PartialEq, Debug)]
pub struct ArrayDecl {
    pub name: Var,
    pub dims: Vec<Expr>,
    pub ty: ScalarTy,
}

/// Formal parameter type.
#[derive(Clone, PartialEq, Debug)]
pub enum ParamTy {
    Scalar(ScalarTy),
    Array { dims: Vec<Expr>, ty: ScalarTy },
}

/// Formal parameter.
#[derive(Clone, PartialEq, Debug)]
pub struct Param {
    pub name: Var,
    pub ty: ParamTy,
}

/// Scalar local declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct ScalarDecl {
    pub name: Var,
    pub ty: ScalarTy,
    pub init: Option<Expr>,
}

/// A procedure: the unit of interprocedural summarization.
#[derive(Clone, PartialEq, Debug)]
pub struct Procedure {
    pub name: String,
    pub params: Vec<Param>,
    pub arrays: Vec<ArrayDecl>,
    pub scalars: Vec<ScalarDecl>,
    pub body: Block,
}

impl Procedure {
    /// Look up the declared shape of an array visible in this procedure
    /// (local or formal parameter).
    pub fn array_dims(&self, name: Var) -> Option<&[Expr]> {
        for d in &self.arrays {
            if d.name == name {
                return Some(&d.dims);
            }
        }
        for p in &self.params {
            if p.name == name {
                if let ParamTy::Array { dims, .. } = &p.ty {
                    return Some(dims);
                }
            }
        }
        None
    }

    /// Element type of an array visible in this procedure.
    pub fn array_ty(&self, name: Var) -> Option<ScalarTy> {
        for d in &self.arrays {
            if d.name == name {
                return Some(d.ty);
            }
        }
        for p in &self.params {
            if p.name == name {
                if let ParamTy::Array { ty, .. } = &p.ty {
                    return Some(*ty);
                }
            }
        }
        None
    }

    /// Scalar type of a variable visible in this procedure, if declared.
    pub fn scalar_ty(&self, name: Var) -> Option<ScalarTy> {
        for d in &self.scalars {
            if d.name == name {
                return Some(d.ty);
            }
        }
        for p in &self.params {
            if p.name == name {
                if let ParamTy::Scalar(t) = p.ty {
                    return Some(t);
                }
            }
        }
        None
    }
}

/// A whole program. Call [`Program::finalize`] after construction to
/// assign [`LoopId`]s and build the procedure index.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    pub procedures: Vec<Procedure>,
    index: HashMap<String, usize>,
    next_loop: u32,
}

impl Program {
    pub fn new(procedures: Vec<Procedure>) -> Program {
        let mut p = Program {
            procedures,
            index: HashMap::new(),
            next_loop: 0,
        };
        p.finalize();
        p
    }

    /// Assign fresh `LoopId`s in preorder and (re)build the name index.
    pub fn finalize(&mut self) {
        self.index.clear();
        self.next_loop = 0;
        for (i, p) in self.procedures.iter().enumerate() {
            self.index.insert(p.name.clone(), i);
        }
        let mut next = 0u32;
        for p in &mut self.procedures {
            Self::number_block(&mut p.body, &mut next);
        }
        self.next_loop = next;
    }

    fn number_block(b: &mut Block, next: &mut u32) {
        for s in &mut b.stmts {
            match s {
                Stmt::For(l) => {
                    l.id = LoopId(*next);
                    *next += 1;
                    Self::number_block(&mut l.body, next);
                }
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    Self::number_block(then_blk, next);
                    Self::number_block(else_blk, next);
                }
                _ => {}
            }
        }
    }

    /// Total number of loops (valid after `finalize`).
    pub fn num_loops(&self) -> u32 {
        self.next_loop
    }

    /// Find a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&Procedure> {
        self.index.get(name).map(|&i| &self.procedures[i])
    }

    /// The entry procedure: `main` if present, else the first.
    pub fn entry(&self) -> Option<&Procedure> {
        self.proc("main").or_else(|| self.procedures.first())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::program_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_tables() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert!(CmpOp::Le.apply_i(3, 3));
        assert!(!CmpOp::Lt.apply_i(3, 3));
        assert!(CmpOp::Ge.apply_f(2.5, 2.5));
    }

    #[test]
    fn intrinsic_round_trip() {
        for i in [
            Intrinsic::Sin,
            Intrinsic::Cos,
            Intrinsic::Sqrt,
            Intrinsic::Exp,
            Intrinsic::Abs,
            Intrinsic::Min,
            Intrinsic::Max,
        ] {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
        }
        assert_eq!(Intrinsic::from_name("tan"), None);
    }

    #[test]
    fn expr_scalar_vars_dedup() {
        let e = Expr::Add(
            Box::new(Expr::scalar("i")),
            Box::new(Expr::Mul(
                Box::new(Expr::scalar("i")),
                Box::new(Expr::scalar("n")),
            )),
        );
        let mut vs = Vec::new();
        e.scalar_vars(&mut vs);
        assert_eq!(vs.len(), 2);
    }

    #[test]
    fn bool_expr_scalar_only() {
        let c = BoolExpr::cmp(CmpOp::Gt, Expr::scalar("x"), Expr::int(5));
        assert!(c.is_scalar_only());
        let c2 = BoolExpr::cmp(
            CmpOp::Gt,
            Expr::elem("a", vec![Expr::scalar("i")]),
            Expr::int(0),
        );
        assert!(!c2.is_scalar_only());
    }

    #[test]
    fn loop_numbering_is_preorder() {
        let mk_loop = |var: &str, body: Vec<Stmt>| {
            Stmt::For(Loop {
                id: LoopId(999),
                label: None,
                var: Var::new(var),
                lo: Expr::int(1),
                hi: Expr::int(10),
                step: 1,
                body: Block::new(body),
            })
        };
        let inner = mk_loop(
            "j",
            vec![Stmt::Assign {
                lhs: LValue::elem("a", vec![Expr::scalar("j")]),
                rhs: Expr::real(0.0),
            }],
        );
        let outer = mk_loop("i", vec![inner]);
        let p = Program::new(vec![Procedure {
            name: "main".into(),
            params: vec![],
            arrays: vec![ArrayDecl {
                name: Var::new("a"),
                dims: vec![Expr::int(10)],
                ty: ScalarTy::Real,
            }],
            scalars: vec![],
            body: Block::new(vec![outer]),
        }]);
        assert_eq!(p.num_loops(), 2);
        if let Stmt::For(l) = &p.procedures[0].body.stmts[0] {
            assert_eq!(l.id, LoopId(0));
            if let Stmt::For(l2) = &l.body.stmts[0] {
                assert_eq!(l2.id, LoopId(1));
            } else {
                panic!("expected inner loop");
            }
        } else {
            panic!("expected outer loop");
        }
    }

    #[test]
    fn procedure_lookups() {
        let p = Procedure {
            name: "f".into(),
            params: vec![
                Param {
                    name: Var::new("n"),
                    ty: ParamTy::Scalar(ScalarTy::Int),
                },
                Param {
                    name: Var::new("b"),
                    ty: ParamTy::Array {
                        dims: vec![Expr::scalar("n")],
                        ty: ScalarTy::Real,
                    },
                },
            ],
            arrays: vec![ArrayDecl {
                name: Var::new("loc"),
                dims: vec![Expr::int(8)],
                ty: ScalarTy::Int,
            }],
            scalars: vec![ScalarDecl {
                name: Var::new("t"),
                ty: ScalarTy::Real,
                init: None,
            }],
            body: Block::default(),
        };
        assert_eq!(p.scalar_ty(Var::new("n")), Some(ScalarTy::Int));
        assert_eq!(p.scalar_ty(Var::new("t")), Some(ScalarTy::Real));
        assert_eq!(p.array_ty(Var::new("b")), Some(ScalarTy::Real));
        assert_eq!(p.array_ty(Var::new("loc")), Some(ScalarTy::Int));
        assert_eq!(p.array_dims(Var::new("b")).unwrap().len(), 1);
        assert!(p.array_dims(Var::new("zz")).is_none());
    }
}
