//! Pretty printer producing the surface syntax accepted by [`crate::parse`].

use crate::ast::*;

/// Render a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for proc in &p.procedures {
        proc_to_string(proc, &mut out);
        out.push('\n');
    }
    out
}

fn proc_to_string(p: &Procedure, out: &mut String) {
    out.push_str("proc ");
    out.push_str(&p.name);
    out.push('(');
    for (i, param) in p.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&param.name.name());
        out.push_str(": ");
        match &param.ty {
            ParamTy::Scalar(ScalarTy::Int) => out.push_str("int"),
            ParamTy::Scalar(ScalarTy::Real) => out.push_str("real"),
            ParamTy::Array { dims, ty } => {
                out.push_str("array[");
                for (j, d) in dims.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&expr(d));
                }
                out.push(']');
                if *ty == ScalarTy::Int {
                    out.push_str(" of int");
                }
            }
        }
    }
    out.push_str(") {\n");
    for d in &p.arrays {
        out.push_str("  array ");
        out.push_str(&d.name.name());
        out.push('[');
        for (j, dim) in d.dims.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&expr(dim));
        }
        out.push(']');
        if d.ty == ScalarTy::Int {
            out.push_str(" of int");
        }
        out.push_str(";\n");
    }
    for s in &p.scalars {
        out.push_str("  var ");
        out.push_str(&s.name.name());
        out.push_str(": ");
        out.push_str(match s.ty {
            ScalarTy::Int => "int",
            ScalarTy::Real => "real",
        });
        if let Some(init) = &s.init {
            out.push_str(" = ");
            out.push_str(&expr(init));
        }
        out.push_str(";\n");
    }
    block(&p.body, 1, out);
    out.push_str("}\n");
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn block(b: &Block, level: usize, out: &mut String) {
    for s in &b.stmts {
        stmt(s, level, out);
    }
}

fn stmt(s: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match s {
        Stmt::Assign { lhs, rhs } => {
            match lhs {
                LValue::Scalar(v) => out.push_str(&v.name()),
                LValue::Elem(a, idxs) => {
                    out.push_str(&a.name());
                    out.push('[');
                    for (i, e) in idxs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&expr(e));
                    }
                    out.push(']');
                }
            }
            out.push_str(" = ");
            out.push_str(&expr(rhs));
            out.push_str(";\n");
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            out.push_str("if (");
            out.push_str(&bool_expr(cond));
            out.push_str(") {\n");
            block(then_blk, level + 1, out);
            indent(level, out);
            out.push('}');
            if !else_blk.stmts.is_empty() {
                out.push_str(" else {\n");
                block(else_blk, level + 1, out);
                indent(level, out);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::For(l) => {
            out.push_str("for");
            if let Some(lbl) = &l.label {
                out.push('@');
                out.push_str(lbl);
            }
            out.push(' ');
            out.push_str(&l.var.name());
            out.push_str(" = ");
            out.push_str(&expr(&l.lo));
            out.push_str(" to ");
            out.push_str(&expr(&l.hi));
            if l.step != 1 {
                out.push_str(&format!(" step {}", l.step));
            }
            out.push_str(" {\n");
            block(&l.body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Call { callee, args } => {
            out.push_str("call ");
            out.push_str(callee);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match a {
                    Arg::Scalar(e) => out.push_str(&expr(e)),
                    Arg::Array(v) => out.push_str(&v.name()),
                }
            }
            out.push_str(");\n");
        }
        Stmt::Read(v) => {
            out.push_str("read ");
            out.push_str(&v.name());
            out.push_str(";\n");
        }
        Stmt::Print(e) => {
            out.push_str("print ");
            out.push_str(&expr(e));
            out.push_str(";\n");
        }
        Stmt::ExitWhen(c) => {
            out.push_str("exit when (");
            out.push_str(&bool_expr(c));
            out.push_str(");\n");
        }
    }
}

/// Render an arithmetic expression with minimal parentheses.
pub fn expr(e: &Expr) -> String {
    expr_prec(e, 0)
}

fn expr_prec(e: &Expr, min: u8) -> String {
    // The parser is left-associative, so right operands of binary
    // operators print at one level tighter than the operator itself
    // (forcing parentheses around right-nested same-precedence trees).
    // Negative literals rank like a unary minus so that `x * -16`
    // never loses its grouping, and `-literal` is printed as `-(lit)`
    // because the parser folds a bare `-lit` into a negative literal.
    let (s, prec) = match e {
        Expr::IntLit(v) => (v.to_string(), if *v < 0 { 2 } else { 4 }),
        Expr::RealLit(v) => {
            let s = format!("{v}");
            (
                if s.contains('.') || s.contains('e') {
                    s
                } else {
                    format!("{s}.0")
                },
                if *v < 0.0 { 2 } else { 4 },
            )
        }
        Expr::Scalar(v) => (v.name(), 4),
        Expr::Elem(a, idxs) => {
            let inner: Vec<String> = idxs.iter().map(expr).collect();
            (format!("{}[{}]", a.name(), inner.join(", ")), 4)
        }
        Expr::Add(a, b) => (format!("{} + {}", expr_prec(a, 1), expr_prec(b, 2)), 1),
        Expr::Sub(a, b) => (format!("{} - {}", expr_prec(a, 1), expr_prec(b, 2)), 1),
        Expr::Mul(a, b) => (format!("{} * {}", expr_prec(a, 2), expr_prec(b, 3)), 2),
        Expr::Div(a, b) => (format!("{} / {}", expr_prec(a, 2), expr_prec(b, 3)), 2),
        Expr::Mod(a, b) => (format!("{} % {}", expr_prec(a, 2), expr_prec(b, 3)), 2),
        Expr::Neg(a) => {
            let inner = match &**a {
                Expr::IntLit(v) if *v >= 0 => format!("({v})"),
                Expr::RealLit(v) if *v >= 0.0 => format!("({})", expr_prec(a, 0)),
                _ => expr_prec(a, 3),
            };
            (format!("-{inner}"), 2)
        }
        Expr::Call(i, args) => {
            let inner: Vec<String> = args.iter().map(expr).collect();
            (format!("{}({})", i.name(), inner.join(", ")), 4)
        }
    };
    if prec < min {
        format!("({s})")
    } else {
        s
    }
}

/// Render a boolean expression.
pub fn bool_expr(b: &BoolExpr) -> String {
    bool_prec(b, 0)
}

fn bool_prec(b: &BoolExpr, min: u8) -> String {
    let (s, prec) = match b {
        BoolExpr::Lit(true) => ("true".to_string(), 3),
        BoolExpr::Lit(false) => ("false".to_string(), 3),
        BoolExpr::Cmp(op, a, c) => {
            let o = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            (format!("{} {} {}", expr(a), o, expr(c)), 3)
        }
        BoolExpr::And(a, c) => (format!("{} and {}", bool_prec(a, 2), bool_prec(c, 3)), 2),
        BoolExpr::Or(a, c) => (format!("{} or {}", bool_prec(a, 1), bool_prec(c, 2)), 1),
        BoolExpr::Not(a) => (format!("not {}", bool_prec(a, 3)), 2),
    };
    if prec < min {
        format!("({s})")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_omega::Var;

    #[test]
    fn expr_precedence() {
        // (i + 1) * 2 needs parens; i + 1 * 2 does not.
        let e = Expr::Mul(
            Box::new(Expr::Add(
                Box::new(Expr::scalar("i")),
                Box::new(Expr::int(1)),
            )),
            Box::new(Expr::int(2)),
        );
        assert_eq!(expr(&e), "(i + 1) * 2");
        let f = Expr::Add(
            Box::new(Expr::scalar("i")),
            Box::new(Expr::Mul(Box::new(Expr::int(1)), Box::new(Expr::int(2)))),
        );
        assert_eq!(expr(&f), "i + 1 * 2");
    }

    #[test]
    fn real_literal_keeps_decimal_point() {
        assert_eq!(expr(&Expr::real(1.0)), "1.0");
        assert_eq!(expr(&Expr::real(0.5)), "0.5");
    }

    #[test]
    fn bool_precedence() {
        let b = BoolExpr::or(
            BoolExpr::and(
                BoolExpr::cmp(CmpOp::Gt, Expr::scalar("x"), Expr::int(0)),
                BoolExpr::cmp(CmpOp::Lt, Expr::scalar("y"), Expr::int(9)),
            ),
            BoolExpr::Lit(false),
        );
        assert_eq!(bool_expr(&b), "x > 0 and y < 9 or false");
    }

    #[test]
    fn subtraction_right_assoc_parens() {
        // i - (j - k) must keep parentheses.
        let e = Expr::Sub(
            Box::new(Expr::scalar("i")),
            Box::new(Expr::Sub(
                Box::new(Expr::scalar("j")),
                Box::new(Expr::Scalar(Var::new("k"))),
            )),
        );
        assert_eq!(expr(&e), "i - (j - k)");
    }
}
