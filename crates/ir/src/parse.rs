//! Lexer and recursive-descent parser for the mini-Fortran surface syntax.
//!
//! Grammar (EBNF):
//!
//! ```text
//! program  := proc*
//! proc     := 'proc' IDENT '(' [param (',' param)*] ')' block
//! param    := IDENT ':' ('int' | 'real'
//!            | 'array' '[' expr (',' expr)* ']' ['of' ('int'|'real')])
//! block    := '{' item* '}'
//! item     := decl | stmt
//! decl     := 'array' IDENT '[' expr (',' expr)* ']' ['of' sty] ';'
//!           | 'var' IDENT ':' sty ['=' expr] ';'
//! stmt     := lvalue '=' expr ';'
//!           | 'if' '(' bexpr ')' block ['else' (block | ifstmt)]
//!           | 'for' ['@' IDENT] IDENT '=' expr 'to' expr ['step' INT] block
//!           | 'call' IDENT '(' [arg (',' arg)*] ')' ';'
//!           | 'read' IDENT ';' | 'print' expr ';'
//!           | 'exit' 'when' '(' bexpr ')' ';'
//! bexpr    := bterm ('or' bterm)* ; bterm := bfact ('and' bfact)*
//! bfact    := 'not' bfact | 'true' | 'false'
//!           | '(' bexpr ')'          (resolved by backtracking)
//!           | expr cmpop expr
//! expr     := term (('+'|'-') term)*
//! term     := unary (('*'|'/'|'%') unary)*
//! unary    := '-' unary | atom
//! atom     := INT | REAL | '(' expr ')'
//!           | IDENT ['(' exprs ')' | '[' exprs ']']
//! ```

use crate::ast::*;
use padfa_omega::Var;
use std::fmt;

/// Parse error with line/column location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub msg: String,
    pub line: usize,
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Real(f64),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> u8 {
        let c = self.src[self.pos];
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn tokenize(mut self) -> Result<Vec<SpannedTok>, ParseError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and // comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_ascii_whitespace() => {
                        self.bump();
                    }
                    Some(b'/') if self.peek2() == Some(b'/') => {
                        while let Some(c) = self.peek() {
                            if c == b'\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(SpannedTok {
                    tok: Tok::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let tok = if c.is_ascii_alphabetic() || c == b'_' {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                Tok::Ident(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
            } else if c.is_ascii_digit() {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let mut is_real = false;
                if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                    is_real = true;
                    self.bump();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_digit() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                if matches!(self.peek(), Some(b'e') | Some(b'E'))
                    && self
                        .peek2()
                        .is_some_and(|c| c.is_ascii_digit() || c == b'-' || c == b'+')
                {
                    is_real = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'-') | Some(b'+')) {
                        self.bump();
                    }
                    while let Some(c) = self.peek() {
                        if c.is_ascii_digit() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]);
                if is_real {
                    Tok::Real(text.parse().map_err(|_| self.error("bad real literal"))?)
                } else {
                    Tok::Int(text.parse().map_err(|_| self.error("bad int literal"))?)
                }
            } else {
                self.bump();
                match c {
                    b'(' => Tok::Punct("("),
                    b')' => Tok::Punct(")"),
                    b'[' => Tok::Punct("["),
                    b']' => Tok::Punct("]"),
                    b'{' => Tok::Punct("{"),
                    b'}' => Tok::Punct("}"),
                    b',' => Tok::Punct(","),
                    b';' => Tok::Punct(";"),
                    b':' => Tok::Punct(":"),
                    b'@' => Tok::Punct("@"),
                    b'+' => Tok::Punct("+"),
                    b'-' => Tok::Punct("-"),
                    b'*' => Tok::Punct("*"),
                    b'/' => Tok::Punct("/"),
                    b'%' => Tok::Punct("%"),
                    b'=' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            Tok::Punct("==")
                        } else {
                            Tok::Punct("=")
                        }
                    }
                    b'!' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            Tok::Punct("!=")
                        } else {
                            return Err(self.error("expected '!='"));
                        }
                    }
                    b'<' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            Tok::Punct("<=")
                        } else {
                            Tok::Punct("<")
                        }
                    }
                    b'>' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            Tok::Punct(">=")
                        } else {
                            Tok::Punct(">")
                        }
                    }
                    other => {
                        return Err(self.error(format!("unexpected character '{}'", other as char)))
                    }
                }
            };
            out.push(SpannedTok { tok, line, col });
        }
    }
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn cur(&self) -> &SpannedTok {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let t = self.cur();
        ParseError {
            msg: msg.into(),
            line: t.line,
            col: t.col,
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.cur().tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(&self.cur().tok, Tok::Punct(q) if *q == p)
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.cur().tok, Tok::Ident(s) if s == kw)
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.at_punct(p) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected '{p}', found {:?}", self.cur().tok)))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.at_kw(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected '{kw}', found {:?}", self.cur().tok)))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut procs = Vec::new();
        while !matches!(self.cur().tok, Tok::Eof) {
            procs.push(self.procedure()?);
        }
        Ok(Program::new(procs))
    }

    fn scalar_ty(&mut self) -> Result<ScalarTy, ParseError> {
        if self.at_kw("int") {
            self.bump();
            Ok(ScalarTy::Int)
        } else if self.at_kw("real") {
            self.bump();
            Ok(ScalarTy::Real)
        } else {
            Err(self.error("expected 'int' or 'real'"))
        }
    }

    fn procedure(&mut self) -> Result<Procedure, ParseError> {
        self.eat_kw("proc")?;
        let name = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            loop {
                let pname = self.ident()?;
                self.eat_punct(":")?;
                let ty = if self.at_kw("array") {
                    self.bump();
                    self.eat_punct("[")?;
                    let mut dims = vec![self.expr()?];
                    while self.at_punct(",") {
                        self.bump();
                        dims.push(self.expr()?);
                    }
                    self.eat_punct("]")?;
                    let sty = if self.at_kw("of") {
                        self.bump();
                        self.scalar_ty()?
                    } else {
                        ScalarTy::Real
                    };
                    ParamTy::Array { dims, ty: sty }
                } else {
                    ParamTy::Scalar(self.scalar_ty()?)
                };
                params.push(Param {
                    name: Var::new(&pname),
                    ty,
                });
                if self.at_punct(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        self.eat_punct("{")?;
        let mut arrays = Vec::new();
        let mut scalars = Vec::new();
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            if self.at_kw("array") {
                self.bump();
                let aname = self.ident()?;
                self.eat_punct("[")?;
                let mut dims = vec![self.expr()?];
                while self.at_punct(",") {
                    self.bump();
                    dims.push(self.expr()?);
                }
                self.eat_punct("]")?;
                let ty = if self.at_kw("of") {
                    self.bump();
                    self.scalar_ty()?
                } else {
                    ScalarTy::Real
                };
                self.eat_punct(";")?;
                arrays.push(ArrayDecl {
                    name: Var::new(&aname),
                    dims,
                    ty,
                });
            } else if self.at_kw("var") {
                self.bump();
                let vname = self.ident()?;
                self.eat_punct(":")?;
                let ty = self.scalar_ty()?;
                let init = if self.at_punct("=") {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.eat_punct(";")?;
                scalars.push(ScalarDecl {
                    name: Var::new(&vname),
                    ty,
                    init,
                });
            } else {
                stmts.push(self.stmt()?);
            }
        }
        self.eat_punct("}")?;
        Ok(Procedure {
            name,
            params,
            arrays,
            scalars,
            body: Block::new(stmts),
        })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            stmts.push(self.stmt()?);
        }
        self.eat_punct("}")?;
        Ok(Block::new(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.at_kw("if") {
            return self.if_stmt();
        }
        if self.at_kw("for") {
            self.bump();
            let label = if self.at_punct("@") {
                self.bump();
                Some(self.ident()?)
            } else {
                None
            };
            let var = self.ident()?;
            self.eat_punct("=")?;
            let lo = self.expr()?;
            self.eat_kw("to")?;
            let hi = self.expr()?;
            let step = if self.at_kw("step") {
                self.bump();
                let neg = if self.at_punct("-") {
                    self.bump();
                    true
                } else {
                    false
                };
                match self.bump() {
                    Tok::Int(s) if s > 0 => {
                        if neg {
                            -s
                        } else {
                            s
                        }
                    }
                    _ => return Err(self.error("loop step must be a non-zero integer constant")),
                }
            } else {
                1
            };
            let body = self.block()?;
            return Ok(Stmt::For(Loop {
                id: LoopId(u32::MAX),
                label,
                var: Var::new(&var),
                lo,
                hi,
                step,
                body,
            }));
        }
        if self.at_kw("call") {
            self.bump();
            let callee = self.ident()?;
            self.eat_punct("(")?;
            let mut args = Vec::new();
            if !self.at_punct(")") {
                loop {
                    // A bare identifier not followed by an operator or
                    // subscript is ambiguous between a scalar expression
                    // and a whole-array argument; resolve to Array form
                    // (the resolver fixes up scalars).
                    let save = self.pos;
                    if let Tok::Ident(name) = self.cur().tok.clone() {
                        self.bump();
                        if self.at_punct(",") || self.at_punct(")") {
                            args.push(Arg::Array(Var::new(&name)));
                        } else {
                            self.pos = save;
                            args.push(Arg::Scalar(self.expr()?));
                        }
                    } else {
                        args.push(Arg::Scalar(self.expr()?));
                    }
                    if self.at_punct(",") {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.eat_punct(")")?;
            self.eat_punct(";")?;
            return Ok(Stmt::Call { callee, args });
        }
        if self.at_kw("read") {
            self.bump();
            let v = self.ident()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Read(Var::new(&v)));
        }
        if self.at_kw("print") {
            self.bump();
            let e = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Print(e));
        }
        if self.at_kw("exit") {
            self.bump();
            self.eat_kw("when")?;
            self.eat_punct("(")?;
            let c = self.bool_expr()?;
            self.eat_punct(")")?;
            self.eat_punct(";")?;
            return Ok(Stmt::ExitWhen(c));
        }
        // Assignment.
        let name = self.ident()?;
        let lhs = if self.at_punct("[") {
            self.bump();
            let mut idxs = vec![self.expr()?];
            while self.at_punct(",") {
                self.bump();
                idxs.push(self.expr()?);
            }
            self.eat_punct("]")?;
            LValue::Elem(Var::new(&name), idxs)
        } else {
            LValue::Scalar(Var::new(&name))
        };
        self.eat_punct("=")?;
        let rhs = self.expr()?;
        self.eat_punct(";")?;
        Ok(Stmt::Assign { lhs, rhs })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.eat_kw("if")?;
        self.eat_punct("(")?;
        let cond = self.bool_expr()?;
        self.eat_punct(")")?;
        let then_blk = self.block()?;
        let else_blk = if self.at_kw("else") {
            self.bump();
            if self.at_kw("if") {
                Block::new(vec![self.if_stmt()?])
            } else {
                self.block()?
            }
        } else {
            Block::default()
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
        })
    }

    fn bool_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.bool_term()?;
        while self.at_kw("or") {
            self.bump();
            let rhs = self.bool_term()?;
            lhs = BoolExpr::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn bool_term(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.bool_factor()?;
        while self.at_kw("and") {
            self.bump();
            let rhs = self.bool_factor()?;
            lhs = BoolExpr::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn bool_factor(&mut self) -> Result<BoolExpr, ParseError> {
        if self.at_kw("not") {
            self.bump();
            return Ok(BoolExpr::not(self.bool_factor()?));
        }
        if self.at_kw("true") {
            self.bump();
            return Ok(BoolExpr::Lit(true));
        }
        if self.at_kw("false") {
            self.bump();
            return Ok(BoolExpr::Lit(false));
        }
        if self.at_punct("(") {
            // Could be a parenthesized boolean or the left operand of a
            // comparison; try boolean first and backtrack.
            let save = self.pos;
            self.bump();
            if let Ok(b) = self.bool_expr() {
                if self.at_punct(")") {
                    let after_save = self.pos;
                    self.bump();
                    // If a comparison operator follows, the parenthesized
                    // text was really an arithmetic operand.
                    if !self.at_cmp_op() && !self.at_arith_continuation() {
                        return Ok(b);
                    }
                    self.pos = after_save;
                }
            }
            self.pos = save;
        }
        let a = self.expr()?;
        let op = self.cmp_op()?;
        let b = self.expr()?;
        Ok(BoolExpr::Cmp(op, a, b))
    }

    fn at_cmp_op(&self) -> bool {
        ["==", "!=", "<", "<=", ">", ">="]
            .iter()
            .any(|p| self.at_punct(p))
    }

    fn at_arith_continuation(&self) -> bool {
        ["+", "-", "*", "/", "%"].iter().any(|p| self.at_punct(p))
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match &self.cur().tok {
            Tok::Punct("==") => CmpOp::Eq,
            Tok::Punct("!=") => CmpOp::Ne,
            Tok::Punct("<") => CmpOp::Lt,
            Tok::Punct("<=") => CmpOp::Le,
            Tok::Punct(">") => CmpOp::Gt,
            Tok::Punct(">=") => CmpOp::Ge,
            other => {
                return Err(self.error(format!("expected comparison operator, found {other:?}")))
            }
        };
        self.bump();
        Ok(op)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            if self.at_punct("+") {
                self.bump();
                lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
            } else if self.at_punct("-") {
                self.bump();
                lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            if self.at_punct("*") {
                self.bump();
                lhs = Expr::Mul(Box::new(lhs), Box::new(self.unary()?));
            } else if self.at_punct("/") {
                self.bump();
                lhs = Expr::Div(Box::new(lhs), Box::new(self.unary()?));
            } else if self.at_punct("%") {
                self.bump();
                lhs = Expr::Mod(Box::new(lhs), Box::new(self.unary()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.at_punct("-") {
            self.bump();
            // `-literal` (the literal token directly, not a parenthesized
            // expression) folds into a negative literal so printed
            // negative constants round-trip structurally; anything else
            // stays an explicit negation.
            match self.cur().tok {
                Tok::Int(v) => {
                    self.bump();
                    return Ok(Expr::IntLit(-v));
                }
                Tok::Real(v) => {
                    self.bump();
                    return Ok(Expr::RealLit(-v));
                }
                _ => return Ok(Expr::Neg(Box::new(self.unary()?))),
            }
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::IntLit(v)),
            Tok::Real(v) => Ok(Expr::RealLit(v)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.at_punct("(") {
                    let intr = Intrinsic::from_name(&name)
                        .ok_or_else(|| self.error(format!("unknown intrinsic '{name}'")))?;
                    self.bump();
                    let mut args = vec![self.expr()?];
                    while self.at_punct(",") {
                        self.bump();
                        args.push(self.expr()?);
                    }
                    self.eat_punct(")")?;
                    if args.len() != intr.arity() {
                        return Err(self.error(format!(
                            "intrinsic '{name}' takes {} argument(s), got {}",
                            intr.arity(),
                            args.len()
                        )));
                    }
                    Ok(Expr::Call(intr, args))
                } else if self.at_punct("[") {
                    self.bump();
                    let mut idxs = vec![self.expr()?];
                    while self.at_punct(",") {
                        self.bump();
                        idxs.push(self.expr()?);
                    }
                    self.eat_punct("]")?;
                    Ok(Expr::Elem(Var::new(&name), idxs))
                } else {
                    Ok(Expr::Scalar(Var::new(&name)))
                }
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parse a complete program from source text.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, pos: 0 };
    let prog = p.program()?;
    crate::visit::resolve(&prog).map_err(|msg| ParseError {
        msg,
        line: 0,
        col: 0,
    })?;
    Ok(prog)
}

/// Parse a single arithmetic expression (used in tests and tools).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if !matches!(p.cur().tok, Tok::Eof) {
        return Err(p.error("trailing tokens after expression"));
    }
    Ok(e)
}

/// Parse a single boolean expression.
pub fn parse_bool_expr(src: &str) -> Result<BoolExpr, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.bool_expr()?;
    if !matches!(p.cur().tok, Tok::Eof) {
        return Err(p.error("trailing tokens after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_proc() {
        let p = parse_program("proc main() { }").unwrap();
        assert_eq!(p.procedures.len(), 1);
        assert_eq!(p.procedures[0].name, "main");
    }

    #[test]
    fn parses_params_and_decls() {
        let src = "proc f(n: int, x: real, a: array[10, n] of int) {
            array b[n];
            var t: real = 1.5;
            var k: int;
        }";
        let p = parse_program(src).unwrap();
        let f = p.proc("f").unwrap();
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.arrays.len(), 1);
        assert_eq!(f.scalars.len(), 2);
        assert_eq!(f.array_ty(Var::new("a")), Some(ScalarTy::Int));
        assert_eq!(f.array_ty(Var::new("b")), Some(ScalarTy::Real));
    }

    #[test]
    fn parses_loop_with_label_and_step() {
        let src = "proc main(n: int) { array a[100];
            for@L1 i = 1 to n step 2 { a[i] = 0.0; } }";
        let p = parse_program(src).unwrap();
        match &p.procedures[0].body.stmts[0] {
            Stmt::For(l) => {
                assert_eq!(l.label.as_deref(), Some("L1"));
                assert_eq!(l.step, 2);
                assert_eq!(l.var, Var::new("i"));
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let src = "proc main(x: int) { var y: int;
            if (x > 0) { y = 1; } else if (x < 0) { y = -1; } else { y = 0; } }";
        let p = parse_program(src).unwrap();
        match &p.procedures[0].body.stmts[0] {
            Stmt::If { else_blk, .. } => {
                assert!(matches!(else_blk.stmts[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_boolean_operators_and_parens() {
        let b = parse_bool_expr("not (x > 1 or y < 2) and z == 3").unwrap();
        assert!(matches!(b, BoolExpr::And(..)));
        // Parenthesized arithmetic operand of a comparison.
        let c = parse_bool_expr("(x + 1) * 2 > y").unwrap();
        assert!(matches!(c, BoolExpr::Cmp(CmpOp::Gt, ..)));
    }

    #[test]
    fn parses_call_args() {
        let src = "proc sub(a: array[10], n: int) { }
                   proc main(n: int) { array a[10]; call sub(a, n); }";
        let p = parse_program(src).unwrap();
        match &p.proc("main").unwrap().body.stmts[0] {
            Stmt::Call { callee, args } => {
                assert_eq!(callee, "sub");
                assert!(matches!(args[0], Arg::Array(_)));
                // `n` parses as Array form but the resolver accepts it as
                // a scalar actual bound to a scalar formal.
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn parses_io_and_exit() {
        let src = "proc main(n: int) { var x: int;
            for i = 1 to n { read x; exit when (x > 0); print x; } }";
        let p = parse_program(src).unwrap();
        match &p.procedures[0].body.stmts[0] {
            Stmt::For(l) => {
                assert!(matches!(l.body.stmts[0], Stmt::Read(_)));
                assert!(matches!(l.body.stmts[1], Stmt::ExitWhen(_)));
                assert!(matches!(l.body.stmts[2], Stmt::Print(_)));
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn parses_intrinsics_with_arity_check() {
        assert!(parse_expr("sqrt(x) + min(a, b)").is_ok());
        assert!(parse_expr("sqrt(x, y)").is_err());
        assert!(parse_expr("mystery(x)").is_err());
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Add(_, rhs) => assert!(matches!(*rhs, Expr::Mul(..))),
            other => panic!("expected add, got {other:?}"),
        }
        let e2 = parse_expr("(1 + 2) * 3").unwrap();
        assert!(matches!(e2, Expr::Mul(..)));
    }

    #[test]
    fn pretty_print_round_trip() {
        let src = "proc sub(b: array[50], m: int) {
            for j = 1 to m { b[j] = b[j] + 1.0; }
        }
        proc main(n: int) {
            array a[100, 100];
            array c[50];
            var x: int = 3;
            for@outer i = 2 to n - 1 {
                if (x > 5 and i < n) {
                    a[i, 1] = sqrt(a[i - 1, 1]);
                } else {
                    a[i, 1] = 0.5;
                }
                call sub(c, 50);
            }
        }";
        let p1 = parse_program(src).unwrap();
        let text = crate::pretty::program_to_string(&p1);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(
            p1, p2,
            "pretty output must re-parse to the same AST:\n{text}"
        );
    }

    #[test]
    fn reports_error_position() {
        let err = parse_program("proc main() { x = ; }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.col > 1);
    }

    #[test]
    fn rejects_bad_step() {
        assert!(parse_program("proc m(n: int) { for i = 1 to n step 0 { } }").is_err());
        assert!(parse_program("proc m(n: int) { for i = 1 to n step x { } }").is_err());
    }

    #[test]
    fn parses_negative_step() {
        let p =
            parse_program("proc m(n: int) { array a[10]; for i = n to 1 step -1 { a[i] = 0.0; } }")
                .unwrap();
        match &p.procedures[0].body.stmts[0] {
            Stmt::For(l) => assert_eq!(l.step, -1),
            other => panic!("expected loop, got {other:?}"),
        }
        // Pretty output re-parses to the same AST.
        let text = crate::pretty::program_to_string(&p);
        assert_eq!(parse_program(&text).unwrap(), p);
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program("// header\nproc main() { // body\n }").unwrap();
        assert_eq!(p.procedures.len(), 1);
    }
}
