//! Seeded random program generator for fuzzing the analysis/executor
//! pipeline.
//!
//! Programs are resolver-valid and execution-safe by construction:
//! every array subscript goes through `abs(e) % extent + 1`, loop bounds
//! are small constants or the parameter `n`, and there is no I/O or
//! division. The generated shapes are adversarial for the analysis —
//! non-affine subscripts, guarded writes under correlated and
//! uncorrelated conditions, nested loops, scalar recurrences — which
//! makes them ideal inputs for differential testing (any variant's plan
//! must reproduce the sequential result).

use crate::ast::*;
use crate::build;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunables for the generator.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Top-level statements.
    pub stmts: usize,
    /// Maximum statement nesting depth.
    pub depth: usize,
    /// Extent of the real arrays `g0`, `g1` and the int array `k0`.
    pub extent: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            stmts: 6,
            depth: 3,
            extent: 16,
        }
    }
}

struct Gen {
    rng: StdRng,
    cfg: GenConfig,
    /// Loop indices currently in scope.
    indices: Vec<&'static str>,
}

const INDEX_NAMES: [&str; 4] = ["i", "j", "l", "q"];

impl Gen {
    /// A random integer expression over in-scope scalars.
    fn int_expr(&mut self, depth: usize) -> Expr {
        let choice = if depth == 0 {
            self.rng.gen_range(0..3)
        } else {
            self.rng.gen_range(0..6)
        };
        match choice {
            0 => Expr::int(self.rng.gen_range(-9..=9)),
            1 => {
                if self.rng.gen_bool(0.5) {
                    Expr::scalar("x")
                } else {
                    Expr::scalar("xv")
                }
            }
            2 => {
                if self.indices.is_empty() {
                    Expr::scalar("n")
                } else {
                    let idx = self.indices[self.rng.gen_range(0..self.indices.len())];
                    Expr::scalar(idx)
                }
            }
            3 => Expr::Add(
                Box::new(self.int_expr(depth - 1)),
                Box::new(self.int_expr(depth - 1)),
            ),
            4 => Expr::Sub(
                Box::new(self.int_expr(depth - 1)),
                Box::new(self.int_expr(depth - 1)),
            ),
            _ => Expr::elem("k0", vec![self.bounded_index(depth - 1, self.cfg.extent)]),
        }
    }

    /// `abs(e) % extent + 1` — always a valid 1-based subscript.
    fn bounded_index(&mut self, depth: usize, extent: usize) -> Expr {
        let e = self.int_expr(depth);
        Expr::Add(
            Box::new(Expr::Mod(
                Box::new(Expr::Call(Intrinsic::Abs, vec![e])),
                Box::new(Expr::int(extent as i64)),
            )),
            Box::new(Expr::int(1)),
        )
    }

    /// Sometimes affine (analyzable), sometimes bounded-opaque.
    fn subscript(&mut self, depth: usize) -> Expr {
        if !self.indices.is_empty() && self.rng.gen_bool(0.6) {
            // Affine in a live index, clamped to the extent by
            // construction of the loop bounds.
            let idx = self.indices[self.rng.gen_range(0..self.indices.len())];
            let off = self.rng.gen_range(0..2);
            if off == 0 {
                Expr::scalar(idx)
            } else {
                Expr::Add(Box::new(Expr::scalar(idx)), Box::new(Expr::int(off)))
            }
        } else {
            self.bounded_index(depth.min(1), self.cfg.extent)
        }
    }

    fn real_expr(&mut self, depth: usize) -> Expr {
        let choice = if depth == 0 {
            self.rng.gen_range(0..3)
        } else {
            self.rng.gen_range(0..6)
        };
        match choice {
            0 => Expr::real(self.rng.gen_range(-40..=40) as f64 * 0.25),
            1 => Expr::scalar("r"),
            2 => {
                let s = self.subscript(depth);
                let arr = if self.rng.gen_bool(0.5) { "g0" } else { "g1" };
                Expr::elem(arr, vec![s])
            }
            3 => Expr::Add(
                Box::new(self.real_expr(depth - 1)),
                Box::new(self.real_expr(depth - 1)),
            ),
            4 => Expr::Mul(
                Box::new(self.real_expr(depth - 1)),
                Box::new(Expr::real(0.5)),
            ),
            _ => Expr::Call(
                Intrinsic::Sqrt,
                vec![Expr::Call(Intrinsic::Abs, vec![self.real_expr(depth - 1)])],
            ),
        }
    }

    fn cond(&mut self, depth: usize) -> BoolExpr {
        let base = BoolExpr::Cmp(
            match self.rng.gen_range(0..6) {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                _ => CmpOp::Ge,
            },
            self.int_expr(depth.min(1)),
            self.int_expr(depth.min(1)),
        );
        if depth > 0 && self.rng.gen_bool(0.3) {
            let other = self.cond(depth - 1);
            if self.rng.gen_bool(0.5) {
                BoolExpr::and(base, other)
            } else {
                BoolExpr::or(base, other)
            }
        } else {
            base
        }
    }

    fn stmt(&mut self, depth: usize) -> Stmt {
        let choice = if depth == 0 || self.indices.len() >= INDEX_NAMES.len() {
            self.rng.gen_range(0..4)
        } else {
            self.rng.gen_range(0..7)
        };
        match choice {
            0 => {
                let s = self.subscript(depth);
                let e = self.real_expr(depth.min(2));
                let arr = if self.rng.gen_bool(0.5) { "g0" } else { "g1" };
                build::store(arr, vec![s], e)
            }
            1 => build::assign("r", self.real_expr(depth.min(2))),
            2 => build::assign("xv", self.int_expr(depth.min(2))),
            3 => {
                let c = self.cond(1);
                let body = self.block(depth.saturating_sub(1), 1..3);
                if self.rng.gen_bool(0.4) {
                    let els = self.block(depth.saturating_sub(1), 1..2);
                    build::if_else(c, body, els)
                } else {
                    build::if_then(c, body)
                }
            }
            _ => {
                // A nested loop over a fresh index. Bounds keep affine
                // `idx + 1` subscripts inside the declared extent.
                let var = INDEX_NAMES[self.indices.len()];
                let hi = if self.rng.gen_bool(0.5) {
                    Expr::scalar("n")
                } else {
                    Expr::int(self.rng.gen_range(2..=self.cfg.extent as i64 - 1))
                };
                self.indices.push(var);
                let body = self.block(depth.saturating_sub(1), 1..4);
                self.indices.pop();
                build::for_loop(var, Expr::int(1), hi, body)
            }
        }
    }

    fn block(&mut self, depth: usize, count: std::ops::Range<usize>) -> Vec<Stmt> {
        let n = self.rng.gen_range(count);
        (0..n).map(|_| self.stmt(depth)).collect()
    }
}

/// Generate a deterministic random program for `seed`.
///
/// The entry signature is `main(n: int, x: int)`; callers should pass
/// `n <= extent - 1` so affine `idx + 1` subscripts stay in bounds.
pub fn random_program(seed: u64, cfg: GenConfig) -> Program {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        cfg,
        indices: Vec::new(),
    };
    let stmts = g.block(cfg.depth, cfg.stmts..cfg.stmts + 1);

    build::program(vec![build::ProcBuilder::new("main")
        .int_param("n")
        .int_param("x")
        .array("g0", vec![Expr::int(cfg.extent as i64)])
        .array("g1", vec![Expr::int(cfg.extent as i64)])
        .int_array("k0", vec![Expr::int(cfg.extent as i64)])
        .int_var("xv")
        .real_var("r")
        .stmts(stmts)
        .build()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_resolve_and_round_trip() {
        for seed in 0..50 {
            let prog = random_program(seed, GenConfig::default());
            crate::visit::resolve(&prog)
                .unwrap_or_else(|e| panic!("seed {seed} does not resolve: {e}"));
            let text = crate::pretty::program_to_string(&prog);
            let back = crate::parse::parse_program(&text)
                .unwrap_or_else(|e| panic!("seed {seed} fails re-parse: {e}\n{text}"));
            assert_eq!(prog, back, "seed {seed} round trip");
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = random_program(7, GenConfig::default());
        let b = random_program(7, GenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_program(1, GenConfig::default());
        let b = random_program(2, GenConfig::default());
        assert_ne!(a, b);
    }
}
