//! Randomized agreement tests for the dense fast tier: wherever a
//! [`DenseBox`] answers, the answer must match both the general
//! Fourier–Motzkin path and brute-force enumeration over small boxes.
//! Covers plain windows, stride links, and the tier boundary (coupled
//! systems that must fall through). Cases come from fixed seeds so every
//! run checks the same systems.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use padfa_omega::{Constraint, DenseBox, Disjunction, Limits, LinExpr, System, Var};

const CASES: u64 = 192;

fn vx() -> Var {
    Var::new("dx")
}
fn vy() -> Var {
    Var::new("dy")
}
fn vw() -> Var {
    Var::new("dw")
}

/// A copy of `sys` with the dense cache stripped, so lattice queries on
/// it exercise the general Fourier–Motzkin path unconditionally.
fn stripped(sys: &System) -> System {
    System::from_raw_parts(sys.constraints().to_vec(), sys.is_contradiction(), false)
}

fn stripped_region(d: &Disjunction) -> Disjunction {
    let mut out = Disjunction::from_raw_parts(d.systems().iter().map(stripped).collect(), true);
    if !d.is_exact() {
        out.set_inexact();
    }
    out
}

/// A random single-variable constraint (the dense-classifiable shape).
fn single_var_constraint(rng: &mut StdRng, v: Var) -> Constraint {
    let a = loop {
        let a = rng.gen_range(-3i64..=3);
        if a != 0 {
            break a;
        }
    };
    let k = rng.gen_range(-8i64..=8);
    let expr = LinExpr::term(v, a) + LinExpr::constant(k);
    if rng.gen_bool(0.25) {
        Constraint::eq0(expr)
    } else {
        Constraint::geq0(expr)
    }
}

/// A random box-shaped system over `dx`/`dy`: only single-variable
/// constraints, so classification succeeds whenever simplify keeps it.
fn random_box_system(rng: &mut StdRng) -> System {
    let n = rng.gen_range(1usize..6);
    System::from_constraints(
        (0..n)
            .map(|_| {
                let v = if rng.gen_bool(0.5) { vx() } else { vy() };
                single_var_constraint(rng, v)
            })
            .collect::<Vec<_>>(),
    )
}

/// A random *bounded* box system: both ends of each variable's window
/// are pinned inside `[-10, 10]`, so brute-force enumeration over that
/// box is conclusive in both directions.
fn random_bounded_system(rng: &mut StdRng) -> System {
    let mut cs = Vec::new();
    for v in [vx(), vy()] {
        let lo = rng.gen_range(-10i64..=10);
        let hi = rng.gen_range(-10i64..=10);
        cs.push(Constraint::geq(LinExpr::var(v), LinExpr::constant(lo)));
        cs.push(Constraint::leq(LinExpr::var(v), LinExpr::constant(hi)));
    }
    for _ in 0..rng.gen_range(0usize..3) {
        let v = if rng.gen_bool(0.5) { vx() } else { vy() };
        cs.push(single_var_constraint(rng, v));
    }
    System::from_constraints(cs)
}

/// A random strided system: `dx == s·dw + c` with the witness `dw`
/// bounded on both sides, plus optional extra windows on `dx`.
fn random_strided_system(rng: &mut StdRng) -> System {
    let s = loop {
        let s = rng.gen_range(-4i64..=4);
        if s != 0 {
            break s;
        }
    };
    let c = rng.gen_range(-5i64..=5);
    let wl = rng.gen_range(-6i64..=6);
    let wh = rng.gen_range(-6i64..=6);
    let mut cs = vec![
        // dx - s·dw - c == 0
        Constraint::eq0(LinExpr::term(vx(), 1) + LinExpr::term(vw(), -s) + LinExpr::constant(-c)),
        Constraint::geq(LinExpr::var(vw()), LinExpr::constant(wl)),
        Constraint::leq(LinExpr::var(vw()), LinExpr::constant(wh)),
    ];
    for _ in 0..rng.gen_range(0usize..3) {
        cs.push(single_var_constraint(rng, vx()));
    }
    System::from_constraints(cs)
}

/// Does any integer point in the box `[-b, b]²` (plus witness range for
/// strided systems) satisfy the system?
fn box_has_point(sys: &System, b: i64) -> bool {
    let needs_w = sys.mentions(vw());
    let wr: Vec<i64> = if needs_w { (-8..=8).collect() } else { vec![0] };
    for x in -b..=b {
        for y in -b..=b {
            for &w in &wr {
                let env = |v: Var| {
                    if v == vx() {
                        Some(x)
                    } else if v == vy() {
                        Some(y)
                    } else if v == vw() {
                        Some(w)
                    } else {
                        None
                    }
                };
                if sys.contains(&env) == Some(true) {
                    return true;
                }
            }
        }
    }
    false
}

#[test]
fn dense_emptiness_agrees_with_fm() {
    let mut classified = 0u32;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD3A5E + seed);
        let sys = random_box_system(&mut rng);
        let Some(d) = sys.dense_box() else { continue };
        classified += 1;
        assert_eq!(
            d.is_empty(),
            stripped(&sys).is_empty(Limits::default()),
            "dense and FM disagree on emptiness of {sys}"
        );
    }
    assert!(classified > 50, "generator stopped producing dense systems");
}

#[test]
fn dense_emptiness_agrees_with_enumeration() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB0DED + seed);
        let sys = random_bounded_system(&mut rng);
        let Some(d) = sys.dense_box() else { continue };
        // Bounded windows inside [-10, 10]: enumeration is conclusive.
        assert_eq!(
            d.is_empty(),
            !box_has_point(&sys, 10),
            "dense emptiness wrong for bounded {sys}"
        );
    }
}

#[test]
fn strided_emptiness_agrees_with_fm_and_enumeration() {
    let mut classified = 0u32;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x57A1DE + seed);
        let sys = random_strided_system(&mut rng);
        let Some(d) = sys.dense_box() else { continue };
        classified += 1;
        let fm = stripped(&sys).is_empty(Limits::default());
        assert_eq!(d.is_empty(), fm, "dense vs FM on strided {sys}");
        // dw ∈ [-6, 6] and |s| ≤ 4, |c| ≤ 5 keep dx within [-29, 29]:
        // enumeration over that window is conclusive.
        assert_eq!(
            d.is_empty(),
            !box_has_point(&sys, 30),
            "dense vs enumeration on strided {sys}"
        );
    }
    assert!(
        classified > 50,
        "stride generator stopped classifying dense"
    );
}

#[test]
fn dense_subset_agrees_with_fm_and_enumeration() {
    let limits = Limits::default();
    let mut answered = 0u32;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5B5E7 + seed);
        let a = random_bounded_system(&mut rng);
        let b = random_bounded_system(&mut rng);
        let da = Disjunction::from_system(a.clone());
        let db = Disjunction::from_system(b.clone());
        let Some(dense) = da.subset_of_dense(&db) else {
            continue;
        };
        answered += 1;
        let general = stripped_region(&da).subset_of(&stripped_region(&db), limits);
        assert_eq!(dense, general, "dense vs FM subset: {a} ⊆ {b}");
        // Enumeration over the pinned [-10, 10] windows is conclusive.
        let mut brute = true;
        'outer: for x in -10..=10 {
            for y in -10..=10 {
                let env = |v: Var| {
                    if v == vx() {
                        Some(x)
                    } else if v == vy() {
                        Some(y)
                    } else {
                        None
                    }
                };
                if a.contains(&env) == Some(true) && b.contains(&env) != Some(true) {
                    brute = false;
                    break 'outer;
                }
            }
        }
        assert_eq!(dense, brute, "dense vs enumeration subset: {a} ⊆ {b}");
    }
    assert!(answered > 50, "subset dispatcher stopped answering");
}

#[test]
fn uncached_subset_agrees_with_fm_and_enumeration() {
    // Operands whose dense cache was invalidated (constraints conjoined
    // after classification — the common post-`and` shape in loop
    // summarization) must still get a dense answer via on-the-fly
    // classification, and it must match both FM and enumeration.
    let limits = Limits::default();
    let mut answered = 0u32;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0FF_CAC4E + seed);
        let a = random_bounded_system(&mut rng);
        let b = random_bounded_system(&mut rng);
        let da = stripped_region(&Disjunction::from_system(a.clone()));
        let db = stripped_region(&Disjunction::from_system(b.clone()));
        assert!(
            da.systems().iter().all(|s| !s.has_dense()),
            "stripping failed"
        );
        let Some(dense) = da.subset_of_dense(&db) else {
            continue;
        };
        answered += 1;
        let general = da.subset_of(&db, limits);
        assert_eq!(dense, general, "uncached dense vs FM subset: {a} ⊆ {b}");
        // Enumeration over the pinned [-10, 10] windows is conclusive.
        let mut brute = true;
        'outer: for x in -10..=10 {
            for y in -10..=10 {
                let env = |v: Var| {
                    if v == vx() {
                        Some(x)
                    } else if v == vy() {
                        Some(y)
                    } else {
                        None
                    }
                };
                if a.contains(&env) == Some(true) && b.contains(&env) != Some(true) {
                    brute = false;
                    break 'outer;
                }
            }
        }
        assert_eq!(
            dense, brute,
            "uncached dense vs enumeration subset: {a} ⊆ {b}"
        );
    }
    assert!(
        answered > 50,
        "on-the-fly classification stopped answering stripped operands"
    );
}

#[test]
fn dense_disjointness_agrees_with_fm_and_enumeration() {
    let limits = Limits::default();
    let mut answered = 0u32;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD15101 + seed);
        let a = random_bounded_system(&mut rng);
        // Random bounded boxes mostly overlap, which the dispatcher
        // declines; push half the cases apart so the provably-disjoint
        // branch actually fires.
        let b = if seed % 2 == 0 {
            let lo = rng.gen_range(11i64..=20);
            let hi = rng.gen_range(lo..=25);
            System::from_constraints(vec![
                Constraint::geq(LinExpr::var(vx()), LinExpr::constant(lo)),
                Constraint::leq(LinExpr::var(vx()), LinExpr::constant(hi)),
            ])
        } else {
            random_bounded_system(&mut rng)
        };
        let da = Disjunction::from_system(a.clone());
        let db = Disjunction::from_system(b.clone());
        let Some(meet) = da.intersect_dense_empty(&db) else {
            continue;
        };
        answered += 1;
        // The dense dispatcher only fires on provable disjointness, and
        // its result must be byte-identical to the general one.
        assert!(meet.systems().is_empty() && meet.is_exact());
        let general = stripped_region(&da).intersect(&stripped_region(&db), limits);
        assert_eq!(meet, general, "dense vs FM intersect: {a} ∩ {b}");
        // No common point may exist in the conclusive box.
        for x in -10..=10i64 {
            for y in -10..=10i64 {
                let env = |v: Var| {
                    if v == vx() {
                        Some(x)
                    } else if v == vy() {
                        Some(y)
                    } else {
                        None
                    }
                };
                assert!(
                    !(a.contains(&env) == Some(true) && b.contains(&env) == Some(true)),
                    "({x}, {y}) is in both {a} and {b}"
                );
            }
        }
    }
    assert!(answered > 20, "disjointness dispatcher stopped answering");
}

#[test]
fn coupled_systems_stay_general_and_still_agree() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0091ED + seed);
        // Genuinely coupled shapes must never classify: two-variable
        // inequalities and non-unit two-variable equalities.
        let a = rng.gen_range(2i64..=3);
        let b = loop {
            let b = rng.gen_range(2i64..=3);
            if padfa_omega::Constraint::eq0(LinExpr::term(vx(), a) + LinExpr::term(vy(), b))
                .expr
                .terms()
                .count()
                == 2
            {
                break b;
            }
        };
        let coupled_geq = Constraint::geq0(
            LinExpr::term(vx(), 1)
                + LinExpr::term(vy(), 1)
                + LinExpr::constant(rng.gen_range(-8i64..=8)),
        );
        let coupled_eq = Constraint::eq0(
            LinExpr::term(vx(), a)
                + LinExpr::term(vy(), b)
                + LinExpr::constant(rng.gen_range(-8i64..=8)),
        );
        assert!(DenseBox::classify(std::slice::from_ref(&coupled_geq)).is_none());
        assert!(DenseBox::classify(std::slice::from_ref(&coupled_eq)).is_none());

        // A mixed system (coupled + windows) may or may not classify
        // after simplification rewrites it; either way the tiers agree.
        let mut cs = vec![if rng.gen_bool(0.5) {
            coupled_geq
        } else {
            coupled_eq
        }];
        for _ in 0..rng.gen_range(1usize..4) {
            let v = if rng.gen_bool(0.5) { vx() } else { vy() };
            cs.push(single_var_constraint(&mut rng, v));
        }
        let sys = System::from_constraints(cs);
        if let Some(d) = sys.dense_box() {
            assert_eq!(
                d.is_empty(),
                stripped(&sys).is_empty(Limits::default()),
                "tier-boundary disagreement on {sys}"
            );
        }
    }
}

#[test]
fn forced_general_env_is_not_set_in_tests() {
    // The agreement tests above exercise the dense tier; they are
    // vacuous under the kill switch. Fail loudly instead of silently
    // passing.
    assert!(
        !padfa_omega::dense::force_general(),
        "unset PADFA_FORCE_GENERAL_TIER when running the test suite"
    );
}
