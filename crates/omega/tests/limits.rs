//! Behavior at the combinatorial limits: operations must stay total and
//! degrade to sound over-approximations when budgets are exceeded.

use padfa_omega::{Constraint, Disjunction, Limits, LinExpr, System, Var};

fn interval(v: Var, lo: i64, hi: i64) -> System {
    System::from_constraints([
        Constraint::geq(LinExpr::var(v), LinExpr::constant(lo)),
        Constraint::leq(LinExpr::var(v), LinExpr::constant(hi)),
    ])
}

#[test]
fn subtract_falls_back_inexact_at_disjunct_cap() {
    let d = Var::new("lm");
    let big = Disjunction::from_system(interval(d, 1, 1000));
    // Subtracting many holes splits the region; with a tiny budget the
    // operation must give up and return an inexact over-approximation.
    let mut holes = Disjunction::empty();
    for k in 0..20 {
        holes.push(interval(d, 10 + 40 * k, 12 + 40 * k));
    }
    let tight = Limits {
        max_disjuncts: 4,
        ..Limits::default()
    };
    let r = big.subtract(&holes, tight);
    assert!(!r.is_exact(), "capped subtraction must flag inexact");
    // Over-approximation: every point of the true difference remains.
    for x in [1i64, 5, 100, 999] {
        if !(10..=12).contains(&x) {
            assert_eq!(r.contains(&|_| Some(x)), Some(true), "lost {x}");
        }
    }
}

#[test]
fn subtract_exact_under_generous_limits() {
    let d = Var::new("lm2");
    let big = Disjunction::from_system(interval(d, 1, 100));
    let mut holes = Disjunction::empty();
    for k in 0..3 {
        holes.push(interval(d, 10 + 30 * k, 12 + 30 * k));
    }
    let r = big.subtract(&holes, Limits::default());
    assert!(r.is_exact());
    assert_eq!(r.contains(&|_| Some(11)), Some(false));
    assert_eq!(r.contains(&|_| Some(41)), Some(false));
    assert_eq!(r.contains(&|_| Some(50)), Some(true));
}

#[test]
fn intersect_caps_and_flags() {
    let d = Var::new("lm3");
    let mut a = Disjunction::empty();
    let mut b = Disjunction::empty();
    for k in 0..8 {
        a.push(interval(d, 10 * k, 10 * k + 5));
        b.push(interval(d, 10 * k + 3, 10 * k + 8));
    }
    let tight = Limits {
        max_disjuncts: 3,
        ..Limits::default()
    };
    let r = a.intersect(&b, tight);
    assert!(!r.is_exact());
    assert!(r.len() <= 3);
}

#[test]
fn projection_constraint_cap_is_sound() {
    // A dense system whose eliminations explode: with a small constraint
    // budget the projection must still keep every integer point.
    let vars: Vec<Var> = (0..4).map(|i| Var::new(&format!("lmv{i}"))).collect();
    let mut cs = Vec::new();
    for (i, &vi) in vars.iter().enumerate() {
        for &vj in &vars[i + 1..] {
            cs.push(Constraint::geq(
                LinExpr::var(vi) + LinExpr::var(vj),
                LinExpr::constant(-3),
            ));
            cs.push(Constraint::leq(
                LinExpr::var(vi) + LinExpr::term(vj, 2),
                LinExpr::constant(9),
            ));
        }
    }
    let sys = System::from_constraints(cs);
    let tight = Limits {
        max_constraints: 4,
        ..Limits::default()
    };
    let keep = vars[0];
    let p = sys.project_out(&vars[1..], tight);
    // Sample a few x values that have integer extensions in the original
    // system; they must survive projection.
    for x in -1..=2 {
        let mut found = false;
        for a in -3..=3 {
            for b in -3..=3 {
                for c in -3..=3 {
                    let env = |v: Var| {
                        if v == vars[0] {
                            Some(x)
                        } else if v == vars[1] {
                            Some(a)
                        } else if v == vars[2] {
                            Some(b)
                        } else if v == vars[3] {
                            Some(c)
                        } else {
                            None
                        }
                    };
                    if sys.contains(&env) == Some(true) {
                        found = true;
                    }
                }
            }
        }
        if found {
            assert_eq!(
                p.system
                    .contains(&|v| if v == keep { Some(x) } else { None }),
                Some(true),
                "capped projection lost x = {x}"
            );
        }
    }
}
