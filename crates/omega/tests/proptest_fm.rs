//! Property tests pitting the Fourier–Motzkin engine against brute-force
//! enumeration over small boxes: emptiness must never claim "empty" for
//! a satisfiable system, projection must never lose an integer point,
//! and implication must never claim more than point-wise truth.

use proptest::prelude::*;

use padfa_omega::{Constraint, LinExpr, Limits, System, Var};

const BOX: i64 = 6;

fn vx() -> Var {
    Var::new("qx")
}
fn vy() -> Var {
    Var::new("qy")
}

/// A random constraint over two variables with small coefficients.
fn constraint_strategy() -> impl Strategy<Value = Constraint> {
    (-3i64..=3, -3i64..=3, -8i64..=8, prop::bool::ANY).prop_filter_map(
        "non-trivial",
        |(a, b, c, eq)| {
            if a == 0 && b == 0 {
                return None;
            }
            let expr = LinExpr::term(vx(), a) + LinExpr::term(vy(), b) + LinExpr::constant(c);
            Some(if eq {
                Constraint::eq0(expr)
            } else {
                Constraint::geq0(expr)
            })
        },
    )
}

fn system_strategy() -> impl Strategy<Value = System> {
    prop::collection::vec(constraint_strategy(), 1..5).prop_map(System::from_constraints)
}

/// All integer points of the system within the test box.
fn box_points(sys: &System) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    for x in -BOX..=BOX {
        for y in -BOX..=BOX {
            let env = |v: Var| {
                if v == vx() {
                    Some(x)
                } else if v == vy() {
                    Some(y)
                } else {
                    None
                }
            };
            if sys.contains(&env) == Some(true) {
                out.push((x, y));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn emptiness_never_lies(sys in system_strategy()) {
        // If the engine says empty, no point in the box may satisfy it.
        if sys.is_empty(Limits::default()) {
            prop_assert!(
                box_points(&sys).is_empty(),
                "claimed empty but {:?} satisfies {sys}",
                box_points(&sys)[0]
            );
        }
    }

    #[test]
    fn projection_keeps_every_point(sys in system_strategy()) {
        // Projecting y out must keep the x-coordinate of every point.
        let p = sys.project_out(&[vy()], Limits::default());
        for (x, _) in box_points(&sys) {
            prop_assert_eq!(
                p.system.contains(&|v| if v == vx() { Some(x) } else { None }),
                Some(true),
                "projection of {} lost x = {}", sys, x
            );
        }
    }

    #[test]
    fn exact_projection_adds_no_bounded_points(sys in system_strategy()) {
        // When FM reports the projection exact, an x with no pre-image in
        // a generous box must not appear unless the pre-image lies
        // outside the box — detect the common case where y is bounded by
        // constraints with unit coefficients.
        let p = sys.project_out(&[vy()], Limits::default());
        if !p.exact {
            return Ok(());
        }
        // Only check systems where y is explicitly boxed with unit
        // coefficients (so every pre-image lies within +-(BOX*6+8)).
        let y_unit_bounded = sys.constraints().iter().any(|c| c.expr.coeff(vy()) == 1)
            && sys.constraints().iter().any(|c| c.expr.coeff(vy()) == -1);
        if !y_unit_bounded {
            return Ok(());
        }
        let points = box_points(&sys);
        // Pre-images satisfy |y| <= max|coeff|*BOX + max|const| = 3*6+8.
        let wide = 6 * BOX + 10;
        for x in -BOX..=BOX {
            let projected = p
                .system
                .contains(&|v| if v == vx() { Some(x) } else { None })
                == Some(true);
            if projected {
                let has_preimage = (-wide..=wide).any(|y| {
                    sys.contains(&|v| {
                        if v == vx() {
                            Some(x)
                        } else if v == vy() {
                            Some(y)
                        } else {
                            None
                        }
                    }) == Some(true)
                });
                prop_assert!(
                    has_preimage,
                    "exact projection of {} invented x = {} (points: {:?})",
                    sys, x, points
                );
            }
        }
    }

    #[test]
    fn implication_never_lies(sys in system_strategy(), c in constraint_strategy()) {
        if sys.implies(&c, Limits::default()) {
            for (x, y) in box_points(&sys) {
                let env = |v: Var| {
                    if v == vx() { Some(x) } else if v == vy() { Some(y) } else { None }
                };
                prop_assert_eq!(
                    c.eval(&env),
                    Some(true),
                    "{} claims to imply {} but ({}, {}) violates it", sys, c, x, y
                );
            }
        }
    }

    #[test]
    fn and_is_intersection(a in system_strategy(), b in system_strategy()) {
        let both = a.and(&b);
        let pa = box_points(&a);
        let pb = box_points(&b);
        let pboth = box_points(&both);
        for pt in &pboth {
            prop_assert!(pa.contains(pt) && pb.contains(pt));
        }
        for pt in &pa {
            if pb.contains(pt) {
                prop_assert!(pboth.contains(pt), "and() lost {:?}", pt);
            }
        }
    }

    #[test]
    fn simplify_preserves_semantics(sys in system_strategy()) {
        // from_constraints already simplifies; doing it again must not
        // change membership.
        let mut again = sys.clone();
        again.simplify();
        for x in -BOX..=BOX {
            for y in -BOX..=BOX {
                let env = |v: Var| {
                    if v == vx() { Some(x) } else if v == vy() { Some(y) } else { None }
                };
                prop_assert_eq!(sys.contains(&env), again.contains(&env));
            }
        }
    }
}
