//! Randomized tests pitting the Fourier–Motzkin engine against
//! brute-force enumeration over small boxes: emptiness must never claim
//! "empty" for a satisfiable system, projection must never lose an
//! integer point, and implication must never claim more than point-wise
//! truth. Cases are generated from fixed seeds so every run checks the
//! same systems.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use padfa_omega::{Constraint, Limits, LinExpr, System, Var};

const BOX: i64 = 6;
const CASES: u64 = 128;

fn vx() -> Var {
    Var::new("qx")
}
fn vy() -> Var {
    Var::new("qy")
}

/// A random constraint over two variables with small coefficients.
fn random_constraint(rng: &mut StdRng) -> Constraint {
    loop {
        let a = rng.gen_range(-3i64..=3);
        let b = rng.gen_range(-3i64..=3);
        if a == 0 && b == 0 {
            continue;
        }
        let c = rng.gen_range(-8i64..=8);
        let expr = LinExpr::term(vx(), a) + LinExpr::term(vy(), b) + LinExpr::constant(c);
        return if rng.gen_bool(0.5) {
            Constraint::eq0(expr)
        } else {
            Constraint::geq0(expr)
        };
    }
}

fn random_system(rng: &mut StdRng) -> System {
    let n = rng.gen_range(1usize..5);
    System::from_constraints((0..n).map(|_| random_constraint(rng)).collect::<Vec<_>>())
}

/// All integer points of the system within the test box.
fn box_points(sys: &System) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    for x in -BOX..=BOX {
        for y in -BOX..=BOX {
            let env = |v: Var| {
                if v == vx() {
                    Some(x)
                } else if v == vy() {
                    Some(y)
                } else {
                    None
                }
            };
            if sys.contains(&env) == Some(true) {
                out.push((x, y));
            }
        }
    }
    out
}

#[test]
fn emptiness_never_lies() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE4E5 + seed);
        let sys = random_system(&mut rng);
        // If the engine says empty, no point in the box may satisfy it.
        if sys.is_empty(Limits::default()) {
            assert!(
                box_points(&sys).is_empty(),
                "claimed empty but {:?} satisfies {sys}",
                box_points(&sys)[0]
            );
        }
    }
}

#[test]
fn projection_keeps_every_point() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9120 + seed);
        let sys = random_system(&mut rng);
        // Projecting y out must keep the x-coordinate of every point.
        let p = sys.project_out(&[vy()], Limits::default());
        for (x, _) in box_points(&sys) {
            assert_eq!(
                p.system
                    .contains(&|v| if v == vx() { Some(x) } else { None }),
                Some(true),
                "projection of {} lost x = {}",
                sys,
                x
            );
        }
    }
}

#[test]
fn exact_projection_adds_no_bounded_points() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xEAC7 + seed);
        let sys = random_system(&mut rng);
        // When FM reports the projection exact, an x with no pre-image in
        // a generous box must not appear unless the pre-image lies
        // outside the box — detect the common case where y is bounded by
        // constraints with unit coefficients.
        let p = sys.project_out(&[vy()], Limits::default());
        if !p.exact {
            continue;
        }
        // Only check systems where y is explicitly boxed with unit
        // coefficients (so every pre-image lies within +-(BOX*6+8)).
        let y_unit_bounded = sys.constraints().iter().any(|c| c.expr.coeff(vy()) == 1)
            && sys.constraints().iter().any(|c| c.expr.coeff(vy()) == -1);
        if !y_unit_bounded {
            continue;
        }
        let points = box_points(&sys);
        // Pre-images satisfy |y| <= max|coeff|*BOX + max|const| = 3*6+8.
        let wide = 6 * BOX + 10;
        for x in -BOX..=BOX {
            let projected = p
                .system
                .contains(&|v| if v == vx() { Some(x) } else { None })
                == Some(true);
            if projected {
                let has_preimage = (-wide..=wide).any(|y| {
                    sys.contains(&|v| {
                        if v == vx() {
                            Some(x)
                        } else if v == vy() {
                            Some(y)
                        } else {
                            None
                        }
                    }) == Some(true)
                });
                assert!(
                    has_preimage,
                    "exact projection of {} invented x = {} (points: {:?})",
                    sys, x, points
                );
            }
        }
    }
}

#[test]
fn implication_never_lies() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1312 + seed);
        let sys = random_system(&mut rng);
        let c = random_constraint(&mut rng);
        if sys.implies(&c, Limits::default()) {
            for (x, y) in box_points(&sys) {
                let env = |v: Var| {
                    if v == vx() {
                        Some(x)
                    } else if v == vy() {
                        Some(y)
                    } else {
                        None
                    }
                };
                assert_eq!(
                    c.eval(&env),
                    Some(true),
                    "{} claims to imply {} but ({}, {}) violates it",
                    sys,
                    c,
                    x,
                    y
                );
            }
        }
    }
}

#[test]
fn and_is_intersection() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA17D + seed);
        let a = random_system(&mut rng);
        let b = random_system(&mut rng);
        let both = a.and(&b);
        let pa = box_points(&a);
        let pb = box_points(&b);
        let pboth = box_points(&both);
        for pt in &pboth {
            assert!(pa.contains(pt) && pb.contains(pt));
        }
        for pt in &pa {
            if pb.contains(pt) {
                assert!(pboth.contains(pt), "and() lost {:?}", pt);
            }
        }
    }
}

#[test]
fn simplify_preserves_semantics() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x51A9 + seed);
        let sys = random_system(&mut rng);
        // from_constraints already simplifies; doing it again must not
        // change membership.
        let mut again = sys.clone();
        again.simplify();
        for x in -BOX..=BOX {
            for y in -BOX..=BOX {
                let env = |v: Var| {
                    if v == vx() {
                        Some(x)
                    } else if v == vy() {
                        Some(y)
                    } else {
                        None
                    }
                };
                assert_eq!(sys.contains(&env), again.contains(&env));
            }
        }
    }
}
