//! Randomized model tests for the compact `LinExpr` hot path and the
//! cheap unsatisfiability pre-checks.
//!
//! `LinExpr` stores its terms in an inline sorted small-vector that
//! spills to the heap above [`INLINE`] terms; every operation must agree
//! with a naive `BTreeMap` reference model, *especially* at the spill
//! boundary, and equality/hashing must be representation-independent
//! (an expression that spilled and then cancelled back down must equal
//! one that never spilled). `System::quick_unsat` must never call a
//! satisfiable system empty. Cases are generated from fixed seeds so
//! every run checks the same expressions.

use padfa_omega::{Constraint, Limits, LinExpr, System, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

const CASES: u64 = 128;
/// Mirror of the private inline capacity: term counts straddling this
/// value exercise the spill boundary.
const INLINE: usize = 8;

/// The variable pool; more than `INLINE + 2` distinct names, so random
/// expressions can cross the spill threshold.
fn pool() -> Vec<Var> {
    (0..12).map(|i| Var::new(&format!("lx{i}"))).collect()
}

/// Reference model: a sorted map of non-zero coefficients plus a
/// constant, mirroring the documented `LinExpr` semantics.
#[derive(Clone, Default)]
struct Model {
    terms: BTreeMap<Var, i64>,
    konst: i64,
}

impl Model {
    fn add_term(&mut self, v: Var, c: i64) {
        let e = self.terms.entry(v).or_insert(0);
        *e += c;
        if *e == 0 {
            self.terms.remove(&v);
        }
    }

    fn assert_matches(&self, e: &LinExpr, what: &str) {
        assert_eq!(e.konst(), self.konst, "{what}: konst");
        assert_eq!(e.num_terms(), self.terms.len(), "{what}: num_terms");
        let got: Vec<(Var, i64)> = e.terms().collect();
        let want: Vec<(Var, i64)> = self.terms.iter().map(|(&v, &c)| (v, c)).collect();
        assert_eq!(got, want, "{what}: sorted term iteration");
        for &(v, c) in &want {
            assert_eq!(e.coeff(v), c, "{what}: coeff({v})");
            assert!(e.mentions(v), "{what}: mentions({v})");
        }
        assert_eq!(e.is_const(), self.terms.is_empty(), "{what}: is_const");
    }
}

fn hash_of(e: &LinExpr) -> u64 {
    let mut h = DefaultHasher::new();
    e.hash(&mut h);
    h.finish()
}

/// A random (expr, model) pair built from the same operation sequence.
/// `len` bounds the number of add_term operations, so callers can steer
/// the expression across the spill boundary.
fn random_pair(rng: &mut StdRng, vars: &[Var], len: usize) -> (LinExpr, Model) {
    let mut e = LinExpr::zero();
    let mut m = Model::default();
    for _ in 0..len {
        let v = vars[rng.gen_range(0..vars.len())];
        let c = rng.gen_range(-5i64..=5);
        e.add_term(v, c);
        m.add_term(v, c);
    }
    let k = rng.gen_range(-20i64..=20);
    e.add_const(k);
    m.konst += k;
    (e, m)
}

#[test]
fn random_build_matches_btreemap_model() {
    let vars = pool();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE4E5_0001 + seed);
        // Lengths 0..=24 cover pure-inline, boundary, and spilled cases.
        let len = rng.gen_range(0usize..=24);
        let (e, m) = random_pair(&mut rng, &vars, len);
        m.assert_matches(&e, "build");

        // eval agrees with the model under a total environment.
        let env_vals: BTreeMap<Var, i64> =
            vars.iter().map(|&v| (v, rng.gen_range(-9..=9))).collect();
        let env = |v: Var| env_vals.get(&v).copied();
        let want = m.terms.iter().map(|(v, c)| env_vals[v] * c).sum::<i64>() + m.konst;
        assert_eq!(e.eval(&env), Some(want), "eval");
    }
}

#[test]
fn arithmetic_matches_btreemap_model() {
    let vars = pool();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE4E5_0002 + seed);
        let len_a = rng.gen_range(0usize..=12);
        let (a, ma) = random_pair(&mut rng, &vars, len_a);
        let len_b = rng.gen_range(0usize..=12);
        let (b, mb) = random_pair(&mut rng, &vars, len_b);

        let mut m_add = ma.clone();
        for (&v, &c) in &mb.terms {
            m_add.add_term(v, c);
        }
        m_add.konst += mb.konst;
        m_add.assert_matches(&(a.clone() + b.clone()), "add");

        let mut m_sub = ma.clone();
        for (&v, &c) in &mb.terms {
            m_sub.add_term(v, -c);
        }
        m_sub.konst -= mb.konst;
        m_sub.assert_matches(&(a.clone() - b.clone()), "sub");

        let k = rng.gen_range(-4i64..=4);
        let mut m_scaled = Model::default();
        if k != 0 {
            for (&v, &c) in &ma.terms {
                m_scaled.add_term(v, c * k);
            }
            m_scaled.konst = ma.konst * k;
        }
        m_scaled.assert_matches(&a.scaled(k), "scaled");
    }
}

#[test]
fn equality_and_hash_are_representation_independent() {
    let vars = pool();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE4E5_0003 + seed);
        // Target term counts around the spill boundary.
        let n = rng
            .gen_range(INLINE.saturating_sub(2)..=INLINE + 2)
            .min(vars.len());
        let coeffs: Vec<(Var, i64)> = vars[..n]
            .iter()
            .map(|&v| (v, rng.gen_range(1i64..=5)))
            .collect();

        // Route A: insert in a shuffled order, never exceeding n terms.
        let mut order = coeffs.clone();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut a = LinExpr::zero();
        for &(v, c) in &order {
            a.add_term(v, c);
        }

        // Route B: overshoot past the spill threshold with extra terms,
        // then cancel them, leaving the same logical expression (now
        // heap-backed if it ever spilled).
        let mut b = LinExpr::zero();
        for &(v, c) in &coeffs {
            b.add_term(v, c);
        }
        let extras: Vec<Var> = vars[n..].to_vec();
        for &v in &extras {
            b.add_term(v, 7);
        }
        for &v in &extras {
            b.add_term(v, -7);
        }

        assert_eq!(a, b, "seed {seed}: routes must build equal expressions");
        assert_eq!(hash_of(&a), hash_of(&b), "seed {seed}: hashes must agree");
        assert_eq!(
            a.cmp_structural(&b),
            std::cmp::Ordering::Equal,
            "seed {seed}: structural order must agree"
        );
    }
}

// ---- quick_unsat: the fast pre-checks must stay sound. ----

fn qv(i: usize) -> Var {
    Var::new(&format!("qu{i}"))
}

/// A random small system over two variables, biased toward the shapes
/// the pre-checks inspect: single-variable bound windows and equalities
/// with non-trivial coefficient GCDs.
fn random_system(rng: &mut StdRng) -> System {
    let n = rng.gen_range(1usize..=5);
    System::from_constraints(
        (0..n)
            .map(|_| {
                let single = rng.gen_bool(0.5);
                let a = rng.gen_range(-3i64..=3);
                let b = if single { 0 } else { rng.gen_range(-3i64..=3) };
                let (a, b) = if a == 0 && b == 0 { (1, 0) } else { (a, b) };
                let scale = if rng.gen_bool(0.3) {
                    rng.gen_range(2i64..=3)
                } else {
                    1
                };
                let c = rng.gen_range(-8i64..=8);
                let expr = LinExpr::term(qv(0), a * scale)
                    + LinExpr::term(qv(1), b * scale)
                    + LinExpr::constant(c);
                if rng.gen_bool(0.4) {
                    Constraint::eq0(expr)
                } else {
                    Constraint::geq0(expr)
                }
            })
            .collect::<Vec<_>>(),
    )
}

#[test]
fn quick_unsat_never_claims_a_satisfiable_system_empty() {
    const BOX: i64 = 8;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE4E5_0004 + seed);
        let sys = random_system(&mut rng);
        if !sys.quick_unsat() {
            continue;
        }
        // quick_unsat claimed emptiness: the full decision procedure
        // must agree, and brute force must find no integer point.
        assert!(
            sys.is_empty(Limits::default()),
            "seed {seed}: quick_unsat disagrees with Fourier-Motzkin on {sys:?}"
        );
        for x in -BOX..=BOX {
            for y in -BOX..=BOX {
                let env = |v: Var| {
                    if v == qv(0) {
                        Some(x)
                    } else if v == qv(1) {
                        Some(y)
                    } else {
                        None
                    }
                };
                assert_ne!(
                    sys.contains(&env),
                    Some(true),
                    "seed {seed}: quick_unsat lost the point ({x},{y}) of {sys:?}"
                );
            }
        }
    }
}

#[test]
fn quick_unsat_catches_the_targeted_shapes() {
    // Equality GCD: 2x + 2y == 1 has no integer solution.
    let gcd = System::from_constraints([Constraint::eq0(
        LinExpr::term(qv(0), 2) + LinExpr::term(qv(1), 2) + LinExpr::constant(1),
    )]);
    assert!(gcd.quick_unsat());
    assert!(gcd.is_empty(Limits::default()));

    // Single-variable window conflict: x >= 5 and x <= 3.
    let window = System::from_constraints([
        Constraint::geq(LinExpr::var(qv(0)), LinExpr::constant(5)),
        Constraint::leq(LinExpr::var(qv(0)), LinExpr::constant(3)),
    ]);
    assert!(window.quick_unsat());
    assert!(window.is_empty(Limits::default()));

    // Pinned-value divisibility: 3x == 7.
    let pin = System::from_constraints([Constraint::eq0(
        LinExpr::term(qv(0), 3) + LinExpr::constant(-7),
    )]);
    assert!(pin.quick_unsat());
    assert!(pin.is_empty(Limits::default()));

    // A window that pins x to one value, plus an equality excluding it.
    let pinned_conflict = System::from_constraints([
        Constraint::geq(LinExpr::var(qv(0)), LinExpr::constant(4)),
        Constraint::leq(LinExpr::var(qv(0)), LinExpr::constant(4)),
        Constraint::eq(LinExpr::var(qv(0)), LinExpr::constant(9)),
    ]);
    assert!(pinned_conflict.quick_unsat());

    // Satisfiable neighbours of each shape stay undecided or non-empty.
    let sat = System::from_constraints([
        Constraint::geq(LinExpr::var(qv(0)), LinExpr::constant(3)),
        Constraint::leq(LinExpr::var(qv(0)), LinExpr::constant(5)),
        Constraint::eq0(LinExpr::term(qv(0), 2) + LinExpr::constant(-8)),
    ]);
    assert!(!sat.quick_unsat());
    assert!(!sat.is_empty(Limits::default()));
}
