//! Poison-recovering lock acquisition, shared by every crate in the
//! workspace.
//!
//! The analysis catches worker panics (budget unwinds, fault injection)
//! at procedure boundaries and keeps going, so a panic raised while some
//! other code held a lock must not wedge every later acquisition. All
//! the protected structures in this workspace are append-only interners
//! or memo caches whose entries are pure functions of their keys, so a
//! poisoned guard is still structurally sound and adopting the inner
//! value is always safe.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock a mutex, recovering the guard if a previous holder panicked.
#[inline]
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Acquire a read guard, recovering from poisoning.
#[inline]
pub fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Acquire a write guard, recovering from poisoning.
#[inline]
pub fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, RwLock};

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        assert_eq!(*lock(&m), 7);
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let l = std::sync::Arc::new(RwLock::new(3));
        let l2 = std::sync::Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*read(&l), 3);
        *write(&l) = 4;
        assert_eq!(*read(&l), 4);
    }
}
