//! Globally interned variable names.
//!
//! Array data-flow values refer to loop indices, symbolic program
//! variables, and synthetic subscript positions by name. A process-wide
//! interner keeps comparisons cheap (`u32` equality) while letting every
//! crate in the workspace agree on variable identity without threading a
//! context through the whole API.

use crate::sync;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// An interned variable name.
///
/// `Var` is `Copy` and ordered by interning index, giving deterministic
/// (but arbitrary) iteration orders within a single process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

struct Interner {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

static INTERNER: RwLock<Option<Interner>> = RwLock::new(None);
static FRESH: AtomicU32 = AtomicU32::new(0);

/// Crate-internal filler for fixed-size term buffers (`LinExpr`'s inline
/// representation); never observable through the public API.
pub(crate) const PLACEHOLDER: Var = Var(u32::MAX);

/// The interner must stay usable even after a thread panicked while
/// holding the lock (worker panics are caught and recovered from, see
/// `padfa-rt`); the map is append-only, so a poisoned guard is still
/// structurally sound and can be adopted ([`crate::sync`]).
fn read_interner() -> RwLockReadGuard<'static, Option<Interner>> {
    sync::read(&INTERNER)
}

fn write_interner() -> RwLockWriteGuard<'static, Option<Interner>> {
    sync::write(&INTERNER)
}

impl Var {
    /// Intern `name`, returning the same `Var` for the same string.
    pub fn new(name: &str) -> Var {
        {
            let guard = read_interner();
            if let Some(int) = guard.as_ref() {
                if let Some(&id) = int.map.get(name) {
                    return Var(id);
                }
            }
        }
        let mut guard = write_interner();
        let int = guard.get_or_insert_with(|| Interner {
            names: Vec::new(),
            map: HashMap::new(),
        });
        if let Some(&id) = int.map.get(name) {
            return Var(id);
        }
        let id = int.names.len() as u32;
        int.names.push(name.to_string());
        int.map.insert(name.to_string(), id);
        Var(id)
    }

    /// A fresh variable that cannot collide with any source-level name.
    ///
    /// Used for existentials introduced during projection and for the
    /// per-dimension subscript positions of array sections.
    pub fn fresh(prefix: &str) -> Var {
        let n = FRESH.fetch_add(1, Ordering::Relaxed);
        Var::new(&format!("${prefix}{n}"))
    }

    /// The interned name.
    pub fn name(self) -> String {
        let guard = read_interner();
        guard
            .as_ref()
            .and_then(|int| int.names.get(self.0 as usize).cloned())
            .unwrap_or_else(|| format!("?{}", self.0))
    }

    /// Raw interning index (stable within a process).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Whether this variable was created by [`Var::fresh`].
    pub fn is_synthetic(self) -> bool {
        self.name().starts_with('$')
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Var {
        Var::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Var::new("i");
        let b = Var::new("i");
        let c = Var::new("j");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "i");
        assert_eq!(c.name(), "j");
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let a = Var::fresh("s");
        let b = Var::fresh("s");
        assert_ne!(a, b);
        assert!(a.is_synthetic());
        assert!(!Var::new("x").is_synthetic());
    }

    #[test]
    fn from_str_interns() {
        let v: Var = "n".into();
        assert_eq!(v, Var::new("n"));
    }
}
