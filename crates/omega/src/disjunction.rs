//! Unions of constraint systems — the representation of one array region.

use crate::dense::DenseBox;
use crate::{CKind, Constraint, Limits, System, Var};
use std::borrow::Cow;
use std::fmt;

/// A piece's dense summary: the cached box when present, otherwise an
/// on-the-fly classification of its constraints. Identical by
/// construction — [`DenseBox::classify`] is a pure function of the
/// constraint list, and a populated cache is exactly its result (caches
/// are cleared on every constraint mutation).
fn dense_of(s: &System) -> Option<Cow<'_, DenseBox>> {
    if let Some(b) = s.dense_box() {
        return Some(Cow::Borrowed(b));
    }
    if s.is_contradiction() {
        return None;
    }
    DenseBox::classify(s.constraints()).map(Cow::Owned)
}

/// A finite union of convex systems, with an exactness flag.
///
/// `exact = false` means the set is an **over-approximation** of the true
/// set of integer points (it may contain extra points, never fewer).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Disjunction {
    systems: Vec<System>,
    exact: bool,
}

impl Disjunction {
    /// The empty set.
    pub fn empty() -> Disjunction {
        Disjunction {
            systems: Vec::new(),
            exact: true,
        }
    }

    /// The universe.
    pub fn universe() -> Disjunction {
        Disjunction::from_system(System::universe())
    }

    /// A single convex piece.
    pub fn from_system(s: System) -> Disjunction {
        let mut d = Disjunction::empty();
        d.push(s);
        d
    }

    /// Build from several pieces.
    pub fn from_systems(ss: impl IntoIterator<Item = System>) -> Disjunction {
        let mut d = Disjunction::empty();
        for s in ss {
            d.push(s);
        }
        d
    }

    /// Reassemble a region from previously-normalized parts **without**
    /// filtering. The persistence-codec constructor: [`Disjunction::push`]
    /// drops contradictions, so round-tripping a stored region through it
    /// would not be bit-exact. Only pass parts previously obtained from
    /// [`Disjunction::systems`] / [`Disjunction::is_exact`].
    pub fn from_raw_parts(systems: Vec<System>, exact: bool) -> Disjunction {
        Disjunction { systems, exact }
    }

    /// The convex pieces.
    pub fn systems(&self) -> &[System] {
        &self.systems
    }

    /// Whether this region is known exact.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Mark the region as over-approximate.
    pub fn set_inexact(&mut self) {
        self.exact = false;
    }

    /// Returns a copy flagged inexact.
    pub fn inexact(mut self) -> Disjunction {
        self.exact = false;
        self
    }

    /// Number of disjuncts.
    // `is_empty` in this domain means set emptiness (and takes limits),
    // not container emptiness; `is_empty_union` is the container check.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// Syntactic emptiness (no disjuncts at all).
    pub fn is_empty_union(&self) -> bool {
        self.systems.is_empty()
    }

    /// Add one piece, dropping contradictions.
    pub fn push(&mut self, s: System) {
        if !s.is_contradiction() {
            self.systems.push(s);
        }
    }

    /// Sound emptiness: `true` means definitely no integer points.
    pub fn is_empty(&self, limits: Limits) -> bool {
        self.systems.iter().all(|s| s.is_empty(limits))
    }

    /// Union, pruning pieces subsumed by existing ones.
    pub fn union(&self, other: &Disjunction, limits: Limits) -> Disjunction {
        let mut out = self.clone();
        out.exact = self.exact && other.exact;
        for s in &other.systems {
            if s.is_contradiction() {
                continue;
            }
            if out.systems.iter().any(|t| s.subset_of(t, limits)) {
                continue;
            }
            out.systems.retain(|t| !t.subset_of(s, limits));
            out.systems.push(s.clone());
        }
        out
    }

    /// Pairwise intersection. Falls back to a smaller (still sound for
    /// may-regions only after marking inexact) result when the disjunct
    /// cap is hit; in that case the result keeps the first
    /// `limits.max_disjuncts` pieces and is flagged inexact.
    pub fn intersect(&self, other: &Disjunction, limits: Limits) -> Disjunction {
        let mut out = Disjunction::empty();
        out.exact = self.exact && other.exact;
        'outer: for a in &self.systems {
            for b in &other.systems {
                let s = a.and(b);
                if !s.is_contradiction() && !s.is_empty(limits) {
                    out.systems.push(s);
                    if out.systems.len() >= limits.max_disjuncts {
                        out.exact = false;
                        crate::limit_stats::note_overflow();
                        break 'outer;
                    }
                }
            }
        }
        out
    }

    /// Set subtraction `self − other`.
    ///
    /// Exact when every step stays within the disjunct budget; otherwise
    /// the method stops subtracting and returns the current
    /// over-approximation flagged inexact (valid for may-regions, e.g.
    /// exposed reads).
    pub fn subtract(&self, other: &Disjunction, limits: Limits) -> Disjunction {
        let mut cur = self.clone();
        cur.exact = self.exact && other.exact;
        for b in &other.systems {
            let mut next = Disjunction::empty();
            next.exact = cur.exact;
            for a in &cur.systems {
                for piece in subtract_convex(a, b) {
                    if !piece.is_empty(limits) {
                        next.systems.push(piece);
                    }
                }
                if next.systems.len() > limits.max_disjuncts {
                    // Give up: keep the unsubtracted remainder.
                    let mut fallback = cur.clone();
                    fallback.exact = false;
                    crate::limit_stats::note_overflow();
                    return fallback;
                }
            }
            cur = next;
        }
        cur
    }

    /// Sound subset test: `true` means every integer point of `self` is in
    /// `other`.
    pub fn subset_of(&self, other: &Disjunction, limits: Limits) -> bool {
        if !other.exact {
            // `other` may contain extra points; containment in the
            // over-approximation proves nothing about the true set, so
            // only the trivially-empty case is safe.
            return self.is_empty(limits);
        }
        self.subtract(other, limits).is_empty(limits)
    }

    /// Dense-tier subset test. Answers `Some` only in shapes where the
    /// answer is provably identical to [`Disjunction::subset_of`]:
    /// single-piece (or empty) regions whose pieces are box-shaped,
    /// with `other`'s piece witness-free so every subtraction piece the
    /// general path would enumerate is itself box-shaped and decided
    /// exactly. `None` means "run the general path"; it never means
    /// "false".
    ///
    /// A piece whose dense cache was invalidated (constraints were
    /// conjoined after classification, e.g. by loop-context
    /// intersection) is re-classified on the fly: classification is a
    /// pure function of the constraint list, so the answer is the one
    /// the cached summary would have given. The on-the-fly path is
    /// restricted to witness-free boxes on *both* sides — the shape for
    /// which `a ⊆ b` makes every `subtract_convex` complement piece an
    /// empty box (filtered before the disjunct cap can fire) and
    /// `a ⊄ b` leaves a non-empty box FM soundly keeps, so the general
    /// verdict is forced either way.
    pub fn subset_of_dense(&self, other: &Disjunction) -> Option<bool> {
        if self.systems.len() > 1 || other.systems.len() > 1 {
            return None;
        }
        if !other.exact {
            // General path: only emptiness of `self` proves containment
            // in an over-approximation.
            return match self.systems.first() {
                None => Some(true),
                Some(s) => dense_of(s).map(|b| b.is_empty()),
            };
        }
        let Some(a0) = self.systems.first() else {
            // Empty union: the subtraction remainder is empty.
            return Some(true);
        };
        let Some(b0) = other.systems.first() else {
            // Subtracting the exact empty set leaves `self` unchanged.
            return dense_of(a0).map(|b| b.is_empty());
        };
        if let (Some(ba), Some(bb)) = (a0.dense_box(), b0.dense_box()) {
            // Cached-summary path (also handles self-side witnesses).
            return ba.subset_of(bb);
        }
        let ba = dense_of(a0)?;
        let bb = dense_of(b0)?;
        if !ba.witness_free() || !bb.witness_free() {
            return None;
        }
        ba.subset_of(&bb)
    }

    /// Dense-tier intersection, restricted to the one case whose result
    /// bytes are forced: two single-piece witness-free dense regions
    /// that are provably disjoint, for which the general
    /// [`Disjunction::intersect`] always produces the canonical empty
    /// region with the same exactness flag (the conjoined system's
    /// emptiness is decided by per-variable windows either way, and no
    /// disjunct cap can fire on an empty result). Any other shape —
    /// including non-disjoint dense pairs, whose result representation
    /// only the general algorithm defines — returns `None`.
    pub fn intersect_dense_empty(&self, other: &Disjunction) -> Option<Disjunction> {
        if self.systems.len() != 1 || other.systems.len() != 1 {
            return None;
        }
        let ba = self.systems[0].dense_box()?;
        let bb = other.systems[0].dense_box()?;
        if !ba.witness_free() || !bb.witness_free() {
            return None;
        }
        if ba.disjoint(bb)? {
            Some(Disjunction {
                systems: Vec::new(),
                exact: self.exact && other.exact,
            })
        } else {
            None
        }
    }

    /// Project variables out of every piece.
    pub fn project_out(&self, vars: &[Var], limits: Limits) -> Disjunction {
        let mut out = Disjunction::empty();
        out.exact = self.exact;
        for s in &self.systems {
            let p = s.project_out(vars, limits);
            out.exact &= p.exact;
            out.push(p.system);
        }
        out
    }

    /// Substitute `v := e` in every piece.
    pub fn subst(&self, v: Var, e: &crate::LinExpr) -> Disjunction {
        Disjunction {
            systems: self.systems.iter().map(|s| s.subst(v, e)).collect(),
            exact: self.exact,
        }
    }

    /// Rename a variable in every piece.
    pub fn rename(&self, from: Var, to: Var) -> Disjunction {
        Disjunction {
            systems: self.systems.iter().map(|s| s.rename(from, to)).collect(),
            exact: self.exact,
        }
    }

    /// Conjoin a constraint onto every piece.
    pub fn constrain(&self, c: &Constraint) -> Disjunction {
        let mut out = Disjunction::empty();
        out.exact = self.exact;
        for s in &self.systems {
            let mut t = s.clone();
            t.push(c.clone());
            // `push` keeps the list normalized; reclassify so the piece
            // stays on the dense tier when still box-shaped.
            t.classify_dense();
            out.push(t);
        }
        out
    }

    /// Membership under a total assignment.
    pub fn contains(&self, env: &dyn Fn(Var) -> Option<i64>) -> Option<bool> {
        for s in &self.systems {
            if s.contains(env)? {
                return Some(true);
            }
        }
        Some(false)
    }

    /// All variables mentioned by any piece.
    pub fn vars(&self) -> std::collections::BTreeSet<Var> {
        let mut set = std::collections::BTreeSet::new();
        for s in &self.systems {
            set.extend(s.vars());
        }
        set
    }
}

/// Subtract one convex system from another:
/// `a − b = ⋃_{c ∈ b} (a ∧ ¬c)` (with prior constraints of `b` asserted,
/// giving disjoint pieces).
fn subtract_convex(a: &System, b: &System) -> Vec<System> {
    if b.is_contradiction() {
        return vec![a.clone()];
    }
    let mut out = Vec::new();
    let mut assumed = a.clone();
    for c in b.constraints() {
        match c.kind {
            CKind::Geq => {
                let mut piece = assumed.clone();
                piece.push(c.negate_geq());
                if !piece.is_contradiction() {
                    // Pieces go straight into emptiness filtering; a
                    // dense classification lets box-shaped pieces skip
                    // Fourier–Motzkin there.
                    piece.classify_dense();
                    out.push(piece);
                }
                assumed.push(c.clone());
            }
            CKind::Eq => {
                let (p, n) = c.as_geq_pair();
                let mut lo = assumed.clone();
                lo.push(p.negate_geq());
                if !lo.is_contradiction() {
                    lo.classify_dense();
                    out.push(lo);
                }
                let mut hi = assumed.clone();
                hi.push(n.negate_geq());
                if !hi.is_contradiction() {
                    hi.classify_dense();
                    out.push(hi);
                }
                assumed.push(c.clone());
            }
        }
        if assumed.is_contradiction() {
            break;
        }
    }
    out
}

impl fmt::Debug for Disjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Disjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.systems.is_empty() {
            write!(f, "∅")?;
        } else {
            for (i, s) in self.systems.iter().enumerate() {
                if i > 0 {
                    write!(f, " ∪ ")?;
                }
                write!(f, "{s}")?;
            }
        }
        if !self.exact {
            write!(f, " (inexact)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn lx(n: &str) -> LinExpr {
        LinExpr::var(v(n))
    }
    fn k(c: i64) -> LinExpr {
        LinExpr::constant(c)
    }
    fn lim() -> Limits {
        Limits::default()
    }

    /// lo <= i <= hi as a single-piece region.
    fn interval(lo: i64, hi: i64) -> Disjunction {
        Disjunction::from_system(System::from_constraints([
            Constraint::geq(lx("i"), k(lo)),
            Constraint::leq(lx("i"), k(hi)),
        ]))
    }

    fn points(d: &Disjunction, lo: i64, hi: i64) -> Vec<i64> {
        (lo..=hi)
            .filter(|&x| d.contains(&|_| Some(x)).unwrap())
            .collect()
    }

    #[test]
    fn union_subsumption() {
        let a = interval(1, 10);
        let b = interval(3, 5);
        let u = a.union(&b, lim());
        assert_eq!(u.len(), 1, "inner interval should be subsumed");
        assert_eq!(points(&u, 0, 12), (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn union_disjoint_pieces() {
        let u = interval(1, 3).union(&interval(7, 9), lim());
        assert_eq!(u.len(), 2);
        assert_eq!(points(&u, 0, 10), vec![1, 2, 3, 7, 8, 9]);
    }

    #[test]
    fn intersect_basic() {
        let i = interval(1, 10).intersect(&interval(5, 20), lim());
        assert_eq!(points(&i, 0, 25), (5..=10).collect::<Vec<_>>());
        assert!(i.is_exact());
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let i = interval(1, 3).intersect(&interval(5, 9), lim());
        assert!(i.is_empty(lim()));
    }

    #[test]
    fn subtract_middle_splits() {
        let d = interval(1, 10).subtract(&interval(4, 6), lim());
        assert_eq!(points(&d, 0, 12), vec![1, 2, 3, 7, 8, 9, 10]);
        assert!(d.is_exact());
    }

    #[test]
    fn subtract_everything() {
        let d = interval(2, 5).subtract(&interval(1, 10), lim());
        assert!(d.is_empty(lim()));
    }

    #[test]
    fn subtract_is_disjoint_decomposition() {
        // Pieces produced by subtraction must not overlap (each point
        // appears exactly once).
        let d = interval(1, 10).subtract(&interval(5, 5), lim());
        let mut count = 0;
        for x in 0..=12 {
            for s in d.systems() {
                if s.contains(&|_| Some(x)).unwrap() {
                    count += 1;
                }
            }
        }
        assert_eq!(count, 9);
    }

    #[test]
    fn subset_tests() {
        assert!(interval(3, 5).subset_of(&interval(1, 10), lim()));
        assert!(!interval(1, 10).subset_of(&interval(3, 5), lim()));
        // Subset against an inexact region must refuse unless empty.
        let inexact = interval(1, 10).inexact();
        assert!(!interval(3, 5).subset_of(&inexact, lim()));
        assert!(Disjunction::empty().subset_of(&inexact, lim()));
    }

    #[test]
    fn symbolic_subtract_extraction_shape() {
        // E = {1 <= i <= 10} minus W = {1 <= i <= n}: remainder is
        // {n+1 <= i <= 10}, which is empty exactly when n >= 10. This is
        // the shape predicate extraction exploits.
        let e = interval(1, 10);
        let w = Disjunction::from_system(System::from_constraints([
            Constraint::geq(lx("i"), k(1)),
            Constraint::leq(lx("i"), lx("n")),
        ]));
        let r = e.subtract(&w, lim());
        assert!(!r.is_empty(lim()));
        // Under n = 10 the remainder has no points.
        let env10 = |x: Var| {
            if x == v("n") {
                Some(10)
            } else {
                None
            }
        };
        let mut any = false;
        for i in -5..=15 {
            let env = |x: Var| if x == v("i") { Some(i) } else { env10(x) };
            if r.contains(&env).unwrap() {
                any = true;
            }
        }
        assert!(!any);
        // Under n = 7, points 8..10 remain.
        for i in 8..=10 {
            let env = |x: Var| {
                if x == v("i") {
                    Some(i)
                } else if x == v("n") {
                    Some(7)
                } else {
                    None
                }
            };
            assert!(r.contains(&env).unwrap());
        }
    }

    #[test]
    fn project_out_union() {
        // {1 <= i <= 3, j == i} ∪ {7 <= i <= 9, j == i} projected over i
        // gives {1 <= j <= 3} ∪ {7 <= j <= 9}.
        let mk = |lo: i64, hi: i64| {
            System::from_constraints([
                Constraint::geq(lx("i"), k(lo)),
                Constraint::leq(lx("i"), k(hi)),
                Constraint::eq(lx("j"), lx("i")),
            ])
        };
        let d = Disjunction::from_systems([mk(1, 3), mk(7, 9)]);
        let p = d.project_out(&[v("i")], lim());
        let js: Vec<i64> = (0..=10)
            .filter(|&j| p.contains(&|_| Some(j)).unwrap())
            .collect();
        assert_eq!(js, vec![1, 2, 3, 7, 8, 9]);
        assert!(p.is_exact());
    }

    #[test]
    fn constrain_filters_pieces() {
        let d = interval(1, 3).union(&interval(7, 9), lim());
        let c = Constraint::geq(lx("i"), k(5));
        let r = d.constrain(&c);
        assert_eq!(points(&r, 0, 10), vec![7, 8, 9]);
    }
}
