//! Single integer linear constraints.

use crate::{div_floor, LinExpr, Var};
use std::fmt;

/// Constraint kind: the expression is compared against zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CKind {
    /// `expr == 0`
    Eq,
    /// `expr >= 0`
    Geq,
}

/// An integer linear constraint `expr {==,>=} 0`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    pub expr: LinExpr,
    pub kind: CKind,
}

/// Result of normalizing a constraint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Norm {
    /// Constraint always holds; drop it.
    Tautology,
    /// Constraint can never hold; the whole system is empty.
    Contradiction,
    /// Simplified constraint.
    Keep(Constraint),
}

impl Constraint {
    /// `expr == 0`.
    pub fn eq0(expr: LinExpr) -> Constraint {
        Constraint {
            expr,
            kind: CKind::Eq,
        }
    }

    /// `expr >= 0`.
    pub fn geq0(expr: LinExpr) -> Constraint {
        Constraint {
            expr,
            kind: CKind::Geq,
        }
    }

    /// `a == b`.
    pub fn eq(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint::eq0(a - b)
    }

    /// `a >= b`.
    pub fn geq(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint::geq0(a - b)
    }

    /// `a <= b`.
    pub fn leq(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint::geq0(b - a)
    }

    /// `a < b`, i.e. `a <= b - 1` over the integers.
    pub fn lt(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint::geq0(b - a - LinExpr::constant(1))
    }

    /// `a > b`.
    pub fn gt(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint::lt(b, a)
    }

    /// Integer normalization.
    ///
    /// * constants fold to tautology / contradiction;
    /// * `g*e + c >= 0` with `g = gcd` of coefficients tightens to
    ///   `e + floor(c/g) >= 0` (sound and complete over the integers);
    /// * `g*e + c == 0` with `g ∤ c` is a contradiction, otherwise
    ///   divides through.
    pub fn normalize(&self) -> Norm {
        if self.expr.is_const() {
            let c = self.expr.konst();
            let holds = match self.kind {
                CKind::Eq => c == 0,
                CKind::Geq => c >= 0,
            };
            return if holds {
                Norm::Tautology
            } else {
                Norm::Contradiction
            };
        }
        let g = self.expr.content();
        if g <= 1 {
            return Norm::Keep(self.clone());
        }
        let c = self.expr.konst();
        match self.kind {
            CKind::Eq => {
                if c % g != 0 {
                    Norm::Contradiction
                } else {
                    let mut e = (self.expr.clone() - LinExpr::constant(c)).exact_div(g);
                    e.add_const(c / g);
                    Norm::Keep(Constraint::eq0(e))
                }
            }
            CKind::Geq => {
                let mut e = (self.expr.clone() - LinExpr::constant(c)).exact_div(g);
                e.add_const(div_floor(c, g));
                Norm::Keep(Constraint::geq0(e))
            }
        }
    }

    /// Integer negation of an inequality: `¬(e >= 0)` is `-e - 1 >= 0`.
    ///
    /// Equalities have a disjunctive negation and are handled by
    /// [`crate::Disjunction::subtract`].
    pub fn negate_geq(&self) -> Constraint {
        debug_assert_eq!(self.kind, CKind::Geq);
        Constraint::geq0(self.expr.clone().scaled(-1) - LinExpr::constant(1))
    }

    /// The two inequalities equivalent to an equality.
    pub fn as_geq_pair(&self) -> (Constraint, Constraint) {
        debug_assert_eq!(self.kind, CKind::Eq);
        (
            Constraint::geq0(self.expr.clone()),
            Constraint::geq0(self.expr.clone().scaled(-1)),
        )
    }

    /// True when `v` occurs in the constraint.
    pub fn mentions(&self, v: Var) -> bool {
        self.expr.mentions(v)
    }

    /// Evaluate under a total assignment.
    pub fn eval(&self, env: &dyn Fn(Var) -> Option<i64>) -> Option<bool> {
        let x = self.expr.eval(env)?;
        Some(match self.kind {
            CKind::Eq => x == 0,
            CKind::Geq => x >= 0,
        })
    }

    /// Substitute `v := e` and renormalize lazily (caller normalizes).
    pub fn subst(&self, v: Var, e: &LinExpr) -> Constraint {
        Constraint {
            expr: self.expr.subst(v, e),
            kind: self.kind,
        }
    }

    /// Structural ordering: equalities first, then by expression.
    pub fn cmp_structural(&self, other: &Constraint) -> std::cmp::Ordering {
        let kind_rank = |k: CKind| match k {
            CKind::Eq => 0u8,
            CKind::Geq => 1,
        };
        kind_rank(self.kind)
            .cmp(&kind_rank(other.kind))
            .then_with(|| self.expr.cmp_structural(&other.expr))
    }

    /// Rename a variable.
    pub fn rename(&self, from: Var, to: Var) -> Constraint {
        Constraint {
            expr: self.expr.rename(from, to),
            kind: self.kind,
        }
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            CKind::Eq => write!(f, "{} = 0", self.expr),
            CKind::Geq => write!(f, "{} >= 0", self.expr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn constant_folding() {
        assert_eq!(
            Constraint::geq0(LinExpr::constant(3)).normalize(),
            Norm::Tautology
        );
        assert_eq!(
            Constraint::geq0(LinExpr::constant(-1)).normalize(),
            Norm::Contradiction
        );
        assert_eq!(
            Constraint::eq0(LinExpr::constant(0)).normalize(),
            Norm::Tautology
        );
        assert_eq!(
            Constraint::eq0(LinExpr::constant(2)).normalize(),
            Norm::Contradiction
        );
    }

    #[test]
    fn integer_tightening() {
        // 2i - 3 >= 0  =>  i - 2 >= 0  (i >= ceil(3/2) = 2)
        let c = Constraint::geq0(LinExpr::term(v("i"), 2) - LinExpr::constant(3));
        match c.normalize() {
            Norm::Keep(n) => {
                assert_eq!(n.expr.coeff(v("i")), 1);
                assert_eq!(n.expr.konst(), -2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equality_gcd_contradiction() {
        // 2i + 1 == 0 has no integer solution.
        let c = Constraint::eq0(LinExpr::term(v("i"), 2) + LinExpr::constant(1));
        assert_eq!(c.normalize(), Norm::Contradiction);
    }

    #[test]
    fn equality_gcd_division() {
        // 2i - 4 == 0  =>  i - 2 == 0
        let c = Constraint::eq0(LinExpr::term(v("i"), 2) - LinExpr::constant(4));
        match c.normalize() {
            Norm::Keep(n) => {
                assert_eq!(n.expr.coeff(v("i")), 1);
                assert_eq!(n.expr.konst(), -2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negation_is_strict_complement() {
        // i - 5 >= 0  negated is  -i + 4 >= 0, i.e. i <= 4.
        let c = Constraint::geq0(LinExpr::var(v("i")) - LinExpr::constant(5));
        let n = c.negate_geq();
        let at = |x: i64| n.eval(&|_| Some(x)).unwrap();
        assert!(at(4));
        assert!(!at(5));
    }

    #[test]
    fn comparison_builders() {
        let i = LinExpr::var(v("i"));
        let five = LinExpr::constant(5);
        let lt = Constraint::lt(i.clone(), five.clone());
        assert_eq!(lt.eval(&|_| Some(4)), Some(true));
        assert_eq!(lt.eval(&|_| Some(5)), Some(false));
        let gt = Constraint::gt(i, five);
        assert_eq!(gt.eval(&|_| Some(6)), Some(true));
        assert_eq!(gt.eval(&|_| Some(5)), Some(false));
    }
}
