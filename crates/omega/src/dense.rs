//! The dense fast tier: exact box summaries for the emptiness-dominated
//! hot path.
//!
//! Benchmarks show `sys_empty` is 90–97% of all memoized lattice ops on
//! every corpus program, yet each miss walks the general Fourier–Motzkin
//! cascade. Most array sections, though, are *box-shaped*: every
//! constraint bounds a single variable (possibly through one stride
//! witness), so per-variable interval arithmetic decides emptiness,
//! disjointness, and subset exactly. [`DenseBox`] is that summary,
//! derived once per [`System`](crate::System) at simplify time and
//! carried on the system; [`Tier`] names which tier answered a query.
//!
//! ## Classification rules
//!
//! A system classifies [`Tier::Dense`] when every constraint is either:
//!
//! 1. **single-variable** — `a·v + k ≥ 0` or `a·v + k == 0` — which
//!    contributes to `v`'s integer window exactly as
//!    [`System::quick_unsat`](crate::System::quick_unsat) computes it, or
//! 2. a **stride link**: a two-variable equality `v == s·w + c` whose
//!    strided side `v` has coefficient ±1, where each of `v` and `w`
//!    appears in *no other* multi-variable constraint. `w` is the
//!    *witness*: it is projected away and `v`'s point set becomes the
//!    strided interval `{s·w + c : w ∈ window(w)} ∩ window(v)`.
//!    When `|s| > 1` the witness window must be bounded on both sides
//!    (otherwise the residue class has no finite anchor and the system
//!    stays general).
//!
//! Anything else — three-or-more-variable constraints, two-variable
//! inequalities, variables coupled through several equalities, non-unit
//! equality pairs — is genuinely affine-coupled and stays
//! [`Tier::General`].
//!
//! ## The fall-through contract
//!
//! Wherever the dense tier answers, the answer is **provably identical**
//! to the general Fourier–Motzkin path, so enabling the tier can never
//! change analysis output (ledgers are byte-identical with
//! `PADFA_FORCE_GENERAL_TIER=1`). The argument has two halves:
//!
//! * *Dense claims empty* ⇒ some per-variable window (or strided
//!   overlap) is integer-empty. The general path reaches the same
//!   verdict: plain windows are exactly `quick_unsat`'s pass 2, and a
//!   strided variable is eliminated by an exact unit-coefficient
//!   substitution whose integer tightening (`div_floor` on the witness
//!   bounds) performs the identical arithmetic.
//! * *Dense claims non-empty* ⇒ an explicit integer point exists (pick
//!   each variable inside its non-empty window, derive witnesses from
//!   strided values). Fourier–Motzkin is *sound* — it never reports
//!   empty for a satisfiable system — so the general path also answers
//!   non-empty.
//!
//! Set-valued queries (subtract, union, project) always fall through:
//! their results must be byte-identical *representations*, not just
//! equal sets, and only the general algorithm defines those bytes.
//! Subset and intersection dispatch densely only in the restricted
//! shapes where the general algorithm's output is forced (see
//! [`Disjunction::subset_of_dense`](crate::Disjunction::subset_of_dense)
//! and
//! [`Disjunction::intersect_dense_empty`](crate::Disjunction::intersect_dense_empty)).

use crate::{CKind, Constraint, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

/// Which representation tier answered a lattice query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Answered from the [`DenseBox`] summary.
    Dense,
    /// Answered by the general Fourier–Motzkin representation.
    General,
}

impl Tier {
    pub fn name(self) -> &'static str {
        match self {
            Tier::Dense => "dense",
            Tier::General => "general",
        }
    }
}

/// Kill switch for the dense tier (`PADFA_FORCE_GENERAL_TIER=1`): every
/// query runs the general path and every answer is attributed
/// [`Tier::General`]. Output must be byte-identical either way — CI
/// diffs the corpus ledger across both modes.
pub fn force_general() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("PADFA_FORCE_GENERAL_TIER").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// The exact integer point set of one variable: an interval with a
/// stride.
///
/// Invariants of a normalized range: `lo <= hi` when both are bounded;
/// `stride >= 1`; when `stride > 1` both ends are bounded, attainable,
/// and congruent (`(hi - lo) % stride == 0`). A single attainable point
/// is normalized to `stride == 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DenseRange {
    /// Inclusive lower bound (`None` = unbounded below).
    pub lo: Option<i64>,
    /// Inclusive upper bound (`None` = unbounded above).
    pub hi: Option<i64>,
    /// Distance between consecutive points (1 = every integer in range).
    pub stride: i64,
}

impl DenseRange {
    fn interval(lo: Option<i64>, hi: Option<i64>) -> DenseRange {
        DenseRange { lo, hi, stride: 1 }
    }

    fn is_unbounded_all(&self) -> bool {
        self.lo.is_none() && self.hi.is_none() && self.stride == 1
    }

    fn is_point(&self) -> bool {
        self.lo.is_some() && self.lo == self.hi
    }

    /// Membership of a single integer.
    fn contains(&self, x: i64) -> bool {
        if self.lo.is_some_and(|lo| x < lo) || self.hi.is_some_and(|hi| x > hi) {
            return false;
        }
        if self.stride > 1 {
            // stride > 1 implies lo is Some (normalized).
            match self.lo {
                Some(lo) => (x - lo).rem_euclid(self.stride) == 0,
                None => false,
            }
        } else {
            true
        }
    }
}

/// Outcome of intersecting two [`DenseRange`]s.
enum Meet {
    /// Intersection is integer-empty.
    Empty,
    /// Intersection is exactly this range.
    Range(DenseRange),
    /// Arithmetic overflow — undecidable here, fall through.
    Unknown,
}

/// The dense summary of a box-shaped system: one exact
/// [`DenseRange`] per constrained variable, with stride witnesses
/// projected away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseBox {
    /// `(variable, point set)`, sorted by variable. Variables absent
    /// from the list are unconstrained.
    dims: Vec<(Var, DenseRange)>,
    /// Witness variables consumed by stride links (projected out; they
    /// still occur in the underlying system).
    witnesses: Vec<Var>,
    /// Classification already proved the system integer-empty.
    empty: bool,
}

/// One stride link `strided == s·witness + c` found during
/// classification.
struct Link {
    strided: Var,
    witness: Var,
    s: i64,
    c: i64,
}

impl DenseBox {
    /// Classify a normalized constraint list. `None` means the system is
    /// affine-coupled (or arithmetic overflowed) and stays on the
    /// general tier. Callers must not pass a contradiction system (its
    /// constraint list is empty and would classify as the universe).
    pub fn classify(constraints: &[Constraint]) -> Option<DenseBox> {
        let mut windows: BTreeMap<Var, (Option<i64>, Option<i64>)> = BTreeMap::new();
        let mut links: Vec<Link> = Vec::new();
        let mut empty = false;

        for c in constraints {
            let terms: Vec<(Var, i64)> = c.expr.terms().collect();
            let k = c.expr.konst();
            match terms.len() {
                // Constant constraints are folded away by `push`; seeing
                // one means the list did not come through normalization.
                0 => return None,
                1 => {
                    let (v, a) = terms[0];
                    if a == 0 {
                        return None;
                    }
                    let w = windows.entry(v).or_insert((None, None));
                    match c.kind {
                        CKind::Geq => {
                            if a > 0 {
                                let lo = crate::div_floor(k, a).checked_neg()?;
                                w.0 = Some(w.0.map_or(lo, |cur| cur.max(lo)));
                            } else {
                                let hi = crate::div_floor(k, a.checked_neg()?);
                                w.1 = Some(w.1.map_or(hi, |cur| cur.min(hi)));
                            }
                        }
                        CKind::Eq => {
                            if k % a != 0 {
                                empty = true;
                            } else {
                                let x = -k / a;
                                w.0 = Some(w.0.map_or(x, |cur| cur.max(x)));
                                w.1 = Some(w.1.map_or(x, |cur| cur.min(x)));
                            }
                        }
                    }
                }
                2 => {
                    if c.kind != CKind::Eq {
                        return None;
                    }
                    let (u, au) = terms[0];
                    let (w, aw) = terms[1];
                    // The strided side needs a unit coefficient so the
                    // general path eliminates it by exact substitution.
                    let (strided, witness, a, b) = if au.abs() == 1 {
                        (u, w, au, aw)
                    } else if aw.abs() == 1 {
                        (w, u, aw, au)
                    } else {
                        return None;
                    };
                    // a·v + b·w + k == 0 with a = ±1  ⇒  v = -a·b·w - a·k.
                    let s = a.checked_neg()?.checked_mul(b)?;
                    let c0 = a.checked_neg()?.checked_mul(k)?;
                    links.push(Link {
                        strided,
                        witness,
                        s,
                        c: c0,
                    });
                }
                _ => return None,
            }
        }

        // Every variable may participate in at most one link (a second
        // multi-variable constraint couples it for real).
        let mut link_uses: BTreeMap<Var, usize> = BTreeMap::new();
        for l in &links {
            *link_uses.entry(l.strided).or_insert(0) += 1;
            *link_uses.entry(l.witness).or_insert(0) += 1;
        }
        if link_uses.values().any(|&n| n >= 2) {
            return None;
        }

        let linked: BTreeSet<Var> = link_uses.keys().copied().collect();
        let mut dims: Vec<(Var, DenseRange)> = Vec::new();
        for (&v, &(lo, hi)) in &windows {
            if linked.contains(&v) {
                continue;
            }
            if let (Some(l), Some(h)) = (lo, hi) {
                if l > h {
                    empty = true;
                }
            }
            dims.push((v, DenseRange::interval(lo, hi)));
        }

        let mut witnesses: Vec<Var> = Vec::with_capacity(links.len());
        for l in &links {
            let wwin = windows.get(&l.witness).copied().unwrap_or((None, None));
            let vwin = windows.get(&l.strided).copied().unwrap_or((None, None));
            // Witness windows can themselves be empty.
            if let (Some(wl), Some(wh)) = wwin {
                if wl > wh {
                    empty = true;
                }
            }
            match strided_range(l.s, l.c, wwin, vwin)? {
                None => empty = true,
                Some(r) => dims.push((l.strided, r)),
            }
            witnesses.push(l.witness);
        }

        dims.sort_by_key(|&(v, _)| v);
        witnesses.sort();
        Some(DenseBox {
            dims,
            witnesses,
            empty,
        })
    }

    /// Exact integer emptiness of the summarized system.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Whether classification consumed no stride witnesses.
    pub fn witness_free(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// The per-variable point sets.
    pub fn dims(&self) -> &[(Var, DenseRange)] {
        &self.dims
    }

    /// The point set recorded for `v` (`None` = unconstrained).
    pub fn range(&self, v: Var) -> Option<&DenseRange> {
        self.dims
            .binary_search_by_key(&v, |&(d, _)| d)
            .ok()
            .map(|i| &self.dims[i].1)
    }

    /// The two boxes describe independent products over disjoint witness
    /// spaces, so per-variable set algebra is exact on the pair.
    fn compatible(&self, other: &DenseBox) -> bool {
        let vars_of = |b: &DenseBox| -> BTreeSet<Var> {
            b.dims
                .iter()
                .map(|&(v, _)| v)
                .chain(b.witnesses.iter().copied())
                .collect()
        };
        let a_vars = vars_of(self);
        let b_vars = vars_of(other);
        self.witnesses.iter().all(|w| !b_vars.contains(w))
            && other.witnesses.iter().all(|w| !a_vars.contains(w))
    }

    /// Exact box intersection. `None` when the pair is incomparable
    /// (shared witness variables, or arithmetic overflow); the caller
    /// falls through to the general tier.
    pub fn intersect(&self, other: &DenseBox) -> Option<DenseBox> {
        if !self.compatible(other) {
            return None;
        }
        if self.empty || other.empty {
            return Some(DenseBox {
                dims: Vec::new(),
                witnesses: Vec::new(),
                empty: true,
            });
        }
        let mut dims: Vec<(Var, DenseRange)> = Vec::new();
        let mut empty = false;
        let mut ai = self.dims.iter().peekable();
        let mut bi = other.dims.iter().peekable();
        while let (Some(&&(va, ra)), Some(&&(vb, rb))) = (ai.peek(), bi.peek()) {
            match va.cmp(&vb) {
                std::cmp::Ordering::Less => {
                    dims.push((va, ra));
                    ai.next();
                }
                std::cmp::Ordering::Greater => {
                    dims.push((vb, rb));
                    bi.next();
                }
                std::cmp::Ordering::Equal => {
                    match range_intersect(&ra, &rb) {
                        Meet::Empty => empty = true,
                        Meet::Range(r) => dims.push((va, r)),
                        Meet::Unknown => return None,
                    }
                    ai.next();
                    bi.next();
                }
            }
        }
        dims.extend(ai.copied());
        dims.extend(bi.copied());
        let mut witnesses: Vec<Var> = self
            .witnesses
            .iter()
            .chain(other.witnesses.iter())
            .copied()
            .collect();
        witnesses.sort();
        if empty {
            return Some(DenseBox {
                dims: Vec::new(),
                witnesses: Vec::new(),
                empty: true,
            });
        }
        Some(DenseBox {
            dims,
            witnesses,
            empty: false,
        })
    }

    /// Exact disjointness (`self ∩ other = ∅`). `None` when
    /// incomparable.
    pub fn disjoint(&self, other: &DenseBox) -> Option<bool> {
        self.intersect(other).map(|m| m.is_empty())
    }

    /// Exact subset test `self ⊆ other`. `None` when undecidable here:
    /// `other` carries stride witnesses (its dimensions are coupled), or
    /// constrains one of `self`'s witnesses (whose projection is not
    /// recorded).
    pub fn subset_of(&self, other: &DenseBox) -> Option<bool> {
        if self.empty {
            return Some(true);
        }
        if !other.witness_free() {
            return None;
        }
        if other
            .dims
            .iter()
            .any(|&(v, _)| self.witnesses.binary_search(&v).is_ok())
        {
            return None;
        }
        if other.empty {
            return Some(false);
        }
        for &(v, rb) in &other.dims {
            if !range_subset(self.range(v), &rb) {
                return Some(false);
            }
        }
        Some(true)
    }
}

/// The strided point set `{s·w + c : w ∈ wwin} ∩ vwin`, as a normalized
/// range. `None` = unrepresentable (unbounded residue class or
/// overflow); `Some(None)` = provably integer-empty.
#[allow(clippy::option_option)]
fn strided_range(
    s: i64,
    c: i64,
    wwin: (Option<i64>, Option<i64>),
    vwin: (Option<i64>, Option<i64>),
) -> Option<Option<DenseRange>> {
    debug_assert!(s != 0);
    let map = |w: i64| -> Option<i64> {
        i64::try_from(i128::from(s) * i128::from(w) + i128::from(c)).ok()
    };
    // Map the witness window through w ↦ s·w + c (ends swap when s < 0).
    let (raw_lo, raw_hi) = if s > 0 {
        (wwin.0, wwin.1)
    } else {
        (wwin.1, wwin.0)
    };
    let raw_lo = match raw_lo {
        Some(w) => Some(map(w)?),
        None => None,
    };
    let raw_hi = match raw_hi {
        Some(w) => Some(map(w)?),
        None => None,
    };
    let stride = s.checked_abs()?;
    if stride == 1 {
        let lo = max_opt(raw_lo, vwin.0);
        let hi = min_opt(raw_hi, vwin.1);
        if let (Some(l), Some(h)) = (lo, hi) {
            if l > h {
                return Some(None);
            }
        }
        return Some(Some(DenseRange::interval(lo, hi)));
    }
    // A residue class needs a finite anchor on both sides.
    let (anchor, raw_hi) = match (raw_lo, raw_hi) {
        (Some(l), Some(h)) => (l, h),
        _ => return None,
    };
    if anchor > raw_hi {
        return Some(None);
    }
    let lo0 = vwin.0.map_or(anchor, |v| v.max(anchor));
    let hi0 = vwin.1.map_or(raw_hi, |v| v.min(raw_hi));
    if hi0 < lo0 {
        return Some(None);
    }
    // Round inward to the attainable lattice anchored at `anchor`
    // (lo0 >= anchor by construction).
    let first = anchor.checked_add(((lo0 - anchor) + (stride - 1)) / stride * stride)?;
    let last = anchor.checked_add((hi0 - anchor) / stride * stride)?;
    if first > last {
        return Some(None);
    }
    Some(Some(if first == last {
        DenseRange::interval(Some(first), Some(first))
    } else {
        DenseRange {
            lo: Some(first),
            hi: Some(last),
            stride,
        }
    }))
}

fn max_opt(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

fn min_opt(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Is every point of `a` (ℤ when `None`) inside `b`?
fn range_subset(a: Option<&DenseRange>, b: &DenseRange) -> bool {
    let Some(a) = a else {
        return b.is_unbounded_all();
    };
    // Single attainable point: plain membership.
    if a.is_point() {
        return match a.lo {
            Some(p) => b.contains(p),
            None => false,
        };
    }
    if b.stride == 1 {
        let lo_ok = match b.lo {
            None => true,
            Some(bl) => a.lo.is_some_and(|al| al >= bl),
        };
        let hi_ok = match b.hi {
            None => true,
            Some(bh) => a.hi.is_some_and(|ah| ah <= bh),
        };
        lo_ok && hi_ok
    } else {
        // `b` is a finite residue segment; `a` has at least two points.
        let (Some(al), Some(ah)) = (a.lo, a.hi) else {
            return false;
        };
        let (Some(bl), Some(bh)) = (b.lo, b.hi) else {
            return false;
        };
        a.stride % b.stride == 0 && (al - bl).rem_euclid(b.stride) == 0 && al >= bl && ah <= bh
    }
}

/// Exact intersection of two normalized ranges.
fn range_intersect(a: &DenseRange, b: &DenseRange) -> Meet {
    // Order so `a` has the smaller stride; interval ∩ strided reduces
    // to clamping the strided side.
    let (a, b) = if a.stride <= b.stride { (a, b) } else { (b, a) };
    if b.stride == 1 {
        // Plain interval meet.
        let lo = max_opt(a.lo, b.lo);
        let hi = min_opt(a.hi, b.hi);
        if let (Some(l), Some(h)) = (lo, hi) {
            if l > h {
                return Meet::Empty;
            }
        }
        return Meet::Range(DenseRange::interval(lo, hi));
    }
    if a.stride == 1 {
        // b is a finite residue segment (normalized ⇒ bounded); clamp it
        // into a's interval.
        let (Some(bl), Some(bh)) = (b.lo, b.hi) else {
            return Meet::Unknown;
        };
        let lo0 = a.lo.map_or(bl, |v| v.max(bl));
        let hi0 = a.hi.map_or(bh, |v| v.min(bh));
        if hi0 < lo0 {
            return Meet::Empty;
        }
        let first = bl + ((lo0 - bl) + (b.stride - 1)) / b.stride * b.stride;
        let last = bl + (hi0 - bl) / b.stride * b.stride;
        if first > last {
            return Meet::Empty;
        }
        return Meet::Range(if first == last {
            DenseRange::interval(Some(first), Some(first))
        } else {
            DenseRange {
                lo: Some(first),
                hi: Some(last),
                stride: b.stride,
            }
        });
    }
    // Two residue segments: CRT. Both are normalized ⇒ bounded.
    let ((Some(al), Some(ah)), (Some(bl), Some(bh))) = ((a.lo, a.hi), (b.lo, b.hi)) else {
        return Meet::Unknown;
    };
    let g = crate::gcd(a.stride, b.stride);
    if (al - bl).rem_euclid(g) != 0 {
        return Meet::Empty;
    }
    let Some(l) = a
        .stride
        .checked_div(g)
        .and_then(|q| q.checked_mul(b.stride))
    else {
        return Meet::Unknown;
    };
    // Solve x ≡ al (mod a.stride), x ≡ bl (mod b.stride) via extended
    // gcd in i128 (no overflow for i64 inputs).
    let (_, p, _) = ext_gcd(i128::from(a.stride), i128::from(b.stride));
    let diff = i128::from(bl) - i128::from(al);
    let lcm = i128::from(l);
    let x0 = (i128::from(al)
        + i128::from(a.stride) * ((diff / i128::from(g) * p) % (lcm / i128::from(a.stride))))
    .rem_euclid(lcm);
    // x0 is the smallest non-negative solution modulo lcm; shift into
    // the common interval.
    let lo0 = i128::from(al.max(bl));
    let hi0 = i128::from(ah.min(bh));
    if hi0 < lo0 {
        return Meet::Empty;
    }
    let first = x0 + (lo0 - x0).div_euclid(lcm) * lcm;
    let first = if first < lo0 { first + lcm } else { first };
    if first > hi0 {
        return Meet::Empty;
    }
    let last = first + (hi0 - first) / lcm * lcm;
    let (Ok(first), Ok(last), Ok(lcm)) = (
        i64::try_from(first),
        i64::try_from(last),
        i64::try_from(lcm),
    ) else {
        return Meet::Unknown;
    };
    Meet::Range(if first == last {
        DenseRange::interval(Some(first), Some(first))
    } else {
        DenseRange {
            lo: Some(first),
            hi: Some(last),
            stride: lcm,
        }
    })
}

/// Extended Euclid: returns `(g, x, y)` with `a·x + b·y = g`.
fn ext_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}
