//! Linear expressions over interned variables.

use crate::{gcd, Var};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, Mul, Neg, Sub};

/// Terms stored inline before spilling to the heap. Region constraints
/// mention a handful of variables (a subscript position, a loop index or
/// two, a few symbolics); almost every expression the analysis builds
/// fits inline, so the hot lattice path never allocates per-expression.
const INLINE_TERMS: usize = 8;

/// Sorted `(var, coeff)` term storage: a fixed inline buffer for small
/// expressions, a `Vec` past [`INLINE_TERMS`]. The logical value is the
/// sorted slice of non-zero terms; the representation (inline vs heap)
/// is *not* part of equality or hashing, so an expression that spilled
/// and later shrank compares equal to one built small.
#[derive(Clone)]
enum Terms {
    Inline {
        len: u8,
        buf: [(Var, i64); INLINE_TERMS],
    },
    Heap(Vec<(Var, i64)>),
}

impl Terms {
    const EMPTY: Terms = Terms::Inline {
        len: 0,
        buf: [(crate::var::PLACEHOLDER, 0); INLINE_TERMS],
    };

    #[inline]
    fn as_slice(&self) -> &[(Var, i64)] {
        match self {
            Terms::Inline { len, buf } => &buf[..*len as usize],
            Terms::Heap(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [(Var, i64)] {
        match self {
            Terms::Inline { len, buf } => &mut buf[..*len as usize],
            Terms::Heap(v) => v,
        }
    }

    /// Insert `pair` at sorted position `idx`, spilling to the heap when
    /// the inline buffer is full.
    fn insert_at(&mut self, idx: usize, pair: (Var, i64)) {
        match self {
            Terms::Inline { len, buf } => {
                let n = *len as usize;
                if n < INLINE_TERMS {
                    buf.copy_within(idx..n, idx + 1);
                    buf[idx] = pair;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(2 * INLINE_TERMS);
                    v.extend_from_slice(&buf[..idx]);
                    v.push(pair);
                    v.extend_from_slice(&buf[idx..]);
                    *self = Terms::Heap(v);
                }
            }
            Terms::Heap(v) => v.insert(idx, pair),
        }
    }

    fn remove_at(&mut self, idx: usize) {
        match self {
            Terms::Inline { len, buf } => {
                let n = *len as usize;
                buf.copy_within(idx + 1..n, idx);
                *len -= 1;
            }
            Terms::Heap(v) => {
                v.remove(idx);
            }
        }
    }
}

/// A linear expression `konst + Σ coeff_v * v` with integer coefficients.
///
/// Terms are kept sorted by variable and never store zero coefficients,
/// so structural equality is semantic equality.
#[derive(Clone)]
pub struct LinExpr {
    terms: Terms,
    konst: i64,
}

impl Default for LinExpr {
    fn default() -> LinExpr {
        LinExpr {
            terms: Terms::EMPTY,
            konst: 0,
        }
    }
}

impl PartialEq for LinExpr {
    fn eq(&self, other: &LinExpr) -> bool {
        self.konst == other.konst && self.terms.as_slice() == other.terms.as_slice()
    }
}

impl Eq for LinExpr {}

impl Hash for LinExpr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the logical content only, so inline and spilled
        // representations of the same expression hash identically.
        self.terms.as_slice().hash(state);
        self.konst.hash(state);
    }
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> LinExpr {
        LinExpr {
            terms: Terms::EMPTY,
            konst: c,
        }
    }

    /// The expression `1 * v`.
    pub fn var(v: impl Into<Var>) -> LinExpr {
        LinExpr::term(v, 1)
    }

    /// The expression `coeff * v`.
    pub fn term(v: impl Into<Var>, coeff: i64) -> LinExpr {
        let mut e = LinExpr::zero();
        e.add_term(v.into(), coeff);
        e
    }

    /// Index of `v` in the sorted term slice.
    #[inline]
    fn find(&self, v: Var) -> Result<usize, usize> {
        self.terms.as_slice().binary_search_by_key(&v, |&(w, _)| w)
    }

    /// Add `coeff * v` in place.
    pub fn add_term(&mut self, v: Var, coeff: i64) {
        if coeff == 0 {
            return;
        }
        match self.find(v) {
            Ok(i) => {
                let slot = &mut self.terms.as_mut_slice()[i].1;
                *slot += coeff;
                if *slot == 0 {
                    self.terms.remove_at(i);
                }
            }
            Err(i) => self.terms.insert_at(i, (v, coeff)),
        }
    }

    /// Add a constant in place.
    pub fn add_const(&mut self, c: i64) {
        self.konst += c;
    }

    /// The constant part.
    pub fn konst(&self) -> i64 {
        self.konst
    }

    /// The coefficient of `v` (0 when absent).
    pub fn coeff(&self, v: Var) -> i64 {
        match self.find(v) {
            Ok(i) => self.terms.as_slice()[i].1,
            Err(_) => 0,
        }
    }

    /// Iterate over `(var, coeff)` pairs with non-zero coefficients, in
    /// variable order.
    pub fn terms(&self) -> impl Iterator<Item = (Var, i64)> + '_ {
        self.terms.as_slice().iter().copied()
    }

    /// Number of variables with non-zero coefficients.
    pub fn num_terms(&self) -> usize {
        self.terms.as_slice().len()
    }

    /// True when the expression is a constant.
    pub fn is_const(&self) -> bool {
        self.terms.as_slice().is_empty()
    }

    /// All variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.as_slice().iter().map(|&(v, _)| v)
    }

    /// True when `v` occurs with a non-zero coefficient.
    pub fn mentions(&self, v: Var) -> bool {
        self.find(v).is_ok()
    }

    /// Multiply every coefficient and the constant by `k`.
    pub fn scaled(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        let mut out = self.clone();
        for t in out.terms.as_mut_slice() {
            t.1 *= k;
        }
        out.konst *= k;
        out
    }

    /// GCD of all variable coefficients (0 for a constant expression).
    pub fn content(&self) -> i64 {
        self.terms.as_slice().iter().fold(0, |g, &(_, c)| gcd(g, c))
    }

    /// Divide all coefficients and the constant by `d`, which must divide
    /// them exactly (checked in debug builds).
    pub fn exact_div(&self, d: i64) -> LinExpr {
        debug_assert!(d != 0);
        debug_assert!(self.terms.as_slice().iter().all(|&(_, c)| c % d == 0));
        debug_assert!(self.konst % d == 0);
        let mut out = self.clone();
        for t in out.terms.as_mut_slice() {
            t.1 /= d;
        }
        out.konst /= d;
        out
    }

    /// Substitute `v := e`, i.e. replace each occurrence `c * v` with `c * e`.
    pub fn subst(&self, v: Var, e: &LinExpr) -> LinExpr {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        if let Ok(i) = out.find(v) {
            out.terms.remove_at(i);
        }
        out = out + e.scaled(c);
        out
    }

    /// Rename variable `from` to `to`.
    pub fn rename(&self, from: Var, to: Var) -> LinExpr {
        let c = self.coeff(from);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        if let Ok(i) = out.find(from) {
            out.terms.remove_at(i);
        }
        out.add_term(to, c);
        out
    }

    /// Structural ordering (deterministic within a process): term count,
    /// then `(var, coeff)` pairs, then the constant. Used to keep
    /// constraint lists and predicate operand lists canonically sorted
    /// without formatting.
    pub fn cmp_structural(&self, other: &LinExpr) -> std::cmp::Ordering {
        let (a, b) = (self.terms.as_slice(), other.terms.as_slice());
        a.len()
            .cmp(&b.len())
            .then_with(|| a.cmp(b))
            .then_with(|| self.konst.cmp(&other.konst))
    }

    /// Evaluate under a total assignment; `None` if some variable is
    /// unbound.
    pub fn eval(&self, env: &dyn Fn(Var) -> Option<i64>) -> Option<i64> {
        let mut acc = self.konst;
        for (v, c) in self.terms() {
            acc += c * env(v)?;
        }
        Some(acc)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        let mut out = self;
        for (v, c) in rhs.terms() {
            out.add_term(v, c);
        }
        out.konst += rhs.konst;
        out
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    #[allow(clippy::suspicious_arithmetic_impl)] // a - b == a + (-b)
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + rhs.neg()
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scaled(-1)
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: i64) -> LinExpr {
        self.scaled(k)
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.terms() {
            if first {
                if c == 1 {
                    write!(f, "{v}")?;
                } else if c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}{v}")?;
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}{v}")?;
                }
            } else if c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.konst)?;
        } else if self.konst > 0 {
            write!(f, " + {}", self.konst)?;
        } else if self.konst < 0 {
            write!(f, " - {}", -self.konst)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn construction_and_zero_pruning() {
        let mut e = LinExpr::term(v("i"), 2);
        e.add_term(v("i"), -2);
        assert!(e.is_const());
        assert_eq!(e, LinExpr::zero());
    }

    #[test]
    fn arithmetic() {
        let e = LinExpr::var(v("i")) + LinExpr::term(v("j"), 3) + LinExpr::constant(5);
        let f = e.clone() - LinExpr::var(v("i"));
        assert_eq!(f.coeff(v("i")), 0);
        assert_eq!(f.coeff(v("j")), 3);
        assert_eq!(f.konst(), 5);
        let g = f * 2;
        assert_eq!(g.coeff(v("j")), 6);
        assert_eq!(g.konst(), 10);
    }

    #[test]
    fn substitution() {
        // i + 2j, with j := i + 1  =>  3i + 2
        let e = LinExpr::var(v("i")) + LinExpr::term(v("j"), 2);
        let repl = LinExpr::var(v("i")) + LinExpr::constant(1);
        let s = e.subst(v("j"), &repl);
        assert_eq!(s.coeff(v("i")), 3);
        assert_eq!(s.konst(), 2);
        assert!(!s.mentions(v("j")));
    }

    #[test]
    fn rename_merges_coefficients() {
        let e = LinExpr::var(v("a")) + LinExpr::term(v("b"), 4);
        let r = e.rename(v("a"), v("b"));
        assert_eq!(r.coeff(v("b")), 5);
    }

    #[test]
    fn eval_total_and_partial() {
        let e = LinExpr::term(v("i"), 2) + LinExpr::constant(1);
        let env = |x: Var| if x == v("i") { Some(10) } else { None };
        assert_eq!(e.eval(&env), Some(21));
        let e2 = e + LinExpr::var(v("q"));
        assert_eq!(e2.eval(&env), None);
    }

    #[test]
    fn content_and_exact_div() {
        let e = LinExpr::term(v("i"), 4) + LinExpr::term(v("j"), 6) + LinExpr::constant(2);
        assert_eq!(e.content(), 2);
        let d = e.exact_div(2);
        assert_eq!(d.coeff(v("i")), 2);
        assert_eq!(d.coeff(v("j")), 3);
        assert_eq!(d.konst(), 1);
    }

    #[test]
    fn display_formats() {
        let e = LinExpr::var(v("i")) - LinExpr::term(v("j"), 2) + LinExpr::constant(-3);
        assert_eq!(format!("{e}"), "i - 2j - 3");
        assert_eq!(format!("{}", LinExpr::constant(0)), "0");
    }

    #[test]
    fn spill_to_heap_and_back_preserves_identity() {
        // Build an expression crossing the inline threshold both ways and
        // check equality/hash are representation-independent.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let vars: Vec<Var> = (0..INLINE_TERMS + 3)
            .map(|k| Var::new(&format!("sv{k}")))
            .collect();
        let mut big = LinExpr::constant(9);
        for (k, &var) in vars.iter().enumerate() {
            big.add_term(var, k as i64 + 1);
        }
        assert_eq!(big.num_terms(), INLINE_TERMS + 3);
        // Remove terms until only the first two remain: the value is now
        // expressible inline, though `big` spilled.
        for &var in &vars[2..] {
            let c = big.coeff(var);
            big.add_term(var, -c);
        }
        let small = LinExpr::term(vars[0], 1) + LinExpr::term(vars[1], 2) + LinExpr::constant(9);
        assert_eq!(big, small);
        let hash = |e: &LinExpr| {
            let mut h = DefaultHasher::new();
            e.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&big), hash(&small));
        assert_eq!(big.cmp_structural(&small), std::cmp::Ordering::Equal);
    }

    #[test]
    fn ordered_iteration_across_spill_boundary() {
        // Terms inserted in reverse order still iterate sorted by Var,
        // on both sides of the spill threshold.
        for n in [INLINE_TERMS - 1, INLINE_TERMS, INLINE_TERMS + 1] {
            let vars: Vec<Var> = (0..n).map(|k| Var::new(&format!("ov{k}"))).collect();
            let mut e = LinExpr::zero();
            for &var in vars.iter().rev() {
                e.add_term(var, 7);
            }
            let got: Vec<Var> = e.vars().collect();
            let mut want = vars.clone();
            want.sort();
            assert_eq!(got, want, "n = {n}");
        }
    }
}
