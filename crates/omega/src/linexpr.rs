//! Linear expressions over interned variables.

use crate::{gcd, Var};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A linear expression `konst + Σ coeff_v * v` with integer coefficients.
///
/// The term map never stores zero coefficients, so structural equality is
/// semantic equality.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    terms: BTreeMap<Var, i64>,
    konst: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> LinExpr {
        LinExpr {
            terms: BTreeMap::new(),
            konst: c,
        }
    }

    /// The expression `1 * v`.
    pub fn var(v: impl Into<Var>) -> LinExpr {
        LinExpr::term(v, 1)
    }

    /// The expression `coeff * v`.
    pub fn term(v: impl Into<Var>, coeff: i64) -> LinExpr {
        let mut e = LinExpr::zero();
        e.add_term(v.into(), coeff);
        e
    }

    /// Add `coeff * v` in place.
    pub fn add_term(&mut self, v: Var, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let entry = self.terms.entry(v).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            self.terms.remove(&v);
        }
    }

    /// Add a constant in place.
    pub fn add_const(&mut self, c: i64) {
        self.konst += c;
    }

    /// The constant part.
    pub fn konst(&self) -> i64 {
        self.konst
    }

    /// The coefficient of `v` (0 when absent).
    pub fn coeff(&self, v: Var) -> i64 {
        self.terms.get(&v).copied().unwrap_or(0)
    }

    /// Iterate over `(var, coeff)` pairs with non-zero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (Var, i64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of variables with non-zero coefficients.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// True when the expression is a constant.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// All variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.keys().copied()
    }

    /// True when `v` occurs with a non-zero coefficient.
    pub fn mentions(&self, v: Var) -> bool {
        self.terms.contains_key(&v)
    }

    /// Multiply every coefficient and the constant by `k`.
    pub fn scaled(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|(&v, &c)| (v, c * k)).collect(),
            konst: self.konst * k,
        }
    }

    /// GCD of all variable coefficients (0 for a constant expression).
    pub fn content(&self) -> i64 {
        self.terms.values().fold(0, |g, &c| gcd(g, c))
    }

    /// Divide all coefficients and the constant by `d`, which must divide
    /// them exactly (checked in debug builds).
    pub fn exact_div(&self, d: i64) -> LinExpr {
        debug_assert!(d != 0);
        debug_assert!(self.terms.values().all(|c| c % d == 0));
        debug_assert!(self.konst % d == 0);
        LinExpr {
            terms: self.terms.iter().map(|(&v, &c)| (v, c / d)).collect(),
            konst: self.konst / d,
        }
    }

    /// Substitute `v := e`, i.e. replace each occurrence `c * v` with `c * e`.
    pub fn subst(&self, v: Var, e: &LinExpr) -> LinExpr {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&v);
        out = out + e.scaled(c);
        out
    }

    /// Rename variable `from` to `to`.
    pub fn rename(&self, from: Var, to: Var) -> LinExpr {
        let c = self.coeff(from);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&from);
        out.add_term(to, c);
        out
    }

    /// Structural ordering (deterministic within a process): term count,
    /// then `(var, coeff)` pairs, then the constant. Used to keep
    /// constraint lists and predicate operand lists canonically sorted
    /// without formatting.
    pub fn cmp_structural(&self, other: &LinExpr) -> std::cmp::Ordering {
        self.terms
            .len()
            .cmp(&other.terms.len())
            .then_with(|| self.terms.iter().cmp(other.terms.iter()))
            .then_with(|| self.konst.cmp(&other.konst))
    }

    /// Evaluate under a total assignment; `None` if some variable is
    /// unbound.
    pub fn eval(&self, env: &dyn Fn(Var) -> Option<i64>) -> Option<i64> {
        let mut acc = self.konst;
        for (v, c) in self.terms() {
            acc += c * env(v)?;
        }
        Some(acc)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        let mut out = self;
        for (v, c) in rhs.terms {
            out.add_term(v, c);
        }
        out.konst += rhs.konst;
        out
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    #[allow(clippy::suspicious_arithmetic_impl)] // a - b == a + (-b)
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + rhs.neg()
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scaled(-1)
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: i64) -> LinExpr {
        self.scaled(k)
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.terms() {
            if first {
                if c == 1 {
                    write!(f, "{v}")?;
                } else if c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}{v}")?;
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}{v}")?;
                }
            } else if c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.konst)?;
        } else if self.konst > 0 {
            write!(f, " + {}", self.konst)?;
        } else if self.konst < 0 {
            write!(f, " - {}", -self.konst)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn construction_and_zero_pruning() {
        let mut e = LinExpr::term(v("i"), 2);
        e.add_term(v("i"), -2);
        assert!(e.is_const());
        assert_eq!(e, LinExpr::zero());
    }

    #[test]
    fn arithmetic() {
        let e = LinExpr::var(v("i")) + LinExpr::term(v("j"), 3) + LinExpr::constant(5);
        let f = e.clone() - LinExpr::var(v("i"));
        assert_eq!(f.coeff(v("i")), 0);
        assert_eq!(f.coeff(v("j")), 3);
        assert_eq!(f.konst(), 5);
        let g = f * 2;
        assert_eq!(g.coeff(v("j")), 6);
        assert_eq!(g.konst(), 10);
    }

    #[test]
    fn substitution() {
        // i + 2j, with j := i + 1  =>  3i + 2
        let e = LinExpr::var(v("i")) + LinExpr::term(v("j"), 2);
        let repl = LinExpr::var(v("i")) + LinExpr::constant(1);
        let s = e.subst(v("j"), &repl);
        assert_eq!(s.coeff(v("i")), 3);
        assert_eq!(s.konst(), 2);
        assert!(!s.mentions(v("j")));
    }

    #[test]
    fn rename_merges_coefficients() {
        let e = LinExpr::var(v("a")) + LinExpr::term(v("b"), 4);
        let r = e.rename(v("a"), v("b"));
        assert_eq!(r.coeff(v("b")), 5);
    }

    #[test]
    fn eval_total_and_partial() {
        let e = LinExpr::term(v("i"), 2) + LinExpr::constant(1);
        let env = |x: Var| if x == v("i") { Some(10) } else { None };
        assert_eq!(e.eval(&env), Some(21));
        let e2 = e + LinExpr::var(v("q"));
        assert_eq!(e2.eval(&env), None);
    }

    #[test]
    fn content_and_exact_div() {
        let e = LinExpr::term(v("i"), 4) + LinExpr::term(v("j"), 6) + LinExpr::constant(2);
        assert_eq!(e.content(), 2);
        let d = e.exact_div(2);
        assert_eq!(d.coeff(v("i")), 2);
        assert_eq!(d.coeff(v("j")), 3);
        assert_eq!(d.konst(), 1);
    }

    #[test]
    fn display_formats() {
        let e = LinExpr::var(v("i")) - LinExpr::term(v("j"), 2) + LinExpr::constant(-3);
        assert_eq!(format!("{e}"), "i - 2j - 3");
        assert_eq!(format!("{}", LinExpr::constant(0)), "0");
    }
}
