//! # padfa-omega
//!
//! Integer linear inequality systems used to represent array regions in
//! the predicated array data-flow analysis of Moon & Hall (PPoPP 1999).
//!
//! The SUIF compiler summarizes the set of array elements accessed by a
//! program region as a union of convex polyhedra described by systems of
//! integer linear inequalities over subscript positions, loop index
//! variables, and symbolic program variables. This crate provides that
//! substrate:
//!
//! * [`Var`] — globally interned variable names,
//! * [`LinExpr`] — linear expressions `c0 + c1*v1 + ... + ck*vk`,
//! * [`Constraint`] — `expr == 0` or `expr >= 0`,
//! * [`System`] — a conjunction of constraints (one convex set),
//! * [`Disjunction`] — a union of systems (one array region),
//!
//! together with the operations array data-flow analysis needs:
//! Fourier–Motzkin projection with integer tightening and exactness
//! tracking, emptiness, subset, intersection, union with subsumption
//! pruning, and set subtraction.
//!
//! ## Exactness
//!
//! Some operations (projection of a variable with non-unit coefficients,
//! capped subtraction) can only over-approximate the true integer set.
//! Such results carry `exact = false`. Consumers that need
//! under-approximations (must-write regions) must discard inexact parts;
//! consumers that need over-approximations (may-read, exposed-read
//! regions) may keep them. The analysis layer in `padfa-core` enforces
//! this direction discipline.
//!
//! ## Example
//!
//! The region written by `a[i] = ...` inside `for i = 1 to n` is
//! `{ d == i, 1 <= i <= n }`; projecting the loop index out yields the
//! loop-level summary `{ 1 <= d <= n }`:
//!
//! ```
//! use padfa_omega::{Constraint, LinExpr, Limits, System, Var};
//!
//! let (d, i, n) = (Var::new("d"), Var::new("i"), Var::new("n"));
//! let per_iteration = System::from_constraints([
//!     Constraint::eq(LinExpr::var(d), LinExpr::var(i)),
//!     Constraint::geq(LinExpr::var(i), LinExpr::constant(1)),
//!     Constraint::leq(LinExpr::var(i), LinExpr::var(n)),
//! ]);
//! let loop_level = per_iteration.project_out(&[i], Limits::default());
//! assert!(loop_level.exact);
//! // d = 1 is in the region whenever n >= 1.
//! let env = |v: Var| if v == d { Some(1) } else if v == n { Some(4) } else { None };
//! assert_eq!(loop_level.system.contains(&env), Some(true));
//! ```

pub mod constraint;
pub mod dense;
pub mod disjunction;
pub mod linexpr;
pub mod sync;
pub mod system;
pub mod var;

pub use constraint::{CKind, Constraint, Norm};
pub use dense::{DenseBox, DenseRange, Tier};
pub use disjunction::Disjunction;
pub use linexpr::LinExpr;
pub use system::{Projection, System};
pub use var::Var;

/// Bounds on combinatorial growth inside set operations.
///
/// Fourier–Motzkin elimination and repeated subtraction can blow up; the
/// limits make every operation total by falling back to a conservative
/// (inexact) answer once exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of constraints a single [`System`] may reach during
    /// elimination before the operation gives up.
    pub max_constraints: usize,
    /// Maximum number of disjuncts a [`Disjunction`] may reach during
    /// subtraction / intersection before the operation gives up.
    pub max_disjuncts: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_constraints: 128,
            max_disjuncts: 32,
        }
    }
}

/// Process-wide monotone counter of [`Limits`] overflow events: every
/// time an operation hits a cap and degrades to a truncated (inexact)
/// answer, the counter is bumped. Consumers snapshot the counter before
/// a run and report the difference, so capped runs are visible instead
/// of silent. The counter is global (operations take no session handle),
/// so concurrent runs in one process see each other's overflows; the
/// intended use is coarse visibility, not exact attribution.
///
/// For *exact* attribution a second, thread-local counter is bumped in
/// lockstep ([`thread_overflows`]). The analysis drives each procedure
/// on exactly one worker thread, so deltas of the thread-local counter
/// taken around a loop's classification attribute every cap-hit to the
/// loop that caused it — deterministically, independent of how many
/// other workers run concurrently.
pub mod limit_stats {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    static OVERFLOWS: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static THREAD_OVERFLOWS: Cell<u64> = const { Cell::new(0) };
    }

    /// Record one cap-hit (truncated elimination, disjunct-cap fallback).
    #[inline]
    pub fn note_overflow() {
        OVERFLOWS.fetch_add(1, Ordering::Relaxed);
        THREAD_OVERFLOWS.with(|c| c.set(c.get() + 1));
    }

    /// Total overflow events since process start.
    #[inline]
    pub fn overflows() -> u64 {
        OVERFLOWS.load(Ordering::Relaxed)
    }

    /// Overflow events recorded *by the calling thread* since it
    /// started. Deltas of this counter around a single-threaded region
    /// of work attribute cap-hits exactly, with no bleed-through from
    /// concurrent workers.
    #[inline]
    pub fn thread_overflows() -> u64 {
        THREAD_OVERFLOWS.with(|c| c.get())
    }

    /// Credit `n` overflow events to the calling thread's counter
    /// *without* touching the global total (the events were already
    /// counted globally on the thread that produced them). The
    /// intra-procedure fan-out migrates each worker task's thread-local
    /// delta back to the spawning thread with this, so per-loop
    /// attribution via [`thread_overflows`] deltas keeps summing the
    /// same events regardless of which thread ran them.
    #[inline]
    pub fn adopt_thread_overflows(n: u64) {
        THREAD_OVERFLOWS.with(|c| c.set(c.get() + n));
    }
}

/// Greatest common divisor of two non-negative numbers (`gcd(0, n) = n`).
#[inline]
pub(crate) fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Floor division: largest `q` with `q * d <= n` (`d > 0`).
#[inline]
pub(crate) fn div_floor(n: i64, d: i64) -> i64 {
    debug_assert!(d > 0);
    let q = n / d;
    if n % d != 0 && n < 0 {
        q - 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
    }

    #[test]
    fn div_floor_basics() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(-8, 2), -4);
        assert_eq!(div_floor(0, 3), 0);
    }
}
