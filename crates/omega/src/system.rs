//! Conjunctions of constraints and the Fourier–Motzkin engine.

use crate::dense::{DenseBox, Tier};
use crate::{CKind, Constraint, Limits, LinExpr, Norm, Var};
use std::collections::BTreeSet;
use std::fmt;

/// A conjunction of integer linear constraints — one convex piece of an
/// array region.
///
/// The empty conjunction is the universe. A system that has been proven
/// unsatisfiable during normalization is flagged `contradiction` and
/// represents the empty set.
///
/// Box-shaped systems additionally carry a [`DenseBox`] summary (the
/// dense tier), derived at [`System::simplify`] time and invalidated by
/// any mutation. The summary is a pure cache: it never participates in
/// equality or hashing, so two systems with identical constraints intern
/// to the same id whether or not their caches were populated.
#[derive(Clone, Default)]
pub struct System {
    constraints: Vec<Constraint>,
    contradiction: bool,
    dense: Option<Box<DenseBox>>,
}

impl PartialEq for System {
    fn eq(&self, other: &System) -> bool {
        self.constraints == other.constraints && self.contradiction == other.contradiction
    }
}

impl Eq for System {}

impl std::hash::Hash for System {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.constraints.hash(state);
        self.contradiction.hash(state);
    }
}

/// Result of projecting variables out of a system.
#[derive(Clone, Debug)]
pub struct Projection {
    pub system: System,
    /// False when Fourier–Motzkin had to over-approximate (non-unit
    /// coefficient pairs, lost divisibility, or a size cap).
    pub exact: bool,
}

impl System {
    /// The universe (no constraints).
    pub fn universe() -> System {
        System::default()
    }

    /// A known-empty system.
    pub fn empty() -> System {
        System {
            constraints: Vec::new(),
            contradiction: true,
            dense: None,
        }
    }

    /// Build from constraints, normalizing.
    pub fn from_constraints(cs: impl IntoIterator<Item = Constraint>) -> System {
        let mut s = System::universe();
        for c in cs {
            s.push(c);
        }
        s.simplify();
        s
    }

    /// Reassemble a system from previously-normalized parts **without**
    /// re-normalizing. This is the persistence-codec constructor: the
    /// on-disk memo store must round-trip a system bit-exactly
    /// (constraint order included), and [`System::from_constraints`]
    /// would re-run `push`/`simplify` and potentially reorder or drop
    /// constraints. Only pass parts previously obtained from
    /// [`System::constraints`] / [`System::is_contradiction`], with
    /// `dense` reporting what [`System::has_dense`] returned on the
    /// encoded system: the dense cache is re-derived exactly when the
    /// original had one, so a decoded system answers queries on the same
    /// tier as the system that was stored (warm and cold runs stay
    /// byte-identical *and* tier-identical).
    pub fn from_raw_parts(
        constraints: Vec<Constraint>,
        contradiction: bool,
        dense: bool,
    ) -> System {
        let mut s = System {
            constraints,
            contradiction,
            dense: None,
        };
        if dense {
            s.classify_dense();
        }
        s
    }

    /// True when this system was proven unsatisfiable by normalization.
    /// (A `false` answer does not imply satisfiability; use
    /// [`System::is_empty`].)
    pub fn is_contradiction(&self) -> bool {
        self.contradiction
    }

    /// True when there are no constraints (and no contradiction).
    pub fn is_universe(&self) -> bool {
        !self.contradiction && self.constraints.is_empty()
    }

    /// The constraints (empty when contradictory).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    // `is_empty` here means set emptiness (and takes limits); the
    // container check is `is_empty_conjunction`.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraints are stored.
    pub fn is_empty_conjunction(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Add one constraint (normalizing it first).
    pub fn push(&mut self, c: Constraint) {
        if self.contradiction {
            return;
        }
        match c.normalize() {
            Norm::Tautology => {}
            Norm::Contradiction => {
                self.constraints.clear();
                self.contradiction = true;
                self.dense = None;
            }
            Norm::Keep(c) => {
                // Exact duplicates appear frequently when contexts are
                // re-conjoined; keep the list canonical as we go.
                if !self.constraints.contains(&c) {
                    self.constraints.push(c);
                    self.dense = None;
                }
            }
        }
    }

    /// The dense-tier summary, when this system is box-shaped and its
    /// cache is populated.
    pub fn dense_box(&self) -> Option<&DenseBox> {
        self.dense.as_deref()
    }

    /// Whether the dense cache is populated (persisted by the store so
    /// decoded systems restore the same tier; see
    /// [`System::from_raw_parts`]).
    pub fn has_dense(&self) -> bool {
        self.dense.is_some()
    }

    /// The tier this system's queries answer on.
    pub fn tier(&self) -> Tier {
        if self.dense.is_some() {
            Tier::Dense
        } else {
            Tier::General
        }
    }

    /// (Re)derive the dense classification for the current constraint
    /// list without renormalizing. [`System::simplify`] does this
    /// automatically; call it directly on systems assembled by `push`
    /// alone that are known to already be in normal form.
    pub fn classify_dense(&mut self) {
        self.dense = if self.contradiction {
            None
        } else {
            DenseBox::classify(&self.constraints).map(Box::new)
        };
    }

    /// Conjoin another system.
    pub fn and(&self, other: &System) -> System {
        if self.contradiction || other.contradiction {
            return System::empty();
        }
        let mut out = self.clone();
        for c in &other.constraints {
            out.push(c.clone());
        }
        out.simplify();
        out
    }

    /// All variables mentioned by any constraint.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut set = BTreeSet::new();
        for c in &self.constraints {
            set.extend(c.expr.vars());
        }
        set
    }

    /// True when `v` occurs in some constraint.
    pub fn mentions(&self, v: Var) -> bool {
        self.constraints.iter().any(|c| c.mentions(v))
    }

    /// Substitute `v := e` throughout.
    pub fn subst(&self, v: Var, e: &LinExpr) -> System {
        if self.contradiction {
            return System::empty();
        }
        let mut out = System::universe();
        for c in &self.constraints {
            out.push(c.subst(v, e));
        }
        out.simplify();
        out
    }

    /// Rename `from` to `to` throughout.
    pub fn rename(&self, from: Var, to: Var) -> System {
        if self.contradiction {
            return System::empty();
        }
        let mut out = System::universe();
        for c in &self.constraints {
            out.push(c.rename(from, to));
        }
        out.simplify();
        out
    }

    /// Cheap local simplification: drop duplicates, keep the tightest of
    /// inequalities that differ only in the constant, detect single-pair
    /// contradictions (`e + c >= 0` with `-e + d >= 0` and `c + d < 0`),
    /// and turn matched inequality pairs into equalities.
    pub fn simplify(&mut self) {
        if self.contradiction {
            return;
        }
        use std::collections::BTreeMap;
        // Key a Geq constraint by its variable-term part. The map must
        // iterate in a deterministic order: when an inequality pair
        // collapses to an equality below, the first-visited key decides
        // the emitted orientation, and a hash map would make that (and
        // therefore the rendered output) vary per map instance.
        let mut geq: BTreeMap<Vec<(Var, i64)>, i64> = BTreeMap::new();
        let mut eqs: Vec<Constraint> = Vec::new();
        for c in std::mem::take(&mut self.constraints) {
            match c.kind {
                CKind::Eq => {
                    if !eqs.contains(&c) {
                        eqs.push(c);
                    }
                }
                CKind::Geq => {
                    let key: Vec<(Var, i64)> = c.expr.terms().collect();
                    let k = c.expr.konst();
                    geq.entry(key)
                        .and_modify(|cur| *cur = (*cur).min(k))
                        .or_insert(k);
                }
            }
        }
        // Detect e + c >= 0 together with -e + d >= 0.
        let mut out: Vec<Constraint> = eqs;
        let mut done: Vec<Vec<(Var, i64)>> = Vec::new();
        for (key, &c) in &geq {
            if done.contains(key) {
                continue;
            }
            let nkey: Vec<(Var, i64)> = key.iter().map(|&(v, k)| (v, -k)).collect();
            let mut expr = LinExpr::constant(c);
            for &(v, k) in key {
                expr.add_term(v, k);
            }
            if let Some(&d) = geq.get(&nkey) {
                done.push(key.clone());
                done.push(nkey.clone());
                if c + d < 0 {
                    self.constraints.clear();
                    self.contradiction = true;
                    self.dense = None;
                    return;
                }
                if c + d == 0 {
                    // e >= -c and e <= -c  =>  e + c == 0
                    out.push(Constraint::eq0(expr));
                    continue;
                }
                out.push(Constraint::geq0(expr));
                let mut nexpr = LinExpr::constant(d);
                for &(v, k) in &nkey {
                    nexpr.add_term(v, k);
                }
                out.push(Constraint::geq0(nexpr));
            } else {
                done.push(key.clone());
                out.push(Constraint::geq0(expr));
            }
        }
        self.constraints = out;
        self.constraints.sort_by(|a, b| a.cmp_structural(b));
        self.classify_dense();
    }

    /// Eliminate one variable by Fourier–Motzkin (with equality
    /// substitution when possible). Returns the projected system and an
    /// exactness flag.
    pub fn eliminate(&self, v: Var, limits: Limits) -> Projection {
        if self.contradiction {
            return Projection {
                system: System::empty(),
                exact: true,
            };
        }
        if !self.mentions(v) {
            return Projection {
                system: self.clone(),
                exact: true,
            };
        }

        // Prefer an equality with coefficient +-1: exact substitution.
        if let Some(eq) = self
            .constraints
            .iter()
            .find(|c| c.kind == CKind::Eq && c.expr.coeff(v).abs() == 1)
        {
            let a = eq.expr.coeff(v);
            // a*v + r == 0  =>  v == -r/a; for |a| == 1, v := -a*r.
            let r = eq.expr.clone() - LinExpr::term(v, a);
            let replacement = r.scaled(-a);
            let mut out = System::universe();
            for c in &self.constraints {
                if std::ptr::eq(c, eq) {
                    continue;
                }
                out.push(c.subst(v, &replacement));
            }
            out.simplify();
            return Projection {
                system: out,
                exact: true,
            };
        }

        // Equality with non-unit coefficient: combine into the others,
        // losing the divisibility requirement (over-approximation).
        if let Some(eq) = self
            .constraints
            .iter()
            .min_by_key(|c| {
                if c.kind == CKind::Eq && c.expr.mentions(v) {
                    c.expr.coeff(v).abs()
                } else {
                    i64::MAX
                }
            })
            .filter(|c| c.kind == CKind::Eq && c.expr.mentions(v))
        {
            let a = eq.expr.coeff(v);
            let r = eq.expr.clone() - LinExpr::term(v, a);
            let mut out = System::universe();
            for c in &self.constraints {
                if std::ptr::eq(c, eq) {
                    continue;
                }
                let b = c.expr.coeff(v);
                if b == 0 {
                    out.push(c.clone());
                    continue;
                }
                // |a|*(c.expr) with |a|b*v replaced using a*v == -r:
                // |a|b*v == -sign(a)*b*r.
                let s = c.expr.clone() - LinExpr::term(v, b);
                let combined = s.scaled(a.abs()) + r.scaled(-a.signum() * b);
                out.push(Constraint {
                    expr: combined,
                    kind: c.kind,
                });
            }
            out.simplify();
            return Projection {
                system: out,
                exact: false,
            };
        }

        // Pure inequality elimination.
        let mut lower: Vec<&Constraint> = Vec::new(); // coeff > 0
        let mut upper: Vec<&Constraint> = Vec::new(); // coeff < 0
        let mut rest: Vec<&Constraint> = Vec::new();
        for c in &self.constraints {
            let a = c.expr.coeff(v);
            // Equalities mentioning v were consumed above; anything still
            // mentioning v here is an inequality.
            debug_assert!(a == 0 || c.kind == CKind::Geq);
            if a > 0 {
                lower.push(c);
            } else if a < 0 {
                upper.push(c);
            } else {
                rest.push(c);
            }
        }
        let mut out = System::universe();
        for c in rest {
            out.push(c.clone());
        }
        let mut exact = true;
        for l in &lower {
            let a = l.expr.coeff(v);
            let r = l.expr.clone() - LinExpr::term(v, a);
            for u in &upper {
                let nb = u.expr.coeff(v); // negative
                let b = -nb;
                let s = u.expr.clone() - LinExpr::term(v, nb);
                // a*v + r >= 0 and -b*v + s >= 0 combine to b*r + a*s >= 0.
                out.push(Constraint::geq0(r.scaled(b) + s.scaled(a)));
                if a != 1 && b != 1 {
                    // The real shadow may include integer points with no
                    // integer pre-image; flag inexact.
                    exact = false;
                }
            }
        }
        out.simplify();
        if out.len() > limits.max_constraints {
            out.constraints.truncate(limits.max_constraints);
            exact = false;
            crate::limit_stats::note_overflow();
        }
        Projection { system: out, exact }
    }

    /// Project out several variables, picking a cheap elimination order.
    pub fn project_out(&self, vars: &[Var], limits: Limits) -> Projection {
        let mut cur = self.clone();
        let mut exact = true;
        let mut remaining: Vec<Var> = vars.iter().copied().filter(|&v| cur.mentions(v)).collect();
        while !remaining.is_empty() {
            if cur.contradiction {
                return Projection {
                    system: System::empty(),
                    exact,
                };
            }
            // Prefer variables eliminable through a unit-coefficient
            // equality: that substitution is exact and — crucially —
            // leaves non-unit equalities intact so their divisibility
            // requirements can still surface as GCD contradictions
            // (e.g. `3t == 3t' + 1`). Break ties by the number of
            // lower*upper inequality products.
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let mut lo = 0usize;
                    let mut hi = 0usize;
                    let mut unit_eq = false;
                    for c in &cur.constraints {
                        let a = c.expr.coeff(v);
                        if c.kind == CKind::Eq {
                            if a.abs() == 1 {
                                unit_eq = true;
                            }
                            continue;
                        }
                        if a > 0 {
                            lo += 1;
                        } else if a < 0 {
                            hi += 1;
                        }
                    }
                    (i, (!unit_eq, lo * hi))
                })
                .min_by_key(|&(_, cost)| cost)
                .unwrap();
            let v = remaining.swap_remove(idx);
            let p = cur.eliminate(v, limits);
            exact &= p.exact;
            cur = p.system;
            remaining.retain(|&w| cur.mentions(w));
        }
        Projection { system: cur, exact }
    }

    /// Decide emptiness soundly: `true` means the system has no integer
    /// solutions; `false` means it may have some.
    pub fn is_empty(&self, limits: Limits) -> bool {
        if self.contradiction {
            return true;
        }
        if self.constraints.is_empty() {
            return false;
        }
        // Dense fast tier: for box-shaped systems the cached summary
        // decides emptiness exactly, with the same verdict the cascade
        // below would reach (see `crate::dense` for the agreement
        // argument), so skipping Fourier–Motzkin cannot change output.
        if let Some(d) = &self.dense {
            if !crate::dense::force_general() {
                return d.is_empty();
            }
        }
        if self.quick_unsat() {
            return true;
        }
        let vars: Vec<Var> = self.vars().into_iter().collect();
        let p = self.project_out(&vars, limits);
        // Every conclusion drawn during elimination is implied by the
        // original constraints, so a contradiction here is sound even on
        // inexact paths.
        p.system.contradiction
    }

    /// Cheap, sound unsatisfiability pre-checks that short-circuit the
    /// full Fourier–Motzkin cascade in [`System::is_empty`]. `true`
    /// means definitely empty; `false` means "run the full test". Two
    /// linear passes over the constraint list:
    ///
    /// 1. **GCD test on equalities**: `Σ cᵥ·v + c == 0` has no integer
    ///    solution when `gcd(cᵥ) ∤ c`. ([`Constraint::normalize`] folds
    ///    this at push time, so it only fires on constraints built
    ///    outside `push` — but it is one gcd fold per equality.)
    /// 2. **Constant-bound window per variable**: single-variable
    ///    constraints pin an interval `[lo, hi]` for their variable
    ///    (normalization makes their coefficients ±1, but general
    ///    coefficients are handled too); an empty window on any
    ///    variable is a contradiction that FM would only discover after
    ///    eliminating every other variable it is entangled with.
    pub fn quick_unsat(&self) -> bool {
        if self.contradiction {
            return true;
        }
        // Pass 1: integer-infeasible equalities.
        for c in &self.constraints {
            if c.kind == CKind::Eq {
                let g = c.expr.content();
                if g != 0 && c.expr.konst() % g != 0 {
                    return true;
                }
            }
        }
        // Pass 2: per-variable constant windows from single-variable
        // constraints. `a*v + c >= 0` gives `v >= ceil(-c/a)` (a > 0) or
        // `v <= floor(-c/a)` (a < 0); an equality contributes both.
        let mut windows: Vec<(Var, i64, i64)> = Vec::new();
        for c in &self.constraints {
            let mut terms = c.expr.terms();
            let Some((v, a)) = terms.next() else { continue };
            if terms.next().is_some() {
                continue;
            }
            let k = c.expr.konst();
            // Bounds implied for v (i64::MIN/MAX = unconstrained side).
            let (lo, hi) = match c.kind {
                CKind::Geq => {
                    if a > 0 {
                        (-crate::div_floor(k, a), i64::MAX)
                    } else {
                        (i64::MIN, crate::div_floor(k, -a))
                    }
                }
                CKind::Eq => {
                    if k % a != 0 {
                        return true;
                    }
                    let x = -k / a;
                    (x, x)
                }
            };
            match windows.iter_mut().find(|w| w.0 == v) {
                Some(w) => {
                    w.1 = w.1.max(lo);
                    w.2 = w.2.min(hi);
                    if w.1 > w.2 {
                        return true;
                    }
                }
                None => {
                    if lo > hi {
                        return true;
                    }
                    windows.push((v, lo, hi));
                }
            }
        }
        false
    }

    /// Sound implication test: does every point of `self` satisfy `c`?
    /// `true` is definite; `false` means unknown.
    pub fn implies(&self, c: &Constraint, limits: Limits) -> bool {
        if self.contradiction {
            return true;
        }
        match c.kind {
            CKind::Geq => self.and_constraint(c.negate_geq()).is_empty(limits),
            CKind::Eq => {
                let (p, n) = c.as_geq_pair();
                self.and_constraint(p.negate_geq()).is_empty(limits)
                    && self.and_constraint(n.negate_geq()).is_empty(limits)
            }
        }
    }

    fn and_constraint(&self, c: Constraint) -> System {
        let mut s = self.clone();
        s.push(c);
        // `push` alone keeps the list normalized, so the result is
        // eligible for reclassification (implication tests call
        // `is_empty` on it immediately).
        s.classify_dense();
        s
    }

    /// True when `self ⊆ other` can be proven.
    pub fn subset_of(&self, other: &System, limits: Limits) -> bool {
        other.constraints.iter().all(|c| self.implies(c, limits))
    }

    /// Membership test under a total assignment; `None` when a variable is
    /// unbound.
    pub fn contains(&self, env: &dyn Fn(Var) -> Option<i64>) -> Option<bool> {
        if self.contradiction {
            return Some(false);
        }
        for c in &self.constraints {
            if !c.eval(env)? {
                return Some(false);
            }
        }
        Some(true)
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.contradiction {
            return write!(f, "{{false}}");
        }
        if self.constraints.is_empty() {
            return write!(f, "{{true}}");
        }
        write!(f, "{{")?;
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn lx(n: &str) -> LinExpr {
        LinExpr::var(v(n))
    }
    fn k(c: i64) -> LinExpr {
        LinExpr::constant(c)
    }
    fn lim() -> Limits {
        Limits::default()
    }

    /// 1 <= i <= 10
    fn box_i() -> System {
        System::from_constraints([
            Constraint::geq(lx("i"), k(1)),
            Constraint::leq(lx("i"), k(10)),
        ])
    }

    #[test]
    fn universe_and_empty() {
        assert!(System::universe().is_universe());
        assert!(System::empty().is_empty(lim()));
        assert!(!System::universe().is_empty(lim()));
    }

    #[test]
    fn contradiction_on_push() {
        let mut s = System::universe();
        s.push(Constraint::geq(k(0), k(1)));
        assert!(s.is_contradiction());
    }

    #[test]
    fn box_membership() {
        let s = box_i();
        assert_eq!(s.contains(&|_| Some(5)), Some(true));
        assert_eq!(s.contains(&|_| Some(0)), Some(false));
        assert_eq!(s.contains(&|_| Some(11)), Some(false));
    }

    #[test]
    fn empty_interval_detected() {
        // i >= 5 && i <= 4 is empty.
        let s = System::from_constraints([
            Constraint::geq(lx("i"), k(5)),
            Constraint::leq(lx("i"), k(4)),
        ]);
        assert!(s.is_empty(lim()));
    }

    #[test]
    fn simplify_merges_matched_pair_to_equality() {
        let s = System::from_constraints([
            Constraint::geq(lx("i"), k(3)),
            Constraint::leq(lx("i"), k(3)),
        ]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.constraints()[0].kind, CKind::Eq);
    }

    #[test]
    fn eliminate_with_unit_equality_is_exact() {
        // { j == i + 1, 1 <= i <= 9 } project out i => 2 <= j <= 10.
        let s = System::from_constraints([
            Constraint::eq(lx("j"), lx("i") + k(1)),
            Constraint::geq(lx("i"), k(1)),
            Constraint::leq(lx("i"), k(9)),
        ]);
        let p = s.eliminate(v("i"), lim());
        assert!(p.exact);
        assert_eq!(p.system.contains(&|_| Some(2)), Some(true));
        assert_eq!(p.system.contains(&|_| Some(10)), Some(true));
        assert_eq!(p.system.contains(&|_| Some(1)), Some(false));
        assert_eq!(p.system.contains(&|_| Some(11)), Some(false));
    }

    #[test]
    fn eliminate_inequalities_unit_coeff_exact() {
        // { 1 <= i <= n } project i: feasibility constraint n >= 1.
        let s = System::from_constraints([
            Constraint::geq(lx("i"), k(1)),
            Constraint::leq(lx("i"), lx("n")),
        ]);
        let p = s.eliminate(v("i"), lim());
        assert!(p.exact);
        let at = |n: i64| p.system.contains(&|_| Some(n)).unwrap();
        assert!(at(1));
        assert!(!at(0));
    }

    #[test]
    fn eliminate_nonunit_pair_is_inexact_but_sound() {
        // { 2i >= 1, 3i <= 4 }: rationally 0.5 <= i <= 4/3.
        // Integer tightening makes these i >= 1 and i <= 1 first, so the
        // combination stays exact; build untightenable ones instead:
        // { 2i - j >= 0, -3i + j >= 0 } over i.
        let s = System::from_constraints([
            Constraint::geq0(LinExpr::term(v("i"), 2) - lx("j")),
            Constraint::geq0(LinExpr::term(v("i"), -3) + lx("j")),
        ]);
        let p = s.eliminate(v("i"), lim());
        assert!(!p.exact);
        // j = 0 admits i = 0: shadow must contain j = 0.
        assert_eq!(p.system.contains(&|_| Some(0)), Some(true));
    }

    #[test]
    fn project_out_multiple() {
        // { 1 <= i <= 10, j == 2i } over (i) leaves j in [2, 20] (even-ness
        // lost when inexact, but bounds remain sound).
        let s = System::from_constraints([
            Constraint::geq(lx("i"), k(1)),
            Constraint::leq(lx("i"), k(10)),
            Constraint::eq(lx("j"), LinExpr::term(v("i"), 2)),
        ]);
        let p = s.project_out(&[v("i")], lim());
        let at = |j: i64| p.system.contains(&|_| Some(j)).unwrap();
        assert!(at(2));
        assert!(at(20));
        assert!(!at(0));
        assert!(!at(22));
    }

    #[test]
    fn implies_and_subset() {
        let s = box_i();
        assert!(s.implies(&Constraint::geq(lx("i"), k(0)), lim()));
        assert!(!s.implies(&Constraint::geq(lx("i"), k(2)), lim()));
        let wider = System::from_constraints([
            Constraint::geq(lx("i"), k(0)),
            Constraint::leq(lx("i"), k(20)),
        ]);
        assert!(s.subset_of(&wider, lim()));
        assert!(!wider.subset_of(&s, lim()));
    }

    #[test]
    fn symbolic_emptiness_is_conservative() {
        // { i >= n, i <= n - 1 } is empty for all n.
        let s = System::from_constraints([
            Constraint::geq(lx("i"), lx("n")),
            Constraint::leq(lx("i"), lx("n") - k(1)),
        ]);
        assert!(s.is_empty(lim()));
        // { i >= n, i <= m } cannot be proven empty.
        let s2 = System::from_constraints([
            Constraint::geq(lx("i"), lx("n")),
            Constraint::leq(lx("i"), lx("m")),
        ]);
        assert!(!s2.is_empty(lim()));
    }

    #[test]
    fn rename_and_subst() {
        let s = box_i();
        let r = s.rename(v("i"), v("i2"));
        assert!(r.mentions(v("i2")));
        assert!(!r.mentions(v("i")));
        let sub = s.subst(v("i"), &(lx("j") + k(1)));
        // 1 <= j + 1 <= 10  =>  0 <= j <= 9
        assert_eq!(sub.contains(&|_| Some(0)), Some(true));
        assert_eq!(sub.contains(&|_| Some(9)), Some(true));
        assert_eq!(sub.contains(&|_| Some(10)), Some(false));
    }
}
