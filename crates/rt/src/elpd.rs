//! The Extended Lazy Privatizing Doall (ELPD) run-time test
//! (Rauchwerger & Padua's LPD test as extended by So, Moon & Hall).
//!
//! The paper instruments every candidate loop the compiler left
//! sequential: shadow arrays record, per element and per iteration,
//! whether the element was written, and whether a read observed a value
//! produced by an *earlier different* iteration. After the loop runs,
//! each array is classified:
//!
//! * **independent** — no element is accessed by two different
//!   iterations with at least one write;
//! * **privatizable** — cross-iteration sharing exists, but every read
//!   either follows a same-iteration write (private value) or reads the
//!   loop-entry value (copy-in); writes-only sharing is fixed by ordered
//!   last-value merging;
//! * **sequential** — some read observes a value written by an earlier,
//!   different iteration (a true loop-carried flow dependence).
//!
//! The loop verdict aggregates over all arrays and scalars. Because this
//! is a run-time test, the verdict is valid *for the input used* — the
//! property the paper leans on to count "inherently parallel" loops.

use crate::machine::{build_entry_frame, ExecError, Machine, RunConfig};
use crate::value::ArgValue;
use padfa_ir::{LoopId, Program, Var};
use std::collections::HashMap;

/// Per-element shadow state.
#[derive(Clone, Copy, Default)]
struct Shadow {
    /// Iteration that last wrote the element (0 = never).
    last_writer: i64,
    has_writer: bool,
    /// Iteration that first wrote the element.
    first_writer: i64,
    /// Written by more than one distinct iteration.
    multi_writer: bool,
    /// Read the loop-entry value (no write had happened yet).
    copy_in_read: bool,
    /// Read a value written by an earlier, different iteration.
    flow_dep: bool,
    /// Accessed (read or write) by more than one distinct iteration,
    /// with at least one access being a write.
    shared_write: bool,
    /// First iteration that touched the element at all.
    first_toucher: i64,
    has_toucher: bool,
}

/// Classification of one array (or scalar) for one loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElpdClass {
    Independent,
    /// Privatization (with copy-in when flagged) makes the loop legal.
    Privatizable {
        copy_in: bool,
    },
    Sequential,
}

/// Result of the ELPD inspection of one loop.
#[derive(Clone, Debug)]
pub struct ElpdVerdict {
    /// Overall: can the loop run in parallel (with privatization) on
    /// this input?
    pub parallelizable: bool,
    /// Needs any privatization/copy-in at all.
    pub needs_privatization: bool,
    /// Per-array classification, keyed by a debug name.
    pub arrays: HashMap<String, ElpdClass>,
    /// Scalars carrying a cross-iteration flow dependence.
    pub scalar_deps: Vec<String>,
    /// Total iterations observed across invocations.
    pub iterations: u64,
    /// Number of times the loop was entered.
    pub invocations: u64,
}

/// Instrumentation state installed in the [`Machine`].
pub struct ElpdState {
    pub target: LoopId,
    active: bool,
    current_iter: i64,
    shadows: HashMap<usize, Vec<Shadow>>,
    scalar_shadows: HashMap<Var, Shadow>,
    /// Accumulated over invocations.
    class: HashMap<usize, ElpdClass>,
    scalar_flow: Vec<Var>,
    pub iterations: u64,
    pub invocations: u64,
    /// Scalars excluded from tracking (recognized reductions and the
    /// loop index).
    pub(crate) exclude_scalars: Vec<Var>,
    /// Array handles excluded (recognized reductions).
    pub(crate) exclude_arrays: Vec<usize>,
}

impl ElpdState {
    pub(crate) fn new(target: LoopId) -> ElpdState {
        ElpdState {
            target,
            active: false,
            current_iter: 0,
            shadows: HashMap::new(),
            scalar_shadows: HashMap::new(),
            class: HashMap::new(),
            scalar_flow: Vec::new(),
            iterations: 0,
            invocations: 0,
            exclude_scalars: Vec::new(),
            exclude_arrays: Vec::new(),
        }
    }

    pub(crate) fn begin_invocation(&mut self, _num_arrays: usize) {
        self.active = true;
        self.invocations += 1;
        self.shadows.clear();
        self.scalar_shadows.clear();
    }

    pub(crate) fn set_iteration(&mut self, i: i64) {
        self.current_iter = i;
        self.iterations += 1;
    }

    /// Final per-handle classification plus scalar flow verdict (used by
    /// the inspector/executor comparator).
    pub(crate) fn outcome(&self) -> (bool, Vec<usize>) {
        let mut parallelizable = self.scalar_flow.is_empty();
        let mut priv_handles = Vec::new();
        for (&h, cls) in &self.class {
            match cls {
                ElpdClass::Sequential => parallelizable = false,
                ElpdClass::Privatizable { .. } => priv_handles.push(h),
                ElpdClass::Independent => {}
            }
        }
        (parallelizable, priv_handles)
    }

    pub(crate) fn end_invocation(&mut self) {
        self.active = false;
        // Fold this invocation's shadows into the running classification.
        let handles: Vec<usize> = self.shadows.keys().copied().collect();
        for h in handles {
            let cls = classify(&self.shadows[&h]);
            merge_class(self.class.entry(h).or_insert(ElpdClass::Independent), cls);
        }
        for (&v, sh) in &self.scalar_shadows {
            if sh.flow_dep && !self.scalar_flow.contains(&v) {
                self.scalar_flow.push(v);
            }
        }
    }

    fn shadow_mut(&mut self, handle: usize, len: usize, off: usize) -> Option<&mut Shadow> {
        if self.exclude_arrays.contains(&handle) {
            return None;
        }
        let vec = self
            .shadows
            .entry(handle)
            .or_insert_with(|| vec![Shadow::default(); len]);
        vec.get_mut(off)
    }

    pub(crate) fn on_array_read(&mut self, handle: usize, off: usize) {
        if !self.active {
            return;
        }
        let iter = self.current_iter;
        // Length grows lazily; reads outside any prior write are fine.
        let len = off + 1;
        if let Some(vec) = self.shadows.get_mut(&handle) {
            if vec.len() < len {
                vec.resize(len, Shadow::default());
            }
        }
        if let Some(sh) = self.shadow_mut(handle, len, off) {
            record_read(sh, iter);
        }
    }

    pub(crate) fn on_array_write(&mut self, handle: usize, off: usize) {
        if !self.active {
            return;
        }
        let iter = self.current_iter;
        let len = off + 1;
        if let Some(vec) = self.shadows.get_mut(&handle) {
            if vec.len() < len {
                vec.resize(len, Shadow::default());
            }
        }
        if let Some(sh) = self.shadow_mut(handle, len, off) {
            record_write(sh, iter);
        }
    }

    pub(crate) fn on_scalar_read(&mut self, v: Var) {
        if !self.active || self.exclude_scalars.contains(&v) {
            return;
        }
        let iter = self.current_iter;
        record_read(self.scalar_shadows.entry(v).or_default(), iter);
    }

    pub(crate) fn on_scalar_write(&mut self, v: Var) {
        if !self.active || self.exclude_scalars.contains(&v) {
            return;
        }
        let iter = self.current_iter;
        record_write(self.scalar_shadows.entry(v).or_default(), iter);
    }
}

fn record_read(sh: &mut Shadow, iter: i64) {
    if sh.has_toucher && sh.first_toucher != iter && (sh.has_writer || sh.multi_writer) {
        // Shared with at least one write somewhere: refined below.
    }
    if !sh.has_toucher {
        sh.has_toucher = true;
        sh.first_toucher = iter;
    }
    if sh.has_writer {
        if sh.last_writer != iter {
            // Value produced by an earlier, different iteration.
            sh.flow_dep = true;
        }
        if sh.first_writer != iter {
            sh.shared_write = true;
        }
    } else {
        // Reads the loop-entry value.
        sh.copy_in_read = true;
    }
}

fn record_write(sh: &mut Shadow, iter: i64) {
    if !sh.has_toucher {
        sh.has_toucher = true;
        sh.first_toucher = iter;
    }
    if sh.has_writer {
        if sh.last_writer != iter {
            sh.multi_writer = true;
            sh.shared_write = true;
        }
    } else {
        sh.has_writer = true;
        sh.first_writer = iter;
    }
    // A write after another iteration's read is an anti dependence:
    // copy_in_read handles it (the earlier read saw the entry value).
    if sh.copy_in_read && sh.first_toucher != iter {
        sh.shared_write = true;
    }
    sh.last_writer = iter;
}

fn classify(shadows: &[Shadow]) -> ElpdClass {
    let mut needs_priv = false;
    let mut copy_in = false;
    for sh in shadows {
        if sh.flow_dep {
            return ElpdClass::Sequential;
        }
        if sh.shared_write || sh.multi_writer {
            needs_priv = true;
            if sh.copy_in_read {
                copy_in = true;
            }
        }
    }
    if needs_priv {
        ElpdClass::Privatizable { copy_in }
    } else {
        ElpdClass::Independent
    }
}

fn merge_class(acc: &mut ElpdClass, new: ElpdClass) {
    *acc = match (*acc, new) {
        (ElpdClass::Sequential, _) | (_, ElpdClass::Sequential) => ElpdClass::Sequential,
        (ElpdClass::Privatizable { copy_in: a }, ElpdClass::Privatizable { copy_in: b }) => {
            ElpdClass::Privatizable { copy_in: a || b }
        }
        (p @ ElpdClass::Privatizable { .. }, ElpdClass::Independent) => p,
        (ElpdClass::Independent, p) => p,
    };
}

/// Run the program sequentially with ELPD instrumentation on one loop.
///
/// `exclude` lists reduction targets (scalars or arrays by name) that
/// the compiler already handles and the inspector should ignore.
pub fn elpd_inspect(
    prog: &Program,
    args: Vec<ArgValue>,
    target: LoopId,
    exclude: &[Var],
) -> Result<ElpdVerdict, ExecError> {
    elpd_inspect_budgeted(prog, args, target, exclude, None)
}

/// [`elpd_inspect`] with a statement-fuel budget: an inspection of a
/// runaway loop terminates with [`ExecError::FuelExhausted`] instead of
/// hanging the whole evaluation run.
pub fn elpd_inspect_budgeted(
    prog: &Program,
    args: Vec<ArgValue>,
    target: LoopId,
    exclude: &[Var],
    fuel: Option<u64>,
) -> Result<ElpdVerdict, ExecError> {
    let cfg = RunConfig {
        fuel,
        ..RunConfig::sequential()
    };
    let proc = prog.entry().ok_or(ExecError::NoEntryProcedure)?;
    let mut machine = Machine::new(prog, &cfg);
    let mut frame = build_entry_frame(&mut machine, proc, args)?;
    let mut state = ElpdState::new(target);
    state.exclude_scalars = exclude.to_vec();
    // Resolve excluded arrays visible in the entry frame.
    for v in exclude {
        if let Some(h) = frame.array_handle(*v) {
            state.exclude_arrays.push(h);
        }
    }
    // Also exclude the loop's own index variable.
    if let Some((_, l)) = padfa_ir::visit::find_loop(prog, target) {
        state.exclude_scalars.push(l.var);
    }
    machine.elpd = Some(state);
    machine.exec_block(&mut frame, &proc.body)?;
    let state = machine.elpd.take().unwrap();

    let mut arrays = HashMap::new();
    let mut parallelizable = true;
    let mut needs_privatization = false;
    let handle_names: HashMap<usize, String> = frame
        .arrays
        .iter()
        .map(|(v, b)| (b.handle, v.name()))
        .collect();
    for (h, cls) in &state.class {
        let name = handle_names
            .get(h)
            .cloned()
            .unwrap_or_else(|| format!("#<{h}>"));
        arrays.insert(name, *cls);
        match cls {
            ElpdClass::Sequential => parallelizable = false,
            ElpdClass::Privatizable { .. } => needs_privatization = true,
            ElpdClass::Independent => {}
        }
    }
    let scalar_deps: Vec<String> = state.scalar_flow.iter().map(|v| v.name()).collect();
    if !scalar_deps.is_empty() {
        parallelizable = false;
    }
    Ok(ElpdVerdict {
        parallelizable,
        needs_privatization,
        arrays,
        scalar_deps,
        iterations: state.iterations,
        invocations: state.invocations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_ir::parse::parse_program;

    fn inspect(src: &str, args: Vec<ArgValue>, loop_id: u32) -> ElpdVerdict {
        let prog = parse_program(src).unwrap();
        elpd_inspect(&prog, args, LoopId(loop_id), &[]).unwrap()
    }

    #[test]
    fn independent_loop() {
        let v = inspect(
            "proc main(n: int) { array a[64];
             for i = 1 to n { a[i] = a[i] + 1.0; } }",
            vec![ArgValue::Int(64)],
            0,
        );
        assert!(v.parallelizable);
        assert!(!v.needs_privatization);
        assert_eq!(v.arrays["a"], ElpdClass::Independent);
        assert_eq!(v.iterations, 64);
    }

    #[test]
    fn flow_dependence_detected() {
        let v = inspect(
            "proc main(n: int) { array a[64];
             for i = 2 to n { a[i] = a[i - 1] + 1.0; } }",
            vec![ArgValue::Int(64)],
            0,
        );
        assert!(!v.parallelizable);
        assert_eq!(v.arrays["a"], ElpdClass::Sequential);
    }

    #[test]
    fn privatizable_temp() {
        let v = inspect(
            "proc main(n: int) { array a[64]; array t[4];
             for i = 1 to n {
                 for j = 1 to 4 { t[j] = a[i] + j; }
                 a[i] = t[1] + t[4];
             } }",
            vec![ArgValue::Int(64)],
            0,
        );
        assert!(v.parallelizable);
        assert!(v.needs_privatization);
        assert_eq!(v.arrays["t"], ElpdClass::Privatizable { copy_in: false });
        assert_eq!(v.arrays["a"], ElpdClass::Independent);
    }

    #[test]
    fn copy_in_detected() {
        // First iteration reads t[1] before anyone writes it; later
        // iterations write-then-read. Privatization needs copy-in.
        let v = inspect(
            "proc main(n: int) { array a[64]; array t[2];
             for i = 1 to n {
                 a[i] = t[1];
                 t[1] = a[i] + 1.0;
             } }",
            vec![ArgValue::Int(1)],
            0,
        );
        // With a single iteration there is no cross-iteration sharing.
        assert!(v.parallelizable);
        let v2 = inspect(
            "proc main(n: int) { array a[64]; array t[2];
             for i = 1 to n {
                 a[i] = t[1] * 0.5;
                 t[1] = 3.0;
             } }",
            vec![ArgValue::Int(8)],
            0,
        );
        // Reads t[1] written by the *previous* iteration: flow dep.
        assert!(!v2.parallelizable);
    }

    #[test]
    fn input_dependence_of_verdict() {
        // a[idx[i]] = ...: with distinct idx values the loop is
        // independent; with colliding values it is not (writes to the
        // same element from different iterations are output deps =>
        // privatizable, but a read would make it sequential).
        let src = "proc main(n: int, idx: array[8] of int) { array a[64];
             for i = 1 to n { a[idx[i]] = a[idx[i]] + i; } }";
        let distinct = ArgValue::Array(crate::value::ArrayStore::from_i64(vec![
            1, 2, 3, 4, 5, 6, 7, 8,
        ]));
        let v1 = {
            let prog = parse_program(src).unwrap();
            elpd_inspect(&prog, vec![ArgValue::Int(8), distinct], LoopId(0), &[]).unwrap()
        };
        assert!(v1.parallelizable, "distinct indices: independent");
        let colliding = ArgValue::Array(crate::value::ArrayStore::from_i64(vec![
            1, 1, 1, 1, 1, 1, 1, 1,
        ]));
        let v2 = {
            let prog = parse_program(src).unwrap();
            elpd_inspect(&prog, vec![ArgValue::Int(8), colliding], LoopId(0), &[]).unwrap()
        };
        assert!(!v2.parallelizable, "colliding indices: flow dependence");
    }

    #[test]
    fn scalar_flow_dependence() {
        let v = inspect(
            "proc main(n: int) { var s: real; array a[64];
             for i = 1 to n { a[i] = s; s = s + 1.0; } }",
            vec![ArgValue::Int(8)],
            0,
        );
        assert!(!v.parallelizable);
        assert!(v.scalar_deps.contains(&"s".to_string()));
    }

    #[test]
    fn excluded_reduction_ignored() {
        let src = "proc main(n: int) { var s: real; array a[64];
             for i = 1 to n { s = s + a[i]; } }";
        let prog = parse_program(src).unwrap();
        let v = elpd_inspect(&prog, vec![ArgValue::Int(8)], LoopId(0), &[Var::new("s")]).unwrap();
        assert!(v.parallelizable, "reduction target excluded");
    }

    #[test]
    fn budgeted_inspection_terminates() {
        let src = "proc main(n: int) { array a[64];
             for i = 1 to n { a[1] = a[1] + 1.0; } }";
        let prog = parse_program(src).unwrap();
        let err = elpd_inspect_budgeted(
            &prog,
            vec![ArgValue::Int(1_000_000)],
            LoopId(0),
            &[],
            Some(500),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::FuelExhausted), "got {err:?}");
        // A sufficient budget still yields the normal verdict.
        let v = elpd_inspect_budgeted(
            &prog,
            vec![ArgValue::Int(8)],
            LoopId(0),
            &[],
            Some(1_000_000),
        )
        .unwrap();
        assert!(!v.parallelizable, "a[1] carries a flow dependence");
    }

    #[test]
    fn multiple_invocations_accumulate() {
        // The target inner loop is entered once per outer iteration; its
        // verdict must cover all invocations.
        let v = inspect(
            "proc main(n: int) { array a[8, 8];
             for i = 1 to n {
                 for j = 1 to 8 { a[i, j] = i + j; }
             } }",
            vec![ArgValue::Int(4)],
            1,
        );
        assert_eq!(v.invocations, 4);
        assert_eq!(v.iterations, 32);
        assert!(v.parallelizable);
    }

    #[test]
    fn write_only_sharing_is_privatizable() {
        let v = inspect(
            "proc main(n: int) { array t[4]; array a[64];
             for i = 1 to n { t[1] = i * 1.0; a[i] = t[1]; } }",
            vec![ArgValue::Int(8)],
            0,
        );
        assert!(v.parallelizable);
        assert_eq!(v.arrays["t"], ElpdClass::Privatizable { copy_in: false });
    }
}
