//! The sequential interpreter and its instrumentation hooks.

use crate::elpd::ElpdState;
use crate::faults::{FaultKind, FaultPlan, PendingFault};
use crate::plan::{ExecPlan, ParallelKind};
use crate::value::{ArgValue, ArrayStore, Value};
use padfa_ir::ast::{Arg, Block, BoolExpr, Expr, Intrinsic, LValue, Loop, Procedure, Stmt};
use padfa_ir::{LoopId, Program, ScalarTy, Var};
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Execution errors (bounds violations, bad arguments, arithmetic,
/// resource budgets, and worker failures surfaced by the fault-tolerant
/// parallel executor).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    UnknownProcedure(String),
    NoEntryProcedure,
    BadArgument(String),
    OutOfBounds {
        array: String,
        idxs: Vec<i64>,
    },
    DivisionByZero,
    UnboundScalar(String),
    UnboundArray(String),
    /// A parallel worker panicked and sequential fallback was disabled
    /// (or the panic escaped a context with no fallback).
    WorkerPanicked {
        worker: usize,
        message: String,
    },
    /// The configured statement budget ran out (see
    /// [`RunConfig::with_fuel`]).
    FuelExhausted,
    /// The configured wall-clock deadline passed (see
    /// [`RunConfig::with_deadline`]).
    DeadlineExceeded,
    /// A worker's write-tracker metadata failed validation on join and
    /// sequential fallback was disabled.
    StateCorrupted {
        worker: usize,
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownProcedure(n) => write!(f, "unknown procedure '{n}'"),
            ExecError::NoEntryProcedure => write!(f, "program has no entry procedure"),
            ExecError::BadArgument(m) => write!(f, "bad argument: {m}"),
            ExecError::OutOfBounds { array, idxs } => {
                write!(f, "index {idxs:?} out of bounds for array '{array}'")
            }
            ExecError::DivisionByZero => write!(f, "division by zero"),
            ExecError::UnboundScalar(n) => write!(f, "unbound scalar '{n}'"),
            ExecError::UnboundArray(n) => write!(f, "unbound array '{n}'"),
            ExecError::WorkerPanicked { worker, message } => {
                write!(f, "worker {worker} panicked: {message}")
            }
            ExecError::FuelExhausted => write!(f, "fuel budget exhausted"),
            ExecError::DeadlineExceeded => write!(f, "wall-clock deadline exceeded"),
            ExecError::StateCorrupted { worker, detail } => {
                write!(f, "worker {worker} produced corrupted state: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Parallel region entries.
    pub parallel_loops: u64,
    /// Two-version tests evaluated true (parallel version taken).
    pub tests_passed: u64,
    /// Two-version tests evaluated false (sequential fallback).
    pub tests_failed: u64,
    /// Total loop iterations executed.
    pub iterations: u64,
    /// Inspector/executor: inspections performed.
    pub inspections: u64,
    /// Inspector/executor: inspections that chose the parallel path.
    pub inspections_parallel: u64,
    /// Parallel regions that failed mid-flight and were transparently
    /// re-run sequentially (transactional two-version fallback).
    pub fallbacks: u64,
    /// Worker panics caught and isolated (whether or not a fallback
    /// followed).
    pub worker_panics: u64,
}

impl ExecStats {
    pub fn merge(&mut self, other: &ExecStats) {
        self.parallel_loops += other.parallel_loops;
        self.tests_passed += other.tests_passed;
        self.tests_failed += other.tests_failed;
        self.iterations += other.iterations;
        self.inspections += other.inspections;
        self.inspections_parallel += other.inspections_parallel;
        self.fallbacks += other.fallbacks;
        self.worker_panics += other.worker_panics;
    }
}

/// Per-loop profile used for coverage/granularity tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoopProfile {
    pub invocations: u64,
    pub iterations: u64,
    /// Statements executed within the loop (including nested loops).
    pub work: u64,
}

/// Run configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Worker count; 1 disables all parallel execution.
    pub workers: usize,
    pub plan: ExecPlan,
    /// Values consumed by `read` statements (recycled when exhausted).
    pub input: Vec<f64>,
    /// Scheduling granularity: `None` = one contiguous block per worker
    /// (static); `Some(c)` = chunks of `c` iterations dealt round-robin
    /// (interleaved), as in `schedule(static, c)`.
    pub chunk: Option<usize>,
    /// Loops run under the inspector/executor comparator instead of a
    /// compile-time plan (see [`crate::inspector`]).
    pub inspect: Vec<padfa_ir::LoopId>,
    /// Statement budget for the whole run: `Some(n)` makes execution
    /// fail with [`ExecError::FuelExhausted`] after `n` statements, on
    /// both the sequential and parallel paths (workers split the
    /// remaining budget). `None` = unlimited.
    pub fuel: Option<u64>,
    /// Wall-clock budget for the whole run: execution fails with
    /// [`ExecError::DeadlineExceeded`] once it has been running longer.
    pub deadline: Option<Duration>,
    /// Deterministic faults to inject into parallel workers (testing).
    pub faults: FaultPlan,
    /// Whether a failed parallel region is transparently re-run
    /// sequentially (the transactional two-version fallback). When
    /// `false` the failure surfaces as a typed [`ExecError`] instead.
    pub fallback: bool,
}

impl RunConfig {
    pub fn sequential() -> RunConfig {
        RunConfig {
            workers: 1,
            plan: ExecPlan::sequential(),
            input: Vec::new(),
            chunk: None,
            inspect: Vec::new(),
            fuel: None,
            deadline: None,
            faults: FaultPlan::none(),
            fallback: true,
        }
    }

    pub fn parallel(workers: usize, plan: ExecPlan) -> RunConfig {
        RunConfig {
            workers,
            plan,
            ..RunConfig::sequential()
        }
    }

    /// Round-robin chunked scheduling with the given chunk size.
    pub fn chunked(workers: usize, plan: ExecPlan, chunk: usize) -> RunConfig {
        RunConfig {
            chunk: Some(chunk.max(1)),
            ..RunConfig::parallel(workers, plan)
        }
    }

    /// Cap the run at `fuel` interpreted statements.
    pub fn with_fuel(mut self, fuel: u64) -> RunConfig {
        self.fuel = Some(fuel);
        self
    }

    /// Cap the run at `deadline` of wall-clock time.
    pub fn with_deadline(mut self, deadline: Duration) -> RunConfig {
        self.deadline = Some(deadline);
        self
    }

    /// Inject the given fault plan into parallel workers.
    pub fn with_faults(mut self, faults: FaultPlan) -> RunConfig {
        self.faults = faults;
        self
    }

    /// Disable the sequential fallback: worker failures surface as
    /// typed errors instead of being recovered from.
    pub fn no_fallback(mut self) -> RunConfig {
        self.fallback = false;
        self
    }
}

/// Final state of an execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    arrays: HashMap<String, ArrayStore>,
    scalars: HashMap<String, Value>,
    pub printed: Vec<Value>,
    pub stats: ExecStats,
    pub profile: HashMap<LoopId, LoopProfile>,
    /// Total statements executed (coverage denominators).
    pub total_work: u64,
    /// Simulated execution time in work units: like `total_work`, but a
    /// parallel region contributes the *maximum* over its workers plus a
    /// fork/join and private-copy overhead, instead of the sum. The
    /// speedup figure is computed from this model (the development host
    /// may have a single CPU; see DESIGN.md "Substitutions").
    pub sim_time: u64,
}

impl RunResult {
    /// Final contents of an entry-frame array (parameter or local).
    pub fn array(&self, name: &str) -> Option<&ArrayStore> {
        self.arrays.get(name)
    }

    /// Final value of an entry-frame scalar.
    pub fn scalar(&self, name: &str) -> Option<Value> {
        self.scalars.get(name).copied()
    }

    /// Whether the final machine state (arrays and scalars) is
    /// bit-identical to `other`'s. Stricter than [`Self::max_abs_diff`]:
    /// `-0.0` vs `0.0` and NaN payloads count as differences, which is
    /// exactly the guarantee the two-version fallback makes — recovery
    /// reproduces the sequential result, not an approximation of it.
    pub fn bits_eq(&self, other: &RunResult) -> bool {
        if self.arrays.len() != other.arrays.len() || self.scalars.len() != other.scalars.len() {
            return false;
        }
        for (name, a) in &self.arrays {
            match other.arrays.get(name) {
                Some(b) if a.bits_eq(b) => {}
                _ => return false,
            }
        }
        for (name, a) in &self.scalars {
            match other.scalars.get(name) {
                Some(b) if a.bits_eq(*b) => {}
                _ => return false,
            }
        }
        true
    }

    /// Maximum absolute difference across all arrays against another
    /// result (both must come from the same program).
    pub fn max_abs_diff(&self, other: &RunResult) -> f64 {
        let mut worst: f64 = 0.0;
        for (name, a) in &self.arrays {
            if let Some(b) = other.arrays.get(name) {
                worst = worst.max(a.max_abs_diff(b));
            }
        }
        for (name, a) in &self.scalars {
            if let Some(b) = other.scalars.get(name) {
                worst = worst.max((a.as_f64() - b.as_f64()).abs());
            }
        }
        worst
    }
}

/// Control flow escaping a statement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Flow {
    Normal,
    /// `exit when` fired: unwind to the nearest loop.
    Exit,
}

/// An array visible in a frame: the storage handle plus the *view*
/// shape this procedure declared for it. Passing an array to a callee
/// with a different declared shape reinterprets the same row-major
/// storage (Fortran reshape semantics) — subscripts are resolved against
/// the view, offsets against the shared store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayBinding {
    pub handle: usize,
    /// Index of the view shape in [`Frame::shapes`].
    pub shape: usize,
}

/// One procedure activation.
#[derive(Clone, Debug, Default)]
pub struct Frame {
    pub scalars: HashMap<Var, Value>,
    /// Array name -> binding (handle + view shape).
    pub arrays: HashMap<Var, ArrayBinding>,
    /// View shapes referenced by bindings.
    pub shapes: Vec<Vec<usize>>,
}

impl Frame {
    /// Bind `name` to `handle` viewed with `dims`.
    pub fn bind_array(&mut self, name: Var, handle: usize, dims: Vec<usize>) {
        let shape = self.shapes.len();
        self.shapes.push(dims);
        self.arrays.insert(name, ArrayBinding { handle, shape });
    }

    /// The storage handle for `name`, if bound.
    pub fn array_handle(&self, name: Var) -> Option<usize> {
        self.arrays.get(&name).map(|b| b.handle)
    }
}

/// Per-worker write tracking (for ordered merges).
#[derive(Clone, Debug, Default)]
pub struct Tracker {
    /// Per-handle element write stamps: 0 = untouched, otherwise the
    /// 1-based index of the last chunk that wrote the element. Merging
    /// in descending-stamp order reproduces sequential last-value
    /// semantics under any chunk-to-worker assignment.
    pub masks: HashMap<usize, Vec<u32>>,
    /// Last writing chunk per scalar (same stamp discipline).
    pub scalar_writes: HashMap<Var, u32>,
    /// Stamp of the chunk currently executing (set by the executor).
    pub stamp: u32,
}

/// The interpreter.
pub struct Machine<'p> {
    pub prog: &'p Program,
    pub cfg: &'p RunConfig,
    pub arrays: Vec<ArrayStore>,
    pub stats: ExecStats,
    pub profile: HashMap<LoopId, LoopProfile>,
    pub printed: Vec<Value>,
    pub(crate) input_pos: usize,
    /// True inside a parallel worker: suppresses nested parallelism.
    pub in_worker: bool,
    pub tracker: Option<Tracker>,
    pub(crate) elpd: Option<ElpdState>,
    pub work: u64,
    /// Simulated-time counter (see [`RunResult::sim_time`]).
    pub sim: u64,
    /// Remaining statement budget; `None` = unlimited. Initialized from
    /// [`RunConfig::fuel`]; workers are handed a split of the parent's
    /// remaining budget by the parallel executor.
    pub fuel: Option<u64>,
    /// Absolute wall-clock deadline (checked every few hundred
    /// statements to keep the hot path cheap).
    pub deadline: Option<Instant>,
    /// Armed fault injections (workers only; see [`crate::faults`]).
    pub pending_faults: Vec<PendingFault>,
}

impl<'p> Machine<'p> {
    pub fn new(prog: &'p Program, cfg: &'p RunConfig) -> Machine<'p> {
        Machine {
            prog,
            cfg,
            arrays: Vec::new(),
            stats: ExecStats::default(),
            profile: HashMap::new(),
            printed: Vec::new(),
            input_pos: 0,
            in_worker: false,
            tracker: None,
            elpd: None,
            work: 0,
            sim: 0,
            fuel: cfg.fuel,
            deadline: cfg.deadline.map(|d| Instant::now() + d),
            pending_faults: Vec::new(),
        }
    }

    pub fn alloc_array(&mut self, store: ArrayStore) -> usize {
        self.arrays.push(store);
        self.arrays.len() - 1
    }

    fn scalar(&self, frame: &Frame, v: Var) -> Result<Value, ExecError> {
        frame
            .scalars
            .get(&v)
            .copied()
            .ok_or_else(|| ExecError::UnboundScalar(v.name()))
    }

    fn handle(&self, frame: &Frame, a: Var) -> Result<usize, ExecError> {
        frame
            .array_handle(a)
            .ok_or_else(|| ExecError::UnboundArray(a.name()))
    }

    fn index(&self, frame: &Frame, a: Var, subs: &[Expr]) -> Result<(usize, usize), ExecError> {
        let binding = *frame
            .arrays
            .get(&a)
            .ok_or_else(|| ExecError::UnboundArray(a.name()))?;
        let dims = &frame.shapes[binding.shape];
        // Hot path: no heap allocation per access (ranks are small).
        let mut idxs = [0i64; 8];
        if subs.len() > idxs.len() || subs.len() != dims.len() {
            return Err(ExecError::OutOfBounds {
                array: a.name(),
                idxs: Vec::new(),
            });
        }
        for (slot, s) in idxs.iter_mut().zip(subs) {
            *slot = self.eval(frame, s)?.as_i64();
        }
        // Resolve against the view shape (row-major, 1-based), then
        // bound-check the flat offset against the shared store.
        let mut off: usize = 0;
        for (&i, &d) in idxs.iter().zip(dims) {
            if i < 1 || i as usize > d {
                return Err(ExecError::OutOfBounds {
                    array: a.name(),
                    idxs: idxs[..subs.len()].to_vec(),
                });
            }
            off = off * d + (i as usize - 1);
        }
        if off >= self.arrays[binding.handle].len() {
            return Err(ExecError::OutOfBounds {
                array: a.name(),
                idxs: idxs[..subs.len()].to_vec(),
            });
        }
        Ok((binding.handle, off))
    }

    /// Evaluate an arithmetic expression.
    pub fn eval(&self, frame: &Frame, e: &Expr) -> Result<Value, ExecError> {
        Ok(match e {
            Expr::IntLit(v) => Value::Int(*v),
            Expr::RealLit(v) => Value::Real(*v),
            Expr::Scalar(v) => self.scalar(frame, *v)?,
            Expr::Elem(a, subs) => {
                let (h, off) = self.index(frame, *a, subs)?;
                self.arrays[h].get(off)
            }
            Expr::Add(a, b) => num2(
                self.eval(frame, a)?,
                self.eval(frame, b)?,
                |x, y| x + y,
                |x, y| x.wrapping_add(y),
            ),
            Expr::Sub(a, b) => num2(
                self.eval(frame, a)?,
                self.eval(frame, b)?,
                |x, y| x - y,
                |x, y| x.wrapping_sub(y),
            ),
            Expr::Mul(a, b) => num2(
                self.eval(frame, a)?,
                self.eval(frame, b)?,
                |x, y| x * y,
                |x, y| x.wrapping_mul(y),
            ),
            Expr::Div(a, b) => {
                let x = self.eval(frame, a)?;
                let y = self.eval(frame, b)?;
                match (x, y) {
                    (Value::Int(p), Value::Int(q)) => {
                        if q == 0 {
                            return Err(ExecError::DivisionByZero);
                        }
                        Value::Int(p / q)
                    }
                    _ => {
                        let q = y.as_f64();
                        Value::Real(x.as_f64() / q)
                    }
                }
            }
            Expr::Mod(a, b) => {
                let x = self.eval(frame, a)?.as_i64();
                let y = self.eval(frame, b)?.as_i64();
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                Value::Int(x.rem_euclid(y))
            }
            Expr::Neg(a) => match self.eval(frame, a)? {
                Value::Int(v) => Value::Int(-v),
                Value::Real(v) => Value::Real(-v),
            },
            Expr::Call(intr, args) => {
                let x = self.eval(frame, &args[0])?;
                match intr {
                    Intrinsic::Sin => Value::Real(x.as_f64().sin()),
                    Intrinsic::Cos => Value::Real(x.as_f64().cos()),
                    Intrinsic::Sqrt => Value::Real(x.as_f64().sqrt()),
                    Intrinsic::Exp => Value::Real(x.as_f64().exp()),
                    Intrinsic::Abs => match x {
                        Value::Int(v) => Value::Int(v.abs()),
                        Value::Real(v) => Value::Real(v.abs()),
                    },
                    Intrinsic::Min | Intrinsic::Max => {
                        let y = self.eval(frame, &args[1])?;
                        match (x, y) {
                            (Value::Int(p), Value::Int(q)) => {
                                Value::Int(if *intr == Intrinsic::Min {
                                    p.min(q)
                                } else {
                                    p.max(q)
                                })
                            }
                            _ => {
                                let (p, q) = (x.as_f64(), y.as_f64());
                                Value::Real(if *intr == Intrinsic::Min {
                                    p.min(q)
                                } else {
                                    p.max(q)
                                })
                            }
                        }
                    }
                }
            }
        })
    }

    /// Evaluate a boolean expression.
    pub fn eval_bool(&self, frame: &Frame, b: &BoolExpr) -> Result<bool, ExecError> {
        Ok(match b {
            BoolExpr::Lit(v) => *v,
            BoolExpr::Cmp(op, a, c) => {
                let x = self.eval(frame, a)?;
                let y = self.eval(frame, c)?;
                match (x, y) {
                    (Value::Int(p), Value::Int(q)) => op.apply_i(p, q),
                    _ => op.apply_f(x.as_f64(), y.as_f64()),
                }
            }
            BoolExpr::And(a, c) => self.eval_bool(frame, a)? && self.eval_bool(frame, c)?,
            BoolExpr::Or(a, c) => self.eval_bool(frame, a)? || self.eval_bool(frame, c)?,
            BoolExpr::Not(a) => !self.eval_bool(frame, a)?,
        })
    }

    /// Record reads for the ELPD inspector.
    fn note_reads(&mut self, frame: &Frame, e: &Expr) -> Result<(), ExecError> {
        if self.elpd.is_none() {
            return Ok(());
        }
        // Collect accesses first (cannot call hooks during traversal due
        // to borrow rules).
        let mut accesses: Vec<(usize, usize)> = Vec::new();
        let mut scalars: Vec<Var> = Vec::new();
        collect_reads(self, frame, e, &mut accesses, &mut scalars)?;
        if let Some(elpd) = &mut self.elpd {
            for (h, off) in accesses {
                elpd.on_array_read(h, off);
            }
            for v in scalars {
                elpd.on_scalar_read(v);
            }
        }
        Ok(())
    }

    fn note_bool_reads(&mut self, frame: &Frame, b: &BoolExpr) -> Result<(), ExecError> {
        if self.elpd.is_none() {
            return Ok(());
        }
        match b {
            BoolExpr::Lit(_) => Ok(()),
            BoolExpr::Cmp(_, x, y) => {
                self.note_reads(frame, x)?;
                self.note_reads(frame, y)
            }
            BoolExpr::And(x, y) | BoolExpr::Or(x, y) => {
                self.note_bool_reads(frame, x)?;
                self.note_bool_reads(frame, y)
            }
            BoolExpr::Not(x) => self.note_bool_reads(frame, x),
        }
    }

    /// Execute one statement.
    pub fn exec_stmt(&mut self, frame: &mut Frame, stmt: &Stmt) -> Result<Flow, ExecError> {
        if let Some(fuel) = &mut self.fuel {
            if *fuel == 0 {
                return Err(ExecError::FuelExhausted);
            }
            *fuel -= 1;
        }
        self.work += 1;
        self.sim += 1;
        // Amortize the clock read: a syscall per statement would dwarf
        // the interpreter itself.
        if self.deadline.is_some() && self.work & 0x1FF == 0 {
            if let Some(deadline) = self.deadline {
                if Instant::now() > deadline {
                    return Err(ExecError::DeadlineExceeded);
                }
            }
        }
        if !self.pending_faults.is_empty() {
            self.fire_faults()?;
        }
        match stmt {
            Stmt::Assign { lhs, rhs } => {
                self.note_reads(frame, rhs)?;
                let val = self.eval(frame, rhs)?;
                match lhs {
                    LValue::Scalar(v) => {
                        // Preserve the declared type of the target.
                        let stored = match frame.scalars.get(v) {
                            Some(Value::Int(_)) => Value::Int(val.as_i64()),
                            Some(Value::Real(_)) => Value::Real(val.as_f64()),
                            None => val,
                        };
                        frame.scalars.insert(*v, stored);
                        if let Some(t) = &mut self.tracker {
                            t.scalar_writes.insert(*v, t.stamp);
                        }
                        if let Some(e) = &mut self.elpd {
                            e.on_scalar_write(*v);
                        }
                    }
                    LValue::Elem(a, subs) => {
                        for s in subs {
                            self.note_reads(frame, s)?;
                        }
                        let (h, off) = self.index(frame, *a, subs)?;
                        self.arrays[h].set(off, val);
                        if let Some(t) = &mut self.tracker {
                            let stamp = t.stamp;
                            t.masks
                                .entry(h)
                                .or_insert_with(|| vec![0; self.arrays[h].len()])[off] = stamp;
                        }
                        if let Some(e) = &mut self.elpd {
                            e.on_array_write(h, off);
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.note_bool_reads(frame, cond)?;
                if self.eval_bool(frame, cond)? {
                    self.exec_block(frame, then_blk)
                } else {
                    self.exec_block(frame, else_blk)
                }
            }
            Stmt::For(l) => self.exec_loop(frame, l),
            Stmt::Call { callee, args } => {
                self.exec_call(frame, callee, args)?;
                Ok(Flow::Normal)
            }
            Stmt::Read(v) => {
                let raw = if self.cfg.input.is_empty() {
                    0.0
                } else {
                    let x = self.cfg.input[self.input_pos % self.cfg.input.len()];
                    self.input_pos += 1;
                    x
                };
                let stored = match frame.scalars.get(v) {
                    Some(Value::Int(_)) => Value::Int(raw as i64),
                    _ => Value::Real(raw),
                };
                frame.scalars.insert(*v, stored);
                Ok(Flow::Normal)
            }
            Stmt::Print(e) => {
                self.note_reads(frame, e)?;
                let v = self.eval(frame, e)?;
                self.printed.push(v);
                Ok(Flow::Normal)
            }
            Stmt::ExitWhen(c) => {
                self.note_bool_reads(frame, c)?;
                if self.eval_bool(frame, c)? {
                    Ok(Flow::Exit)
                } else {
                    Ok(Flow::Normal)
                }
            }
        }
    }

    /// Fire any armed fault whose statement count has been reached.
    /// Statements are counted per machine, so inside a worker `work`
    /// is the worker-local count the [`crate::faults::FaultSpec`]
    /// refers to.
    fn fire_faults(&mut self) -> Result<(), ExecError> {
        let stmt_no = self.work;
        let mut fired_err = None;
        self.pending_faults.retain(|f| {
            if f.at_stmt != stmt_no || fired_err.is_some() {
                return f.at_stmt > stmt_no;
            }
            match &f.kind {
                FaultKind::Panic => {
                    panic!("injected fault: panic at statement {stmt_no}");
                }
                FaultKind::Error(e) => {
                    fired_err = Some(e.clone());
                }
                FaultKind::CorruptStamp => {
                    // Silent metadata corruption: keep executing with a
                    // stamp no chunk assignment could have produced.
                    if let Some(t) = &mut self.tracker {
                        t.stamp = u32::MAX;
                    }
                }
            }
            false
        });
        match fired_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    pub fn exec_block(&mut self, frame: &mut Frame, block: &Block) -> Result<Flow, ExecError> {
        for s in &block.stmts {
            if self.exec_stmt(frame, s)? == Flow::Exit {
                return Ok(Flow::Exit);
            }
        }
        Ok(Flow::Normal)
    }

    /// Execute one loop (choosing sequential or parallel execution).
    pub(crate) fn exec_loop(&mut self, frame: &mut Frame, l: &Loop) -> Result<Flow, ExecError> {
        let lo = self.eval(frame, &l.lo)?.as_i64();
        let hi = self.eval(frame, &l.hi)?.as_i64();
        let trip = if l.step > 0 {
            if hi >= lo {
                ((hi - lo) / l.step + 1) as u64
            } else {
                0
            }
        } else if lo >= hi {
            ((lo - hi) / (-l.step) + 1) as u64
        } else {
            0
        };
        let work_before = self.work;
        {
            let p = self.profile.entry(l.id).or_default();
            p.invocations += 1;
            p.iterations += trip;
        }
        self.stats.iterations += trip;

        let elpd_target = self.elpd.as_ref().map(|e| e.target) == Some(l.id);
        if elpd_target {
            if let Some(e) = &mut self.elpd {
                e.begin_invocation(self.arrays.len());
            }
        }

        // Inspector/executor path (the run-time comparator the paper
        // argues against: per-invocation inspection whose cost scales
        // with the aggregate size of the accessed arrays).
        if !self.in_worker
            && self.cfg.workers > 1
            && trip >= 2
            && self.elpd.is_none()
            && self.cfg.inspect.contains(&l.id)
        {
            crate::inspector::run_inspected_loop(self, frame, l)?;
            let delta = self.work - work_before;
            self.profile.entry(l.id).or_default().work += delta;
            return Ok(Flow::Normal);
        }

        // Parallel path.
        if !self.in_worker && self.cfg.workers > 1 && trip >= 2 && self.elpd.is_none() {
            if let Some(plan) = self.cfg.plan.get(l.id) {
                let go = match &plan.kind {
                    ParallelKind::Always => true,
                    ParallelKind::If(test) => {
                        let ok = self.eval_bool(frame, test)?;
                        if ok {
                            self.stats.tests_passed += 1;
                        } else {
                            self.stats.tests_failed += 1;
                        }
                        ok
                    }
                };
                if go {
                    self.stats.parallel_loops += 1;
                    let plan = plan.clone();
                    crate::parallel::run_parallel_loop(self, frame, l, &plan, lo, hi)?;
                    let delta = self.work - work_before;
                    self.profile.entry(l.id).or_default().work += delta;
                    return Ok(Flow::Normal);
                }
            }
        }

        // Sequential path.
        let saved = frame.scalars.get(&l.var).copied();
        let mut i = lo;
        while (l.step > 0 && i <= hi) || (l.step < 0 && i >= hi) {
            frame.scalars.insert(l.var, Value::Int(i));
            if elpd_target {
                if let Some(e) = &mut self.elpd {
                    e.set_iteration(i);
                }
            }
            let flow = self.exec_block(frame, &l.body)?;
            if flow == Flow::Exit {
                break;
            }
            i += l.step;
        }
        match saved {
            Some(v) => {
                frame.scalars.insert(l.var, v);
            }
            None => {
                frame.scalars.remove(&l.var);
            }
        }
        if elpd_target {
            if let Some(e) = &mut self.elpd {
                e.end_invocation();
            }
        }
        let delta = self.work - work_before;
        self.profile.entry(l.id).or_default().work += delta;
        Ok(Flow::Normal)
    }

    /// Execute a procedure call.
    fn exec_call(&mut self, frame: &Frame, callee: &str, args: &[Arg]) -> Result<(), ExecError> {
        let proc = self
            .prog
            .proc(callee)
            .ok_or_else(|| ExecError::UnknownProcedure(callee.to_string()))?;
        let mut callee_frame = Frame::default();
        // First pass: bind scalar parameters, so array extents that
        // reference sibling scalar parameters can be evaluated.
        for (param, arg) in proc.params.iter().zip(args) {
            match (&param.ty, arg) {
                (padfa_ir::ParamTy::Scalar(ty), Arg::Scalar(e)) => {
                    let v = self.eval(frame, e)?;
                    self.note_reads_frame(frame, e)?;
                    let stored = match ty {
                        ScalarTy::Int => Value::Int(v.as_i64()),
                        ScalarTy::Real => Value::Real(v.as_f64()),
                    };
                    callee_frame.scalars.insert(param.name, stored);
                }
                (padfa_ir::ParamTy::Scalar(ty), Arg::Array(v)) => {
                    // Bare-identifier scalar actual.
                    let val = self.scalar(frame, *v)?;
                    let stored = match ty {
                        ScalarTy::Int => Value::Int(val.as_i64()),
                        ScalarTy::Real => Value::Real(val.as_f64()),
                    };
                    callee_frame.scalars.insert(param.name, stored);
                }
                _ => {}
            }
        }
        // Second pass: bind arrays with the callee's declared view shape.
        for (param, arg) in proc.params.iter().zip(args) {
            match (&param.ty, arg) {
                (padfa_ir::ParamTy::Array { dims, .. }, Arg::Array(v)) => {
                    let h = self.handle(frame, *v)?;
                    let mut view = Vec::with_capacity(dims.len());
                    for e in dims {
                        let n = self.eval(&callee_frame, e)?.as_i64();
                        if n < 0 {
                            return Err(ExecError::BadArgument(format!(
                                "negative extent for parameter '{}' of '{callee}'",
                                param.name
                            )));
                        }
                        view.push(n as usize);
                    }
                    callee_frame.bind_array(param.name, h, view);
                }
                (padfa_ir::ParamTy::Array { .. }, Arg::Scalar(_)) => {
                    return Err(ExecError::BadArgument(format!(
                        "scalar passed for array parameter of '{callee}'"
                    )));
                }
                _ => {}
            }
        }
        self.init_locals(proc, &mut callee_frame)?;
        self.exec_block(&mut callee_frame, &proc.body)?;
        Ok(())
    }

    fn note_reads_frame(&mut self, frame: &Frame, e: &Expr) -> Result<(), ExecError> {
        self.note_reads(frame, e)
    }

    /// Allocate locals (arrays + scalars) for a procedure activation.
    pub fn init_locals(&mut self, proc: &Procedure, frame: &mut Frame) -> Result<(), ExecError> {
        for d in &proc.arrays {
            let mut dims = Vec::with_capacity(d.dims.len());
            for e in &d.dims {
                let n = self.eval(frame, e)?.as_i64();
                if n < 0 {
                    return Err(ExecError::BadArgument(format!(
                        "negative extent for array '{}'",
                        d.name
                    )));
                }
                dims.push(n as usize);
            }
            let h = self.alloc_array(ArrayStore::zeros(dims.clone(), d.ty));
            frame.bind_array(d.name, h, dims);
        }
        for s in &proc.scalars {
            let v = match &s.init {
                Some(e) => {
                    let val = self.eval(frame, e)?;
                    match s.ty {
                        ScalarTy::Int => Value::Int(val.as_i64()),
                        ScalarTy::Real => Value::Real(val.as_f64()),
                    }
                }
                None => Value::zero(s.ty),
            };
            frame.scalars.insert(s.name, v);
        }
        Ok(())
    }
}

fn collect_reads(
    m: &Machine<'_>,
    frame: &Frame,
    e: &Expr,
    accesses: &mut Vec<(usize, usize)>,
    scalars: &mut Vec<Var>,
) -> Result<(), ExecError> {
    match e {
        Expr::IntLit(_) | Expr::RealLit(_) => {}
        Expr::Scalar(v) => scalars.push(*v),
        Expr::Elem(a, subs) => {
            for s in subs {
                collect_reads(m, frame, s, accesses, scalars)?;
            }
            let (h, off) = m.index(frame, *a, subs)?;
            accesses.push((h, off));
        }
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) | Expr::Mod(a, b) => {
            collect_reads(m, frame, a, accesses, scalars)?;
            collect_reads(m, frame, b, accesses, scalars)?;
        }
        Expr::Neg(a) => collect_reads(m, frame, a, accesses, scalars)?,
        Expr::Call(_, args) => {
            for a in args {
                collect_reads(m, frame, a, accesses, scalars)?;
            }
        }
    }
    Ok(())
}

#[inline]
fn num2(a: Value, b: Value, f: fn(f64, f64) -> f64, g: fn(i64, i64) -> i64) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(g(x, y)),
        _ => Value::Real(f(a.as_f64(), b.as_f64())),
    }
}

/// Build the entry frame from arguments.
pub(crate) fn build_entry_frame(
    machine: &mut Machine<'_>,
    proc: &Procedure,
    args: Vec<ArgValue>,
) -> Result<Frame, ExecError> {
    if args.len() != proc.params.len() {
        return Err(ExecError::BadArgument(format!(
            "entry '{}' expects {} argument(s), got {}",
            proc.name,
            proc.params.len(),
            args.len()
        )));
    }
    let mut frame = Frame::default();
    for (param, arg) in proc.params.iter().zip(args) {
        match (&param.ty, arg) {
            (padfa_ir::ParamTy::Scalar(ScalarTy::Int), ArgValue::Int(v)) => {
                frame.scalars.insert(param.name, Value::Int(v));
            }
            (padfa_ir::ParamTy::Scalar(ScalarTy::Real), ArgValue::Real(v)) => {
                frame.scalars.insert(param.name, Value::Real(v));
            }
            (padfa_ir::ParamTy::Scalar(ScalarTy::Real), ArgValue::Int(v)) => {
                frame.scalars.insert(param.name, Value::Real(v as f64));
            }
            (padfa_ir::ParamTy::Array { .. }, ArgValue::Array(store)) => {
                let dims = store.dims.clone();
                let h = machine.alloc_array(store);
                frame.bind_array(param.name, h, dims);
            }
            (_, arg) => {
                return Err(ExecError::BadArgument(format!(
                    "argument for '{}' has wrong kind: {arg:?}",
                    param.name
                )));
            }
        }
    }
    machine.init_locals(proc, &mut frame)?;
    Ok(frame)
}

/// Run the entry procedure (`main`, or the first procedure).
pub fn run_main(
    prog: &Program,
    args: Vec<ArgValue>,
    cfg: &RunConfig,
) -> Result<RunResult, ExecError> {
    let proc = prog.entry().ok_or(ExecError::NoEntryProcedure)?;
    let mut machine = Machine::new(prog, cfg);
    let mut frame = build_entry_frame(&mut machine, proc, args)?;
    machine.exec_block(&mut frame, &proc.body)?;
    let mut arrays = HashMap::new();
    for (v, b) in &frame.arrays {
        arrays.insert(v.name(), machine.arrays[b.handle].clone());
    }
    let scalars = frame
        .scalars
        .iter()
        .map(|(v, &val)| (v.name(), val))
        .collect();
    Ok(RunResult {
        arrays,
        scalars,
        printed: machine.printed,
        stats: machine.stats,
        profile: machine.profile,
        total_work: machine.work,
        sim_time: machine.sim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_ir::parse::parse_program;

    fn run(src: &str, args: Vec<ArgValue>) -> RunResult {
        let prog = parse_program(src).unwrap();
        run_main(&prog, args, &RunConfig::sequential()).unwrap()
    }

    #[test]
    fn arithmetic_and_assignment() {
        let r = run(
            "proc main() { var x: int; var y: real;
             x = 2 + 3 * 4; y = 10.0 / 4.0; }",
            vec![],
        );
        assert_eq!(r.scalar("x"), Some(Value::Int(14)));
        assert_eq!(r.scalar("y"), Some(Value::Real(2.5)));
    }

    #[test]
    fn integer_division_and_mod() {
        let r = run(
            "proc main() { var a: int; var b: int;
             a = 7 / 2; b = 7 % 3; }",
            vec![],
        );
        assert_eq!(r.scalar("a"), Some(Value::Int(3)));
        assert_eq!(r.scalar("b"), Some(Value::Int(1)));
    }

    #[test]
    fn loop_fills_array() {
        let r = run(
            "proc main(n: int) { array a[10];
             for i = 1 to n { a[i] = i * 2; } }",
            vec![ArgValue::Int(10)],
        );
        let a = r.array("a").unwrap().as_f64();
        assert_eq!(a[0], 2.0);
        assert_eq!(a[9], 20.0);
    }

    #[test]
    fn loop_step() {
        let r = run(
            "proc main() { array a[10];
             for i = 1 to 10 step 3 { a[i] = 1.0; } }",
            vec![],
        );
        let a = r.array("a").unwrap().as_f64();
        assert_eq!(a, vec![1., 0., 0., 1., 0., 0., 1., 0., 0., 1.]);
    }

    #[test]
    fn zero_trip_loop() {
        let r = run(
            "proc main(n: int) { array a[4];
             for i = 1 to n { a[i] = 9.0; } }",
            vec![ArgValue::Int(0)],
        );
        assert_eq!(r.array("a").unwrap().as_f64(), vec![0.0; 4]);
        assert_eq!(r.stats.iterations, 0);
    }

    #[test]
    fn conditionals() {
        let r = run(
            "proc main(x: int) { var y: int;
             if (x > 5) { y = 1; } else { y = 2; } }",
            vec![ArgValue::Int(7)],
        );
        assert_eq!(r.scalar("y"), Some(Value::Int(1)));
    }

    #[test]
    fn exit_when_breaks_loop() {
        let r = run(
            "proc main() { array a[10]; var k: int;
             for i = 1 to 10 {
                 a[i] = 1.0;
                 exit when (i >= 4);
             }
             k = 0; }",
            vec![],
        );
        let a = r.array("a").unwrap().as_f64();
        assert_eq!(a.iter().filter(|&&x| x == 1.0).count(), 4);
        assert_eq!(r.scalar("k"), Some(Value::Int(0)), "execution continues");
    }

    #[test]
    fn procedure_call_by_reference_arrays() {
        let r = run(
            "proc addone(b: array[5], n: int) {
                 for j = 1 to n { b[j] = b[j] + 1.0; }
             }
             proc main() { array a[5];
                 call addone(a, 5);
                 call addone(a, 3);
             }",
            vec![],
        );
        assert_eq!(r.array("a").unwrap().as_f64(), vec![2., 2., 2., 1., 1.]);
    }

    #[test]
    fn scalar_params_by_value() {
        let r = run(
            "proc inc(x: int) { x = x + 1; }
             proc main() { var y: int; y = 5; call inc(y); }",
            vec![],
        );
        assert_eq!(r.scalar("y"), Some(Value::Int(5)));
    }

    #[test]
    fn two_d_arrays() {
        let r = run(
            "proc main() { array a[3, 3];
             for i = 1 to 3 { for j = 1 to 3 { a[i, j] = i * 10 + j; } } }",
            vec![],
        );
        let a = r.array("a").unwrap();
        assert_eq!(a.get(a.offset(&[2, 3]).unwrap()).as_f64(), 23.0);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let prog = parse_program("proc main() { array a[3]; a[4] = 1.0; }").unwrap();
        let err = run_main(&prog, vec![], &RunConfig::sequential()).unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { .. }));
    }

    #[test]
    fn read_and_print() {
        let prog = parse_program("proc main() { var x: real; read x; print x * 2.0; }").unwrap();
        let cfg = RunConfig {
            input: vec![21.0],
            ..RunConfig::sequential()
        };
        let r = run_main(&prog, vec![], &cfg).unwrap();
        assert_eq!(r.printed, vec![Value::Real(42.0)]);
    }

    #[test]
    fn intrinsics() {
        let r = run(
            "proc main() { var a: real; var b: real; var c: int;
             a = sqrt(16.0); b = max(2.5, 1.0); c = abs(0 - 7); }",
            vec![],
        );
        assert_eq!(r.scalar("a"), Some(Value::Real(4.0)));
        assert_eq!(r.scalar("b"), Some(Value::Real(2.5)));
        assert_eq!(r.scalar("c"), Some(Value::Int(7)));
    }

    #[test]
    fn profile_counts_loops() {
        let r = run(
            "proc main(n: int) { array a[100];
             for i = 1 to n { a[i] = 1.0; }
             for i = 1 to n { a[i] = a[i] + 1.0; } }",
            vec![ArgValue::Int(50)],
        );
        assert_eq!(r.profile[&LoopId(0)].iterations, 50);
        assert_eq!(r.profile[&LoopId(1)].iterations, 50);
        assert_eq!(r.profile[&LoopId(0)].invocations, 1);
        assert!(r.profile[&LoopId(0)].work >= 50);
        assert!(r.total_work > 100);
    }

    #[test]
    fn symbolic_dims_from_params() {
        let r = run(
            "proc main(n: int) { array a[n];
             for i = 1 to n { a[i] = 1.0; } }",
            vec![ArgValue::Int(6)],
        );
        assert_eq!(r.array("a").unwrap().len(), 6);
    }

    #[test]
    fn declared_int_scalar_keeps_type() {
        let r = run("proc main() { var k: int; k = 5 / 2; k = k + 1; }", vec![]);
        assert_eq!(r.scalar("k"), Some(Value::Int(3)));
    }
}
