//! Runtime values and array storage.

use padfa_ir::ScalarTy;

/// A scalar runtime value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    Int(i64),
    Real(f64),
}

impl Value {
    pub fn zero(ty: ScalarTy) -> Value {
        match ty {
            ScalarTy::Int => Value::Int(0),
            ScalarTy::Real => Value::Real(0.0),
        }
    }

    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Real(v) => v,
        }
    }

    /// Integer view; truncates reals (used only where the language
    /// requires an integer, e.g. subscripts — the resolver keeps real
    /// expressions out of those positions).
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Real(v) => v as i64,
        }
    }

    pub fn is_int(self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// Bit-exact equality: distinguishes `-0.0` from `0.0`, compares
    /// NaNs by payload, and never equates an `Int` with a `Real`. This
    /// is the comparison the fault-tolerance tests use to prove a
    /// recovered run reproduces the sequential result exactly.
    pub fn bits_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

/// Dense array storage (row-major, 1-based logical indexing).
#[derive(Clone, PartialEq, Debug)]
pub struct ArrayStore {
    pub dims: Vec<usize>,
    pub ty: ScalarTy,
    data: Data,
}

#[derive(Clone, PartialEq, Debug)]
enum Data {
    Int(Vec<i64>),
    Real(Vec<f64>),
}

impl ArrayStore {
    /// Zero-filled array.
    pub fn zeros(dims: Vec<usize>, ty: ScalarTy) -> ArrayStore {
        let n: usize = dims.iter().product();
        ArrayStore {
            dims,
            ty,
            data: match ty {
                ScalarTy::Int => Data::Int(vec![0; n]),
                ScalarTy::Real => Data::Real(vec![0.0; n]),
            },
        }
    }

    /// Real array from data (single dimension inferred).
    pub fn from_f64(data: Vec<f64>) -> ArrayStore {
        ArrayStore {
            dims: vec![data.len()],
            ty: ScalarTy::Real,
            data: Data::Real(data),
        }
    }

    /// Integer array from data.
    pub fn from_i64(data: Vec<i64>) -> ArrayStore {
        ArrayStore {
            dims: vec![data.len()],
            ty: ScalarTy::Int,
            data: Data::Int(data),
        }
    }

    /// 2-D real array from data in row-major order.
    pub fn from_f64_2d(rows: usize, cols: usize, data: Vec<f64>) -> ArrayStore {
        assert_eq!(data.len(), rows * cols);
        ArrayStore {
            dims: vec![rows, cols],
            ty: ScalarTy::Real,
            data: Data::Real(data),
        }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat offset of 1-based indices; `None` when out of bounds.
    pub fn offset(&self, idxs: &[i64]) -> Option<usize> {
        if idxs.len() != self.dims.len() {
            return None;
        }
        let mut off: usize = 0;
        for (&i, &d) in idxs.iter().zip(&self.dims) {
            if i < 1 || i as usize > d {
                return None;
            }
            off = off * d + (i as usize - 1);
        }
        Some(off)
    }

    pub fn get(&self, off: usize) -> Value {
        match &self.data {
            Data::Int(v) => Value::Int(v[off]),
            Data::Real(v) => Value::Real(v[off]),
        }
    }

    pub fn set(&mut self, off: usize, val: Value) {
        match &mut self.data {
            Data::Int(v) => v[off] = val.as_i64(),
            Data::Real(v) => v[off] = val.as_f64(),
        }
    }

    /// Real view of the whole storage (converting integers).
    pub fn as_f64(&self) -> Vec<f64> {
        match &self.data {
            Data::Int(v) => v.iter().map(|&x| x as f64).collect(),
            Data::Real(v) => v.clone(),
        }
    }

    /// Fill every element with an identity value for a reduction.
    pub fn fill(&mut self, val: Value) {
        match &mut self.data {
            Data::Int(v) => v.fill(val.as_i64()),
            Data::Real(v) => v.fill(val.as_f64()),
        }
    }

    /// Bit-exact equality against another store: same shape, same
    /// element type, and every element identical down to the float bit
    /// pattern (see [`Value::bits_eq`]).
    pub fn bits_eq(&self, other: &ArrayStore) -> bool {
        if self.dims != other.dims {
            return false;
        }
        match (&self.data, &other.data) {
            (Data::Int(a), Data::Int(b)) => a == b,
            (Data::Real(a), Data::Real(b)) => {
                a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => false,
        }
    }

    /// Maximum absolute elementwise difference against another store of
    /// the same shape (test helper).
    pub fn max_abs_diff(&self, other: &ArrayStore) -> f64 {
        assert_eq!(self.dims, other.dims);
        self.as_f64()
            .iter()
            .zip(other.as_f64())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// An argument to the entry procedure.
#[derive(Clone, Debug)]
pub enum ArgValue {
    Int(i64),
    Real(f64),
    Array(ArrayStore),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(3).as_f64(), 3.0);
        assert_eq!(Value::Real(2.5).as_i64(), 2);
        assert!(Value::Int(1).is_int());
        assert!(!Value::Real(1.0).is_int());
    }

    #[test]
    fn offsets_row_major_one_based() {
        let a = ArrayStore::zeros(vec![3, 4], ScalarTy::Real);
        assert_eq!(a.offset(&[1, 1]), Some(0));
        assert_eq!(a.offset(&[1, 4]), Some(3));
        assert_eq!(a.offset(&[2, 1]), Some(4));
        assert_eq!(a.offset(&[3, 4]), Some(11));
        assert_eq!(a.offset(&[0, 1]), None);
        assert_eq!(a.offset(&[3, 5]), None);
        assert_eq!(a.offset(&[4, 1]), None);
        assert_eq!(a.offset(&[1]), None);
    }

    #[test]
    fn get_set_round_trip() {
        let mut a = ArrayStore::zeros(vec![2, 2], ScalarTy::Real);
        let off = a.offset(&[2, 1]).unwrap();
        a.set(off, Value::Real(7.5));
        assert_eq!(a.get(off), Value::Real(7.5));
        let mut b = ArrayStore::zeros(vec![4], ScalarTy::Int);
        b.set(2, Value::Int(-3));
        assert_eq!(b.get(2), Value::Int(-3));
        // Writing a real into an int array truncates.
        b.set(0, Value::Real(2.9));
        assert_eq!(b.get(0), Value::Int(2));
    }

    #[test]
    fn diff_helper() {
        let a = ArrayStore::from_f64(vec![1.0, 2.0, 3.0]);
        let b = ArrayStore::from_f64(vec![1.0, 2.5, 3.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn bits_eq_is_exact() {
        assert!(Value::Real(1.5).bits_eq(Value::Real(1.5)));
        assert!(!Value::Real(0.0).bits_eq(Value::Real(-0.0)));
        assert!(Value::Real(f64::NAN).bits_eq(Value::Real(f64::NAN)));
        assert!(!Value::Int(1).bits_eq(Value::Real(1.0)));
        let a = ArrayStore::from_f64(vec![0.0, 1.0]);
        let b = ArrayStore::from_f64(vec![-0.0, 1.0]);
        assert!(a.bits_eq(&a));
        assert!(!a.bits_eq(&b), "-0.0 differs bitwise from 0.0");
        assert!(!a.bits_eq(&ArrayStore::from_i64(vec![0, 1])));
        assert!(!a.bits_eq(&ArrayStore::from_f64(vec![0.0])));
    }

    #[test]
    fn from_2d_layout() {
        let a = ArrayStore::from_f64_2d(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.get(a.offset(&[1, 3]).unwrap()), Value::Real(3.0));
        assert_eq!(a.get(a.offset(&[2, 1]).unwrap()), Value::Real(4.0));
    }
}
