//! Deterministic fault injection for the parallel executor.
//!
//! A [`FaultPlan`] names, per worker, a statement count at which a fault
//! fires: the worker panics, returns an injected [`ExecError`], or
//! silently corrupts its write-tracker stamp. Plans are wired through
//! [`crate::RunConfig`] and consumed by `run_parallel_loop`, which hands
//! each worker its pending faults. Because workers execute a fixed chunk
//! assignment and statements are counted deterministically, the same
//! plan always produces the same failure — which is what lets the
//! differential tests assert that recovery yields state bit-identical to
//! the sequential oracle.

use crate::machine::ExecError;

/// What happens when an injected fault fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The worker thread panics mid-iteration.
    Panic,
    /// The worker's loop body returns this error.
    Error(ExecError),
    /// The worker's write tracker switches to a stamp outside its chunk
    /// assignment: a silent metadata corruption that an unprotected
    /// merge would turn into wrong results. The executor detects it by
    /// validating stamps against the chunk assignment on join.
    CorruptStamp,
}

/// One fault: fires in `worker` once it has executed `at_stmt`
/// statements (1-based, so `at_stmt = 1` fires on the worker's first
/// statement).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    pub worker: usize,
    pub at_stmt: u64,
    pub kind: FaultKind,
}

/// A fault waiting to fire inside one worker's machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingFault {
    pub at_stmt: u64,
    pub kind: FaultKind,
}

/// A deterministic set of faults to inject into a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Add a fault to the plan (builder-style).
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.faults.push(spec);
        self
    }

    /// Worker `worker` panics at its `at_stmt`-th statement.
    pub fn panic_at(worker: usize, at_stmt: u64) -> FaultPlan {
        FaultPlan::none().with(FaultSpec {
            worker,
            at_stmt,
            kind: FaultKind::Panic,
        })
    }

    /// Worker `worker` fails with `err` at its `at_stmt`-th statement.
    pub fn error_at(worker: usize, at_stmt: u64, err: ExecError) -> FaultPlan {
        FaultPlan::none().with(FaultSpec {
            worker,
            at_stmt,
            kind: FaultKind::Error(err),
        })
    }

    /// Worker `worker` corrupts its tracker stamp at its `at_stmt`-th
    /// statement and keeps running.
    pub fn corrupt_stamp_at(worker: usize, at_stmt: u64) -> FaultPlan {
        FaultPlan::none().with(FaultSpec {
            worker,
            at_stmt,
            kind: FaultKind::CorruptStamp,
        })
    }

    /// A seeded pseudo-random plan of `count` faults spread over
    /// `workers` workers and statement counts in `1..=max_stmt`.
    /// The same seed always yields the same plan.
    pub fn seeded(seed: u64, count: usize, workers: usize, max_stmt: u64) -> FaultPlan {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            // xorshift64*: cheap, deterministic, no external deps.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let workers = workers.max(1);
        let max_stmt = max_stmt.max(1);
        let mut plan = FaultPlan::none();
        for _ in 0..count {
            let worker = (next() % workers as u64) as usize;
            let at_stmt = next() % max_stmt + 1;
            let kind = match next() % 3 {
                0 => FaultKind::Panic,
                1 => FaultKind::Error(ExecError::DivisionByZero),
                _ => FaultKind::CorruptStamp,
            };
            plan.faults.push(FaultSpec {
                worker,
                at_stmt,
                kind,
            });
        }
        plan
    }

    /// The faults aimed at worker `w`, ready to arm in its machine.
    pub fn for_worker(&self, w: usize) -> Vec<PendingFault> {
        self.faults
            .iter()
            .filter(|f| f.worker == w)
            .map(|f| PendingFault {
                at_stmt: f.at_stmt,
                kind: f.kind.clone(),
            })
            .collect()
    }
}

/// What an injected service fault does to the request it fires on.
///
/// The service plan extends the executor ([`FaultPlan`]) and store
/// (`IoFaultPlan`) harnesses to the daemon layer: faults are keyed on
/// the *admission order* of requests, which the server assigns under its
/// queue lock, so the same plan always hits the same request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFaultKind {
    /// The worker thread handling the request panics mid-analysis. The
    /// server must answer 500 with a typed error body, replace the
    /// worker, and keep serving.
    WorkerPanic,
    /// The server writes only a prefix of the response and drops the
    /// connection (a torn response / mid-write disconnect as seen from
    /// the client). Subsequent requests must be unaffected.
    TornResponse,
    /// The worker sleeps `ms` milliseconds before handling the request,
    /// pushing it deterministically over the slow-request threshold so
    /// the forensics path (slow log + phase breakdown) is testable.
    SlowRequest { ms: u64 },
    /// The worker floods the flight-recorder ring past capacity before
    /// handling the request, forcing wraparound so overflow accounting
    /// and End-without-Begin profile recovery are observable.
    RecorderOverflow,
}

impl ServiceFaultKind {
    pub fn label(self) -> &'static str {
        match self {
            ServiceFaultKind::WorkerPanic => "worker-panic",
            ServiceFaultKind::TornResponse => "torn-response",
            ServiceFaultKind::SlowRequest { .. } => "slow-request",
            ServiceFaultKind::RecorderOverflow => "recorder-overflow",
        }
    }
}

/// One service fault: fires on the `at_request`-th admitted request
/// (1-based, counted across the daemon's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceFaultSpec {
    pub at_request: u64,
    pub kind: ServiceFaultKind,
}

/// A deterministic set of faults to inject into a service daemon.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceFaultPlan {
    pub faults: Vec<ServiceFaultSpec>,
}

impl ServiceFaultPlan {
    pub fn none() -> ServiceFaultPlan {
        ServiceFaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Add a fault to the plan (builder-style).
    pub fn with(mut self, spec: ServiceFaultSpec) -> ServiceFaultPlan {
        self.faults.push(spec);
        self
    }

    /// `kind` fires on the `at_request`-th admitted request.
    pub fn at(kind: ServiceFaultKind, at_request: u64) -> ServiceFaultPlan {
        ServiceFaultPlan::none().with(ServiceFaultSpec { at_request, kind })
    }

    /// A seeded pseudo-random plan of `count` faults over admission
    /// counts in `1..=max_request`. The same seed always yields the same
    /// plan (same generator as [`FaultPlan::seeded`]). Only the two
    /// original kinds are drawn — `SlowRequest`/`RecorderOverflow` are
    /// targeted diagnostics, armed explicitly, never randomly.
    pub fn seeded(seed: u64, count: usize, max_request: u64) -> ServiceFaultPlan {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let max_request = max_request.max(1);
        let mut plan = ServiceFaultPlan::none();
        for _ in 0..count {
            let at_request = next() % max_request + 1;
            let kind = match next() % 2 {
                0 => ServiceFaultKind::WorkerPanic,
                _ => ServiceFaultKind::TornResponse,
            };
            plan.faults.push(ServiceFaultSpec { at_request, kind });
        }
        plan
    }

    /// The fault (if any) armed for the `n`-th admitted request.
    pub fn for_request(&self, n: u64) -> Option<ServiceFaultKind> {
        self.faults
            .iter()
            .find(|f| f.at_request == n)
            .map(|f| f.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::panic_at(0, 5)
            .with(FaultSpec {
                worker: 1,
                at_stmt: 9,
                kind: FaultKind::CorruptStamp,
            })
            .with(FaultSpec {
                worker: 0,
                at_stmt: 2,
                kind: FaultKind::Error(ExecError::DivisionByZero),
            });
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.for_worker(0).len(), 2);
        assert_eq!(plan.for_worker(1).len(), 1);
        assert!(plan.for_worker(2).is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 8, 4, 100);
        let b = FaultPlan::seeded(42, 8, 4, 100);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 8);
        for f in &a.faults {
            assert!(f.worker < 4);
            assert!((1..=100).contains(&f.at_stmt));
        }
        // Different seed, different plan (overwhelmingly likely).
        assert_ne!(a, FaultPlan::seeded(43, 8, 4, 100));
    }

    #[test]
    fn empty_plan_arms_nothing() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::none().for_worker(0).is_empty());
    }

    #[test]
    fn service_plan_builders_and_lookup() {
        let plan = ServiceFaultPlan::at(ServiceFaultKind::WorkerPanic, 3).with(ServiceFaultSpec {
            at_request: 5,
            kind: ServiceFaultKind::TornResponse,
        });
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.for_request(3), Some(ServiceFaultKind::WorkerPanic));
        assert_eq!(plan.for_request(5), Some(ServiceFaultKind::TornResponse));
        assert_eq!(plan.for_request(4), None);
        assert!(ServiceFaultPlan::none().is_empty());
        assert_eq!(ServiceFaultPlan::none().for_request(1), None);
    }

    #[test]
    fn service_seeded_plans_are_deterministic() {
        let a = ServiceFaultPlan::seeded(7, 6, 50);
        let b = ServiceFaultPlan::seeded(7, 6, 50);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 6);
        for f in &a.faults {
            assert!((1..=50).contains(&f.at_request));
        }
        assert_ne!(a, ServiceFaultPlan::seeded(8, 6, 50));
    }

    #[test]
    fn service_kind_labels() {
        assert_eq!(ServiceFaultKind::WorkerPanic.label(), "worker-panic");
        assert_eq!(ServiceFaultKind::TornResponse.label(), "torn-response");
        assert_eq!(
            ServiceFaultKind::SlowRequest { ms: 40 }.label(),
            "slow-request"
        );
        assert_eq!(
            ServiceFaultKind::RecorderOverflow.label(),
            "recorder-overflow"
        );
    }
}
