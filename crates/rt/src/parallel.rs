//! The parallel loop executor.
//!
//! Iterations are partitioned into contiguous blocks, one per worker.
//! Each worker runs on a private copy of the machine's arrays with write
//! tracking; after the scope joins, copies are merged back **in block
//! order**:
//!
//! * plain arrays: elements the worker wrote overwrite the shared value
//!   (block-ordered masking reproduces exact sequential last-value
//!   semantics for independent and privatized loops);
//! * reduction targets: workers start from the operator identity and
//!   partial results combine with the operator, again in block order;
//! * scalars: values written by a worker win over earlier blocks
//!   (last-value semantics for privatized scalars).
//!
//! This scheme doubles as a safety oracle: if the analysis ever declared
//! a loop parallel unsoundly, the merged state would differ from the
//! sequential run and the differential tests would catch it.
//!
//! # Fault tolerance
//!
//! Workers run on private state, so the pre-loop machine is untouched
//! until the merge — the region is *transactional*. Three layers exploit
//! that:
//!
//! 1. **Panic isolation**: each worker body runs under `catch_unwind`;
//!    a panic becomes a [`WorkerFailure`], never a process abort.
//! 2. **Validation**: a surviving worker's tracker stamps must all come
//!    from its chunk assignment; anything else is detected as silent
//!    state corruption *before* the merge can consume it.
//! 3. **Sequential fallback**: on any worker failure (panic, error,
//!    corruption) the private copies are discarded and the loop re-runs
//!    sequentially on the intact pre-loop state — the dynamic analogue
//!    of the paper's two-version dispatch. The recovery is counted in
//!    [`crate::ExecStats::fallbacks`] and the wasted parallel work stays
//!    billed in the cost model. Only resource-budget errors
//!    ([`ExecError::FuelExhausted`], [`ExecError::DeadlineExceeded`])
//!    propagate instead of falling back: re-running a loop that just
//!    exhausted its budget cannot terminate, and budgets exist to
//!    guarantee termination.

use crate::machine::{ExecError, Flow, Frame, Machine, Tracker};
use crate::plan::{LoopPlan, PlannedReduction};
use crate::value::Value;
use padfa_core::ReduceOp;
use padfa_ir::ast::Loop;
use padfa_ir::ScalarTy;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Simulated fork/join cost of one parallel region (work units; one
/// unit = one interpreted statement).
pub const FORK_JOIN_COST: u64 = 300;
/// Simulated cost of initializing/merging *privatized* array copies, in
/// array elements per work unit. Shared arrays are modeled as accessed
/// in place (as in SUIF's SPMD code); the executor's whole-machine
/// cloning is only its safety oracle and is not billed.
pub const PRIV_ELEMS_PER_UNIT: u64 = 16;

/// Identity element for a reduction over the given scalar type.
fn identity(op: ReduceOp, ty: ScalarTy) -> Value {
    match (op, ty) {
        (ReduceOp::Sum, ScalarTy::Int) => Value::Int(0),
        (ReduceOp::Sum, ScalarTy::Real) => Value::Real(0.0),
        (ReduceOp::Product, ScalarTy::Int) => Value::Int(1),
        (ReduceOp::Product, ScalarTy::Real) => Value::Real(1.0),
        (ReduceOp::Min, ScalarTy::Int) => Value::Int(i64::MAX),
        (ReduceOp::Min, ScalarTy::Real) => Value::Real(f64::INFINITY),
        (ReduceOp::Max, ScalarTy::Int) => Value::Int(i64::MIN),
        (ReduceOp::Max, ScalarTy::Real) => Value::Real(f64::NEG_INFINITY),
    }
}

/// Combine two values with a reduction operator.
fn combine(op: ReduceOp, a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(match op {
            ReduceOp::Sum => x.wrapping_add(y),
            ReduceOp::Product => x.wrapping_mul(y),
            ReduceOp::Min => x.min(y),
            ReduceOp::Max => x.max(y),
        }),
        _ => {
            let (x, y) = (a.as_f64(), b.as_f64());
            Value::Real(match op {
                ReduceOp::Sum => x + y,
                ReduceOp::Product => x * y,
                ReduceOp::Min => x.min(y),
                ReduceOp::Max => x.max(y),
            })
        }
    }
}

/// Why a worker did not complete its chunks cleanly.
#[derive(Debug, Clone)]
enum WorkerFailure {
    /// The worker panicked (caught by `catch_unwind` or at join).
    Panicked(String),
    /// The loop body returned an error (organic or injected).
    Failed(ExecError),
    /// Tracker stamps outside the worker's chunk assignment.
    Corrupted(String),
}

struct WorkerOutcome {
    arrays: Vec<crate::value::ArrayStore>,
    tracker: Tracker,
    frame: Frame,
    stats: crate::machine::ExecStats,
    work: u64,
    sim: u64,
    /// Fuel left from the worker's share of the budget.
    fuel_left: Option<u64>,
    failure: Option<WorkerFailure>,
}

impl WorkerOutcome {
    /// Outcome for a worker whose thread died before producing one
    /// (a panic that escaped `catch_unwind`, e.g. during setup).
    fn dead(message: String) -> WorkerOutcome {
        WorkerOutcome {
            arrays: Vec::new(),
            tracker: Tracker::default(),
            frame: Frame::default(),
            stats: crate::machine::ExecStats::default(),
            work: 0,
            sim: 0,
            fuel_left: None,
            failure: Some(WorkerFailure::Panicked(message)),
        }
    }
}

thread_local! {
    /// Set while a worker body runs: tells the quiet panic hook that a
    /// panic here is isolated and reported through [`ExecError`], so the
    /// default "thread panicked at ..." noise must not reach stderr.
    static PANIC_IS_ISOLATED: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Install (once, process-wide) a panic hook that stays silent for
/// panics the executor catches and reports itself, and defers to the
/// previous hook for everything else.
fn install_quiet_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !PANIC_IS_ISOLATED.with(|c| c.get()) {
                prev(info);
            }
        }));
    });
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute `l` in parallel with the machine's configured worker count.
pub fn run_parallel_loop(
    machine: &mut Machine<'_>,
    frame: &mut Frame,
    l: &Loop,
    plan: &LoopPlan,
    lo: i64,
    hi: i64,
) -> Result<(), ExecError> {
    let trip = ((hi - lo) / l.step + 1).max(0) as usize;
    let workers = machine.cfg.workers.min(trip).max(1);

    // Resolve reduction targets to handles / scalar vars.
    let mut red_arrays: Vec<(usize, ReduceOp)> = Vec::new();
    let mut red_scalars: Vec<(padfa_ir::Var, ReduceOp)> = Vec::new();
    for PlannedReduction {
        target,
        is_array,
        op,
    } in &plan.reductions
    {
        if *is_array {
            if let Some(h) = frame.array_handle(*target) {
                red_arrays.push((h, *op));
            }
        } else if frame.scalars.contains_key(target) {
            red_scalars.push((*target, *op));
        }
    }

    // Chunked partition: iterations split into chunks of `chunk_size`
    // consecutive iterations, dealt round-robin. The default (no chunk
    // size configured) uses one block per worker, i.e. static blocking.
    let chunk_size = machine
        .cfg
        .chunk
        .unwrap_or_else(|| trip.div_ceil(workers))
        .max(1);
    let num_chunks = trip.div_ceil(chunk_size);
    // chunks[k] = (first iteration value, last iteration value, stamp).
    let chunks: Vec<(i64, i64, u32)> = (0..num_chunks)
        .map(|k| {
            let begin = k * chunk_size;
            let len = chunk_size.min(trip - begin);
            let s = lo + (begin as i64) * l.step;
            let e = lo + ((begin + len) as i64 - 1) * l.step;
            (s, e, k as u32 + 1)
        })
        .collect();
    // Worker w executes chunks w, w+workers, w+2*workers, ...
    let assignments: Vec<Vec<(i64, i64, u32)>> = (0..workers)
        .map(|w| chunks.iter().copied().skip(w).step_by(workers).collect())
        .collect();

    let prog = machine.prog;
    let cfg = machine.cfg;
    let base_arrays = machine.arrays.clone();
    // Workers split the remaining statement budget evenly; the parent is
    // billed for what they actually consume after the join.
    let worker_budget = machine.fuel.map(|f| f / workers as u64);
    let parent_deadline = machine.deadline;

    if !cfg.faults.is_empty() || cfg.fallback {
        install_quiet_panic_hook();
    }

    let mut outcomes: Vec<WorkerOutcome> = Vec::with_capacity(workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (w, my_chunks) in assignments.iter().enumerate() {
            let mut worker_arrays = base_arrays.clone();
            // Reduction targets start from the identity.
            for &(h, op) in &red_arrays {
                let ty = worker_arrays[h].ty;
                worker_arrays[h].fill(identity(op, ty));
            }
            let mut worker_frame = frame.clone();
            for &(v, op) in &red_scalars {
                let ty = if worker_frame.scalars[&v].is_int() {
                    ScalarTy::Int
                } else {
                    ScalarTy::Real
                };
                worker_frame.scalars.insert(v, identity(op, ty));
            }
            let body = &l.body;
            let var = l.var;
            let step = l.step;
            handles.push(scope.spawn(move || {
                let mut m = Machine::new(prog, cfg);
                m.arrays = worker_arrays;
                m.in_worker = true;
                m.tracker = Some(Tracker::default());
                m.fuel = worker_budget;
                m.deadline = parent_deadline;
                m.pending_faults = cfg.faults.for_worker(w);
                PANIC_IS_ISOLATED.with(|c| c.set(true));
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    let mut first_err = None;
                    'chunks: for &(s, e, stamp) in my_chunks {
                        if let Some(t) = &mut m.tracker {
                            t.stamp = stamp;
                        }
                        let mut i = s;
                        while (step > 0 && i <= e) || (step < 0 && i >= e) {
                            worker_frame.scalars.insert(var, Value::Int(i));
                            match m.exec_block(&mut worker_frame, body) {
                                Ok(_) => {}
                                Err(e) => {
                                    first_err = Some(e);
                                    break 'chunks;
                                }
                            }
                            i += step;
                        }
                    }
                    first_err
                }));
                PANIC_IS_ISOLATED.with(|c| c.set(false));
                let failure = match caught {
                    Ok(None) => None,
                    Ok(Some(e)) => Some(WorkerFailure::Failed(e)),
                    Err(payload) => Some(WorkerFailure::Panicked(panic_message(payload))),
                };
                WorkerOutcome {
                    arrays: m.arrays,
                    tracker: m.tracker.take().unwrap_or_default(),
                    frame: worker_frame,
                    stats: m.stats,
                    work: m.work,
                    sim: m.sim,
                    fuel_left: m.fuel,
                    failure,
                }
            }));
        }
        for h in handles {
            outcomes.push(match h.join() {
                Ok(outcome) => outcome,
                // A panic that escaped catch_unwind (worker setup).
                Err(payload) => WorkerOutcome::dead(panic_message(payload)),
            });
        }
    });

    // Validate surviving workers before anything is merged: every stamp
    // a worker recorded must come from its own chunk assignment, or its
    // private state cannot be trusted.
    for (w, outcome) in outcomes.iter_mut().enumerate() {
        if outcome.failure.is_some() {
            continue;
        }
        if let Some(detail) = validate_stamps(&outcome.tracker, &assignments[w]) {
            outcome.failure = Some(WorkerFailure::Corrupted(detail));
        }
    }

    // Billing happens regardless of failures: the simulated-cost model
    // charges the region its critical path plus fork/join and
    // private-copy traffic, and a failed region's work is exactly the
    // waste the fallback pays for.
    let priv_elems: u64 = plan
        .privatized
        .iter()
        .filter_map(|v| frame.array_handle(*v))
        .map(|h| base_arrays[h].len() as u64)
        .sum();
    let clone_cost = priv_elems * workers as u64 / PRIV_ELEMS_PER_UNIT;
    let max_worker_sim = outcomes.iter().map(|o| o.sim).max().unwrap_or(0);
    machine.sim += FORK_JOIN_COST + clone_cost + max_worker_sim;
    for outcome in &outcomes {
        machine.stats.merge(&outcome.stats);
        machine.work += outcome.work;
    }
    if let (Some(fuel), Some(budget)) = (machine.fuel.as_mut(), worker_budget) {
        let consumed: u64 = outcomes
            .iter()
            .map(|o| budget - o.fuel_left.unwrap_or(budget))
            .sum();
        *fuel = fuel.saturating_sub(consumed);
    }

    // Failure policy. Resource exhaustion propagates (a sequential
    // re-run of a loop that ran out of budget cannot terminate either);
    // everything else either falls back or surfaces as a typed error.
    let failures: Vec<(usize, WorkerFailure)> = outcomes
        .iter()
        .enumerate()
        .filter_map(|(w, o)| o.failure.clone().map(|f| (w, f)))
        .collect();
    if !failures.is_empty() {
        machine.stats.worker_panics += failures
            .iter()
            .filter(|(_, f)| matches!(f, WorkerFailure::Panicked(_)))
            .count() as u64;
        for (_, f) in &failures {
            if let WorkerFailure::Failed(
                e @ (ExecError::FuelExhausted | ExecError::DeadlineExceeded),
            ) = f
            {
                return Err(e.clone());
            }
        }
        if !machine.cfg.fallback {
            let (w, f) = failures.into_iter().next().expect("non-empty failures");
            return Err(match f {
                WorkerFailure::Panicked(message) => {
                    ExecError::WorkerPanicked { worker: w, message }
                }
                WorkerFailure::Failed(e) => e,
                WorkerFailure::Corrupted(detail) => ExecError::StateCorrupted { worker: w, detail },
            });
        }
        // Transactional fallback: drop every private copy (nothing was
        // merged) and re-run the loop sequentially on the intact
        // pre-loop state — the two-version dispatch, taken dynamically.
        drop(outcomes);
        machine.stats.fallbacks += 1;
        return run_sequential_fallback(machine, frame, l, lo, hi);
    }

    // Merge by descending write stamp: for every element (and scalar)
    // the chunk with the highest stamp that wrote it is the sequentially
    // last writer, so its value is the sequential final value.
    let mut best_stamp: std::collections::HashMap<usize, Vec<u32>> =
        std::collections::HashMap::new();
    let mut best_scalar: std::collections::HashMap<padfa_ir::Var, u32> =
        std::collections::HashMap::new();
    for outcome in outcomes {
        for (h, store) in outcome.arrays.into_iter().enumerate() {
            if let Some(&(_, op)) = red_arrays.iter().find(|&&(rh, _)| rh == h) {
                // Elementwise combine into the shared array.
                for off in 0..store.len() {
                    let merged = combine(op, machine.arrays[h].get(off), store.get(off));
                    machine.arrays[h].set(off, merged);
                }
            } else if let Some(mask) = outcome.tracker.masks.get(&h) {
                let best = best_stamp.entry(h).or_insert_with(|| vec![0; mask.len()]);
                if best.len() < mask.len() {
                    best.resize(mask.len(), 0);
                }
                for (off, &stamp) in mask.iter().enumerate() {
                    if stamp > best[off] {
                        best[off] = stamp;
                        machine.arrays[h].set(off, store.get(off));
                    }
                }
            }
        }
        for (v, &stamp) in &outcome.tracker.scalar_writes {
            if *v == l.var {
                continue;
            }
            if let Some(&(_, op)) = red_scalars.iter().find(|&&(rv, _)| rv == *v) {
                let merged = combine(op, frame.scalars[v], outcome.frame.scalars[v]);
                frame.scalars.insert(*v, merged);
            } else if stamp > best_scalar.get(v).copied().unwrap_or(0) {
                best_scalar.insert(*v, stamp);
                if let Some(val) = outcome.frame.scalars.get(v) {
                    frame.scalars.insert(*v, *val);
                }
            }
        }
    }
    // Arrays newly allocated inside workers (callee locals) are dropped
    // with the worker machines; shared handles were merged above.
    Ok(())
}

/// Check that every stamp a worker recorded belongs to its chunk
/// assignment; returns a description of the first violation.
fn validate_stamps(tracker: &Tracker, my_chunks: &[(i64, i64, u32)]) -> Option<String> {
    let allowed: Vec<u32> = my_chunks.iter().map(|&(_, _, s)| s).collect();
    for (h, mask) in &tracker.masks {
        for &stamp in mask {
            if stamp != 0 && !allowed.contains(&stamp) {
                return Some(format!(
                    "array handle {h} carries write stamp {stamp} outside chunk assignment {allowed:?}"
                ));
            }
        }
    }
    for (v, &stamp) in &tracker.scalar_writes {
        if stamp != 0 && !allowed.contains(&stamp) {
            return Some(format!(
                "scalar '{v}' carries write stamp {stamp} outside chunk assignment {allowed:?}"
            ));
        }
    }
    None
}

/// Re-run the failed region sequentially on the parent machine. The
/// parent's arrays and frame are exactly the pre-loop state (workers
/// only ever touched private copies), so this reproduces the sequential
/// semantics — including any genuine program error, which surfaces
/// again here deterministically.
fn run_sequential_fallback(
    machine: &mut Machine<'_>,
    frame: &mut Frame,
    l: &Loop,
    lo: i64,
    hi: i64,
) -> Result<(), ExecError> {
    let saved = frame.scalars.get(&l.var).copied();
    let mut i = lo;
    while (l.step > 0 && i <= hi) || (l.step < 0 && i >= hi) {
        frame.scalars.insert(l.var, Value::Int(i));
        let flow = machine.exec_block(frame, &l.body)?;
        if flow == Flow::Exit {
            break;
        }
        i += l.step;
    }
    match saved {
        Some(v) => {
            frame.scalars.insert(l.var, v);
        }
        None => {
            frame.scalars.remove(&l.var);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(identity(ReduceOp::Sum, ScalarTy::Real), Value::Real(0.0));
        assert_eq!(identity(ReduceOp::Product, ScalarTy::Int), Value::Int(1));
        assert_eq!(
            identity(ReduceOp::Min, ScalarTy::Real),
            Value::Real(f64::INFINITY)
        );
        assert_eq!(identity(ReduceOp::Max, ScalarTy::Int), Value::Int(i64::MIN));
    }

    #[test]
    fn combines() {
        assert_eq!(
            combine(ReduceOp::Sum, Value::Int(2), Value::Int(3)),
            Value::Int(5)
        );
        assert_eq!(
            combine(ReduceOp::Min, Value::Real(2.0), Value::Real(3.0)),
            Value::Real(2.0)
        );
        assert_eq!(
            combine(ReduceOp::Max, Value::Int(2), Value::Real(3.0)),
            Value::Real(3.0)
        );
    }

    #[test]
    fn stamp_validation_flags_foreign_stamps() {
        let chunks = [(1, 4, 1u32), (9, 12, 3u32)];
        let mut t = Tracker::default();
        t.masks.insert(0, vec![0, 1, 3, 0]);
        assert!(validate_stamps(&t, &chunks).is_none());
        t.masks.get_mut(&0).unwrap()[1] = 2; // another worker's chunk
        assert!(validate_stamps(&t, &chunks).is_some());
        let mut t = Tracker::default();
        t.scalar_writes.insert(padfa_ir::Var::new("vs"), u32::MAX);
        assert!(validate_stamps(&t, &chunks).is_some());
    }

    #[test]
    fn panic_messages_extracted() {
        install_quiet_panic_hook();
        PANIC_IS_ISOLATED.with(|c| c.set(true));
        let p = catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(panic_message(p), "boom");
        let p = catch_unwind(|| panic!("{} {}", "fmt", 1)).unwrap_err();
        assert_eq!(panic_message(p), "fmt 1");
        PANIC_IS_ISOLATED.with(|c| c.set(false));
    }
}
