//! The parallel loop executor.
//!
//! Iterations are partitioned into contiguous blocks, one per worker.
//! Each worker runs on a private copy of the machine's arrays with write
//! tracking; after the scope joins, copies are merged back **in block
//! order**:
//!
//! * plain arrays: elements the worker wrote overwrite the shared value
//!   (block-ordered masking reproduces exact sequential last-value
//!   semantics for independent and privatized loops);
//! * reduction targets: workers start from the operator identity and
//!   partial results combine with the operator, again in block order;
//! * scalars: values written by a worker win over earlier blocks
//!   (last-value semantics for privatized scalars).
//!
//! This scheme doubles as a safety oracle: if the analysis ever declared
//! a loop parallel unsoundly, the merged state would differ from the
//! sequential run and the differential tests would catch it.

use crate::machine::{ExecError, Frame, Machine, Tracker};
use crate::plan::{LoopPlan, PlannedReduction};
use crate::value::Value;
use padfa_core::ReduceOp;
use padfa_ir::ast::Loop;
use padfa_ir::ScalarTy;

/// Simulated fork/join cost of one parallel region (work units; one
/// unit = one interpreted statement).
pub const FORK_JOIN_COST: u64 = 300;
/// Simulated cost of initializing/merging *privatized* array copies, in
/// array elements per work unit. Shared arrays are modeled as accessed
/// in place (as in SUIF's SPMD code); the executor's whole-machine
/// cloning is only its safety oracle and is not billed.
pub const PRIV_ELEMS_PER_UNIT: u64 = 16;

/// Identity element for a reduction over the given scalar type.
fn identity(op: ReduceOp, ty: ScalarTy) -> Value {
    match (op, ty) {
        (ReduceOp::Sum, ScalarTy::Int) => Value::Int(0),
        (ReduceOp::Sum, ScalarTy::Real) => Value::Real(0.0),
        (ReduceOp::Product, ScalarTy::Int) => Value::Int(1),
        (ReduceOp::Product, ScalarTy::Real) => Value::Real(1.0),
        (ReduceOp::Min, ScalarTy::Int) => Value::Int(i64::MAX),
        (ReduceOp::Min, ScalarTy::Real) => Value::Real(f64::INFINITY),
        (ReduceOp::Max, ScalarTy::Int) => Value::Int(i64::MIN),
        (ReduceOp::Max, ScalarTy::Real) => Value::Real(f64::NEG_INFINITY),
    }
}

/// Combine two values with a reduction operator.
fn combine(op: ReduceOp, a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(match op {
            ReduceOp::Sum => x.wrapping_add(y),
            ReduceOp::Product => x.wrapping_mul(y),
            ReduceOp::Min => x.min(y),
            ReduceOp::Max => x.max(y),
        }),
        _ => {
            let (x, y) = (a.as_f64(), b.as_f64());
            Value::Real(match op {
                ReduceOp::Sum => x + y,
                ReduceOp::Product => x * y,
                ReduceOp::Min => x.min(y),
                ReduceOp::Max => x.max(y),
            })
        }
    }
}

struct WorkerOutcome {
    arrays: Vec<crate::value::ArrayStore>,
    tracker: Tracker,
    frame: Frame,
    stats: crate::machine::ExecStats,
    work: u64,
    sim: u64,
    error: Option<ExecError>,
}

/// Execute `l` in parallel with the machine's configured worker count.
pub fn run_parallel_loop(
    machine: &mut Machine<'_>,
    frame: &mut Frame,
    l: &Loop,
    plan: &LoopPlan,
    lo: i64,
    hi: i64,
) -> Result<(), ExecError> {
    let trip = ((hi - lo) / l.step + 1).max(0) as usize;
    let workers = machine.cfg.workers.min(trip).max(1);

    // Resolve reduction targets to handles / scalar vars.
    let mut red_arrays: Vec<(usize, ReduceOp)> = Vec::new();
    let mut red_scalars: Vec<(padfa_ir::Var, ReduceOp)> = Vec::new();
    for PlannedReduction { target, is_array, op } in &plan.reductions {
        if *is_array {
            if let Some(h) = frame.array_handle(*target) {
                red_arrays.push((h, *op));
            }
        } else if frame.scalars.contains_key(target) {
            red_scalars.push((*target, *op));
        }
    }

    // Chunked partition: iterations split into chunks of `chunk_size`
    // consecutive iterations, dealt round-robin. The default (no chunk
    // size configured) uses one block per worker, i.e. static blocking.
    let chunk_size = machine
        .cfg
        .chunk
        .unwrap_or_else(|| trip.div_ceil(workers))
        .max(1);
    let num_chunks = trip.div_ceil(chunk_size);
    // chunks[k] = (first iteration value, last iteration value, stamp).
    let chunks: Vec<(i64, i64, u32)> = (0..num_chunks)
        .map(|k| {
            let begin = k * chunk_size;
            let len = chunk_size.min(trip - begin);
            let s = lo + (begin as i64) * l.step;
            let e = lo + ((begin + len) as i64 - 1) * l.step;
            (s, e, k as u32 + 1)
        })
        .collect();
    // Worker w executes chunks w, w+workers, w+2*workers, ...
    let assignments: Vec<Vec<(i64, i64, u32)>> = (0..workers)
        .map(|w| chunks.iter().copied().skip(w).step_by(workers).collect())
        .collect();

    let prog = machine.prog;
    let cfg = machine.cfg;
    let base_arrays = machine.arrays.clone();

    let mut outcomes: Vec<Option<WorkerOutcome>> = Vec::new();
    for _ in 0..workers {
        outcomes.push(None);
    }

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (w, my_chunks) in assignments.iter().enumerate() {
            let mut worker_arrays = base_arrays.clone();
            // Reduction targets start from the identity.
            for &(h, op) in &red_arrays {
                let ty = worker_arrays[h].ty;
                worker_arrays[h].fill(identity(op, ty));
            }
            let mut worker_frame = frame.clone();
            for &(v, op) in &red_scalars {
                let ty = if worker_frame.scalars[&v].is_int() {
                    ScalarTy::Int
                } else {
                    ScalarTy::Real
                };
                worker_frame.scalars.insert(v, identity(op, ty));
            }
            let body = &l.body;
            let var = l.var;
            let step = l.step;
            handles.push(scope.spawn(move |_| {
                let mut m = Machine::new(prog, cfg);
                m.arrays = worker_arrays;
                m.in_worker = true;
                m.tracker = Some(Tracker::default());
                let mut err = None;
                'chunks: for &(s, e, stamp) in my_chunks {
                    if let Some(t) = &mut m.tracker {
                        t.stamp = stamp;
                    }
                    let mut i = s;
                    while (step > 0 && i <= e) || (step < 0 && i >= e) {
                        worker_frame.scalars.insert(var, Value::Int(i));
                        match m.exec_block(&mut worker_frame, body) {
                            Ok(_) => {}
                            Err(e) => {
                                err = Some(e);
                                break 'chunks;
                            }
                        }
                        i += step;
                    }
                }
                let _ = w;
                WorkerOutcome {
                    arrays: m.arrays,
                    tracker: m.tracker.take().unwrap_or_default(),
                    frame: worker_frame,
                    stats: m.stats,
                    work: m.work,
                    sim: m.sim,
                    error: err,
                }
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            outcomes[w] = Some(h.join().expect("worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    // Simulated time: the region costs its critical path (the slowest
    // worker) plus fork/join and the privatized-copy traffic.
    let priv_elems: u64 = plan
        .privatized
        .iter()
        .filter_map(|v| frame.array_handle(*v))
        .map(|h| base_arrays[h].len() as u64)
        .sum();
    let clone_cost = priv_elems * workers as u64 / PRIV_ELEMS_PER_UNIT;
    let max_worker_sim = outcomes
        .iter()
        .map(|o| o.as_ref().map(|w| w.sim).unwrap_or(0))
        .max()
        .unwrap_or(0);
    machine.sim += FORK_JOIN_COST + clone_cost + max_worker_sim;

    // Merge by descending write stamp: for every element (and scalar)
    // the chunk with the highest stamp that wrote it is the sequentially
    // last writer, so its value is the sequential final value.
    let mut best_stamp: std::collections::HashMap<usize, Vec<u32>> =
        std::collections::HashMap::new();
    let mut best_scalar: std::collections::HashMap<padfa_ir::Var, u32> =
        std::collections::HashMap::new();
    for outcome in outcomes.into_iter().map(|o| o.expect("missing worker")) {
        if let Some(err) = outcome.error {
            return Err(err);
        }
        machine.stats.merge(&outcome.stats);
        machine.work += outcome.work;
        for (h, store) in outcome.arrays.into_iter().enumerate() {
            if let Some(&(_, op)) = red_arrays.iter().find(|&&(rh, _)| rh == h) {
                // Elementwise combine into the shared array.
                for off in 0..store.len() {
                    let merged = combine(op, machine.arrays[h].get(off), store.get(off));
                    machine.arrays[h].set(off, merged);
                }
            } else if let Some(mask) = outcome.tracker.masks.get(&h) {
                let best = best_stamp.entry(h).or_insert_with(|| vec![0; mask.len()]);
                if best.len() < mask.len() {
                    best.resize(mask.len(), 0);
                }
                for (off, &stamp) in mask.iter().enumerate() {
                    if stamp > best[off] {
                        best[off] = stamp;
                        machine.arrays[h].set(off, store.get(off));
                    }
                }
            }
        }
        for (v, &stamp) in &outcome.tracker.scalar_writes {
            if *v == l.var {
                continue;
            }
            if let Some(&(_, op)) = red_scalars.iter().find(|&&(rv, _)| rv == *v) {
                let merged = combine(op, frame.scalars[v], outcome.frame.scalars[v]);
                frame.scalars.insert(*v, merged);
            } else if stamp > best_scalar.get(v).copied().unwrap_or(0) {
                best_scalar.insert(*v, stamp);
                if let Some(val) = outcome.frame.scalars.get(v) {
                    frame.scalars.insert(*v, *val);
                }
            }
        }
    }
    // Arrays newly allocated inside workers (callee locals) are dropped
    // with the worker machines; shared handles were merged above.
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(identity(ReduceOp::Sum, ScalarTy::Real), Value::Real(0.0));
        assert_eq!(identity(ReduceOp::Product, ScalarTy::Int), Value::Int(1));
        assert_eq!(
            identity(ReduceOp::Min, ScalarTy::Real),
            Value::Real(f64::INFINITY)
        );
        assert_eq!(identity(ReduceOp::Max, ScalarTy::Int), Value::Int(i64::MIN));
    }

    #[test]
    fn combines() {
        assert_eq!(
            combine(ReduceOp::Sum, Value::Int(2), Value::Int(3)),
            Value::Int(5)
        );
        assert_eq!(
            combine(ReduceOp::Min, Value::Real(2.0), Value::Real(3.0)),
            Value::Real(2.0)
        );
        assert_eq!(
            combine(ReduceOp::Max, Value::Int(2), Value::Real(3.0)),
            Value::Real(3.0)
        );
    }
}
