//! # padfa-rt
//!
//! The execution substrate for the predicated-analysis evaluation: a
//! tree-walking interpreter for the mini-Fortran IR, a parallel loop
//! executor driving worker threads over iteration blocks, and the ELPD
//! (Extended Lazy Privatizing Doall) run-time inspector used by the
//! paper to identify the *inherently parallel* loops a compiler misses.
//!
//! The paper ran SUIF-generated SPMD code on SGI multiprocessors; here
//! the same roles are played by:
//!
//! * [`machine::Machine`] — sequential reference execution (the oracle
//!   every parallel run is compared against);
//! * [`plan::ExecPlan`] — built from a [`padfa_core::AnalysisResult`],
//!   selecting the outermost parallelizable loop of every nest (SUIF
//!   exploits a single level of parallelism) and carrying privatization,
//!   reduction, and two-version run-time test information;
//! * [`parallel`] — the block-partitioned worker-pool executor. Each
//!   worker runs on a private copy of the machine arrays with write
//!   tracking; merging the copies in block order reproduces the exact
//!   sequential final state for independent and privatized loops
//!   (last-value semantics), and reductions combine per-worker partial
//!   results in block order;
//! * [`elpd`] — shadow-array instrumentation classifying each candidate
//!   loop, on a concrete input, as independent / privatizable /
//!   sequential;
//! * [`faults`] — deterministic fault injection for proving the
//!   executor's panic isolation, state validation, and transactional
//!   sequential fallback (see the "Fault tolerance" notes on
//!   [`parallel`]).
//!
//! ```
//! use padfa_rt::{run_main, RunConfig, ArgValue};
//!
//! let src = "proc main(n: int) { array a[8];
//!     for i = 1 to n { a[i] = a[i] + 1.0; } }";
//! let prog = padfa_ir::parse::parse_program(src).unwrap();
//! let out = run_main(&prog, vec![ArgValue::Int(8)], &RunConfig::sequential()).unwrap();
//! assert_eq!(out.array("a").unwrap().as_f64()[7], 1.0);
//! ```

pub mod elpd;
pub mod faults;
pub mod inspector;
pub mod machine;
pub mod parallel;
pub mod plan;
pub mod value;

pub use faults::{
    FaultKind, FaultPlan, FaultSpec, ServiceFaultKind, ServiceFaultPlan, ServiceFaultSpec,
};
pub use machine::{run_main, ExecError, ExecStats, LoopProfile, RunConfig, RunResult};
pub use plan::{ExecPlan, LoopPlan, ParallelKind, PlanError};
pub use value::{ArgValue, ArrayStore, Value};
