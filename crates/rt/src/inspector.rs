//! The inspector/executor run-time parallelization comparator
//! (Rauchwerger & Padua's LRPD family; Saltz et al.).
//!
//! The paper contrasts its derived scalar tests with this class of
//! schemes: *"An inspector/executor introduces several auxiliary arrays
//! per array possibly involved in a dependence, and run-time overhead on
//! the order of the aggregate size of the arrays."*
//!
//! Our simulation is faithful to that cost structure. Before every
//! invocation of an inspected loop:
//!
//! 1. the **inspector** executes the loop on a throwaway copy of the
//!    machine state with full ELPD shadow instrumentation, classifying
//!    every touched array;
//! 2. the **executor** then runs the real loop in parallel if the
//!    inspection found no loop-carried flow dependence (privatizing the
//!    arrays the inspection flagged), or sequentially otherwise.
//!
//! Simulated time is charged for the inspection run itself plus shadow
//! initialization proportional to the aggregate size of the inspected
//! arrays — the overhead the predicated analysis's O(1) scalar tests
//! avoid. The `comparators` benchmark binary regenerates that
//! comparison.

use crate::elpd::ElpdState;
use crate::machine::{ExecError, Frame, Machine};
use crate::plan::{LoopPlan, ParallelKind};
use padfa_ir::ast::Loop;

/// Simulated per-element cost of allocating/initializing the auxiliary
/// shadow arrays (elements per work unit).
pub const SHADOW_ELEMS_PER_UNIT: u64 = 4;

/// Execute one invocation of `l` under the inspector/executor scheme.
pub(crate) fn run_inspected_loop(
    machine: &mut Machine<'_>,
    frame: &mut Frame,
    l: &Loop,
) -> Result<(), ExecError> {
    machine.stats.inspections += 1;

    // ---- Inspector: ELPD-instrumented dry run on cloned state. ----
    let mut probe = Machine::new(machine.prog, machine.cfg);
    probe.arrays = machine.arrays.clone();
    probe.in_worker = true; // no nested parallelism inside the probe
                            // The probe spends the parent's budgets, not a fresh allocation: an
                            // inspection of a runaway loop must still hit the fuel/deadline
                            // limits, and inspection work is real work.
    probe.fuel = machine.fuel;
    probe.deadline = machine.deadline;
    let mut state = ElpdState::new(l.id);
    // Exclude the loop's own index from scalar tracking.
    state.exclude_scalars.push(l.var);
    probe.elpd = Some(state);
    let mut probe_frame = frame.clone();
    probe.exec_loop(&mut probe_frame, l)?;
    let state = probe.elpd.take().expect("probe keeps its state");
    let (parallelizable, priv_handles) = state.outcome();

    // Charge the inspection: the dry run itself plus shadow array
    // maintenance proportional to the aggregate size of every array
    // visible to the loop (the auxiliary arrays of the scheme).
    let aggregate: u64 = frame
        .arrays
        .values()
        .map(|b| machine.arrays[b.handle].len() as u64)
        .sum();
    machine.work += probe.work;
    machine.sim += probe.sim + aggregate / SHADOW_ELEMS_PER_UNIT;
    machine.fuel = probe.fuel;

    // ---- Executor. ----
    if parallelizable {
        machine.stats.inspections_parallel += 1;
        let privatized = frame
            .arrays
            .iter()
            .filter(|(_, b)| priv_handles.contains(&b.handle))
            .map(|(v, _)| *v)
            .collect();
        let plan = LoopPlan {
            kind: ParallelKind::Always,
            privatized,
            reductions: Vec::new(),
        };
        let lo = machine.eval(frame, &l.lo)?.as_i64();
        let hi = machine.eval(frame, &l.hi)?.as_i64();
        machine.stats.parallel_loops += 1;
        crate::parallel::run_parallel_loop(machine, frame, l, &plan, lo, hi)
    } else {
        // Sequential fallback: run the loop normally. The machine's
        // inspect list would send us straight back here, so execute the
        // sequential path through a shielded sub-machine view.
        let saved_worker = machine.in_worker;
        machine.in_worker = true; // forces the sequential path
        let r = machine.exec_loop(frame, l);
        machine.in_worker = saved_worker;
        r.map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::{run_main, RunConfig};
    use crate::value::{ArgValue, ArrayStore};
    use padfa_ir::parse::parse_program;
    use padfa_ir::LoopId;

    fn inspected_cfg(workers: usize, loops: Vec<LoopId>) -> RunConfig {
        RunConfig {
            inspect: loops,
            ..RunConfig::parallel(workers, crate::plan::ExecPlan::sequential())
        }
    }

    #[test]
    fn inspector_parallelizes_independent_subscripts() {
        let src = "proc main(n: int, idx: array[32] of int) { array a[64];
            for i = 1 to n { a[idx[i]] = a[idx[i]] * 0.5 + 1.0; } }";
        let prog = parse_program(src).unwrap();
        let idx = ArrayStore::from_i64((1..=32).collect());
        let args = vec![ArgValue::Int(32), ArgValue::Array(idx)];
        let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
        let cfg = inspected_cfg(4, vec![LoopId(0)]);
        let out = run_main(&prog, args, &cfg).unwrap();
        assert_eq!(out.stats.inspections, 1);
        assert_eq!(out.stats.inspections_parallel, 1);
        assert_eq!(out.stats.parallel_loops, 1);
        assert_eq!(seq.max_abs_diff(&out), 0.0);
    }

    #[test]
    fn inspector_falls_back_on_collisions() {
        let src = "proc main(n: int, idx: array[32] of int) { array a[64];
            for i = 1 to n { a[idx[i]] = a[idx[i]] * 0.5 + 1.0; } }";
        let prog = parse_program(src).unwrap();
        let idx = ArrayStore::from_i64(vec![1; 32]);
        let args = vec![ArgValue::Int(32), ArgValue::Array(idx)];
        let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
        let cfg = inspected_cfg(4, vec![LoopId(0)]);
        let out = run_main(&prog, args, &cfg).unwrap();
        assert_eq!(out.stats.inspections, 1);
        assert_eq!(out.stats.inspections_parallel, 0);
        assert_eq!(out.stats.parallel_loops, 0);
        assert_eq!(seq.max_abs_diff(&out), 0.0);
    }

    #[test]
    fn inspector_privatizes_workspaces() {
        let src = "proc main(n: int) { array a[64]; array t[4];
            for i = 1 to n {
                for j = 1 to 4 { t[j] = i + j; }
                a[i] = t[1] + t[4];
            } }";
        let prog = parse_program(src).unwrap();
        let args = vec![ArgValue::Int(64)];
        let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
        let cfg = inspected_cfg(4, vec![LoopId(0)]);
        let out = run_main(&prog, args, &cfg).unwrap();
        assert_eq!(out.stats.inspections_parallel, 1);
        assert_eq!(seq.max_abs_diff(&out), 0.0);
    }

    #[test]
    fn inspection_cost_scales_with_array_size() {
        // The simulated overhead of the inspector (vs. a compile-time
        // plan) must grow with the aggregate array size even when the
        // loop's work per iteration stays fixed.
        let make = |size: usize| {
            let src = format!(
                "proc main(n: int) {{ array big[{size}]; array a[64];
                    for i = 1 to n {{ a[i] = a[i] + 1.0; }} }}"
            );
            parse_program(&src).unwrap()
        };
        let overhead = |size: usize| -> i64 {
            let prog = make(size);
            let args = vec![ArgValue::Int(64)];
            let cfg = inspected_cfg(4, vec![LoopId(0)]);
            let inspected = run_main(&prog, args.clone(), &cfg).unwrap();
            let seq = run_main(&prog, args, &RunConfig::sequential()).unwrap();
            inspected.sim_time as i64 - seq.sim_time as i64
        };
        let small = overhead(64);
        let large = overhead(64 * 64);
        assert!(
            large > small + ((64 * 64 - 64) / 8),
            "inspector overhead must scale with array size: {small} vs {large}"
        );
    }

    #[test]
    fn multiple_invocations_reinspect() {
        let src = "proc main(n: int) { array a[16, 16];
            for i = 1 to n {
                for j = 1 to 16 { a[i, j] = i * j; }
            } }";
        let prog = parse_program(src).unwrap();
        let args = vec![ArgValue::Int(8)];
        // Inspect the inner loop: entered once per outer iteration.
        let cfg = inspected_cfg(4, vec![LoopId(1)]);
        let out = run_main(&prog, args.clone(), &cfg).unwrap();
        assert_eq!(out.stats.inspections, 8);
        let seq = run_main(&prog, args, &RunConfig::sequential()).unwrap();
        assert_eq!(seq.max_abs_diff(&out), 0.0);
    }
}
