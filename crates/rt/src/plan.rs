//! Execution plans: turning an [`AnalysisResult`] into the information
//! the executor needs, selecting one level of parallelism per nest.

use padfa_core::{AnalysisResult, Outcome, ReduceOp};
use padfa_ir::{BoolExpr, LoopId, Program, Var};
use std::collections::HashMap;
use std::fmt;

/// A malformed or mismatched plan, surfaced as a recoverable error
/// instead of a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The loop has no entry in the plan at all.
    NotPlanned(LoopId),
    /// The loop is planned, but not as a two-version loop.
    NotTwoVersion(LoopId),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NotPlanned(id) => write!(f, "loop {id:?} is not in the plan"),
            PlanError::NotTwoVersion(id) => {
                write!(f, "loop {id:?} is planned, but not as a two-version loop")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// How a planned loop runs.
#[derive(Clone, Debug)]
pub enum ParallelKind {
    /// Unconditionally parallel.
    Always,
    /// Two-version loop: parallel when the test evaluates true at entry.
    If(BoolExpr),
}

/// Reduction instruction for the executor.
#[derive(Clone, Debug)]
pub struct PlannedReduction {
    pub target: Var,
    pub is_array: bool,
    pub op: ReduceOp,
}

/// Everything the executor needs to run one loop in parallel.
#[derive(Clone, Debug)]
pub struct LoopPlan {
    pub kind: ParallelKind,
    /// Arrays needing privatization (always handled by the executor's
    /// private-copy + ordered-merge scheme; listed for reporting).
    pub privatized: Vec<Var>,
    pub reductions: Vec<PlannedReduction>,
}

/// Parallelization plan for a program: at most one parallel loop per
/// nest (the outermost parallelizable one), mirroring SUIF's
/// single-level parallelism.
#[derive(Clone, Debug, Default)]
pub struct ExecPlan {
    loops: HashMap<LoopId, LoopPlan>,
}

impl ExecPlan {
    /// No parallel loops at all.
    pub fn sequential() -> ExecPlan {
        ExecPlan::default()
    }

    /// Build a plan from analysis results: walk every nest outside-in
    /// and plan the first parallelizable candidate loop.
    pub fn from_analysis(prog: &Program, result: &AnalysisResult) -> ExecPlan {
        let parents = padfa_ir::visit::loop_parents(prog);
        let mut plan = ExecPlan::default();
        padfa_ir::visit::for_each_loop(prog, &mut |_, l, _| {
            // Skip if any ancestor is already planned.
            let mut anc = parents.get(&l.id).copied().flatten();
            while let Some(a) = anc {
                if plan.loops.contains_key(&a) {
                    return;
                }
                anc = parents.get(&a).copied().flatten();
            }
            let Some(report) = result.loop_report(l.id) else {
                return;
            };
            if report.not_candidate.is_some() {
                return;
            }
            let kind = match &report.outcome {
                Outcome::Parallel => ParallelKind::Always,
                Outcome::ParallelIf(p) => ParallelKind::If(p.to_bool_expr()),
                Outcome::Sequential => return,
            };
            plan.loops.insert(
                l.id,
                LoopPlan {
                    kind,
                    privatized: report.privatized.iter().map(|p| p.array).collect(),
                    reductions: report
                        .reductions
                        .iter()
                        .map(|r| PlannedReduction {
                            target: r.target,
                            is_array: r.is_array,
                            op: r.op,
                        })
                        .collect(),
                },
            );
        });
        plan
    }

    pub fn get(&self, id: LoopId) -> Option<&LoopPlan> {
        self.loops.get(&id)
    }

    /// The run-time test of a loop planned as two-version
    /// ([`ParallelKind::If`]), or a typed error describing why the plan
    /// does not match.
    pub fn two_version_test(&self, id: LoopId) -> Result<&BoolExpr, PlanError> {
        match self.loops.get(&id) {
            None => Err(PlanError::NotPlanned(id)),
            Some(LoopPlan {
                kind: ParallelKind::If(test),
                ..
            }) => Ok(test),
            Some(_) => Err(PlanError::NotTwoVersion(id)),
        }
    }

    pub fn len(&self) -> usize {
        self.loops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    pub fn loop_ids(&self) -> impl Iterator<Item = LoopId> + '_ {
        self.loops.keys().copied()
    }

    /// Manually plan a loop (used by tests and ablations).
    pub fn insert(&mut self, id: LoopId, plan: LoopPlan) {
        self.loops.insert(id, plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_core::{analyze_program, Options};
    use padfa_ir::parse::parse_program;

    #[test]
    fn outermost_parallel_loop_wins() {
        let src = "proc m(n: int) { array a[64, 64];
            for i = 1 to n { for j = 1 to n { a[i, j] = 1.0; } } }";
        let prog = parse_program(src).unwrap();
        let res = analyze_program(&prog, &Options::predicated()).unwrap();
        let plan = ExecPlan::from_analysis(&prog, &res);
        assert_eq!(plan.len(), 1);
        assert!(plan.get(LoopId(0)).is_some(), "outer loop planned");
        assert!(plan.get(LoopId(1)).is_none(), "inner loop not planned");
    }

    #[test]
    fn inner_parallel_when_outer_sequential() {
        let src = "proc m(n: int) { array a[64, 64];
            for i = 2 to n {
                for j = 1 to n { a[i, j] = a[i - 1, j] + 1.0; }
            } }";
        let prog = parse_program(src).unwrap();
        let res = analyze_program(&prog, &Options::predicated()).unwrap();
        let plan = ExecPlan::from_analysis(&prog, &res);
        assert!(plan.get(LoopId(0)).is_none(), "outer carries a dependence");
        assert!(plan.get(LoopId(1)).is_some(), "inner is parallel");
    }

    #[test]
    fn runtime_test_becomes_two_version() {
        let src = "proc m(c: int, x: int) {
            array help[101]; array a[100, 2];
            for i = 1 to c {
                if (x > 5) { help[i] = a[i, 1]; }
                a[i, 2] = help[i + 1];
            } }";
        let prog = parse_program(src).unwrap();
        let res = analyze_program(&prog, &Options::predicated()).unwrap();
        let plan = ExecPlan::from_analysis(&prog, &res);
        let test = plan
            .two_version_test(LoopId(0))
            .expect("two-version plan expected");
        assert!(test.is_scalar_only());
    }

    #[test]
    fn two_version_lookup_errors_are_typed() {
        let src = "proc m(n: int) { array a[64];
            for i = 1 to n { a[i] = 1.0; } }";
        let prog = parse_program(src).unwrap();
        let res = analyze_program(&prog, &Options::predicated()).unwrap();
        let plan = ExecPlan::from_analysis(&prog, &res);
        // Loop 0 is unconditionally parallel: planned, but not
        // two-version.
        assert_eq!(
            plan.two_version_test(LoopId(0)),
            Err(PlanError::NotTwoVersion(LoopId(0)))
        );
        // Loop 7 does not exist.
        assert_eq!(
            plan.two_version_test(LoopId(7)),
            Err(PlanError::NotPlanned(LoopId(7)))
        );
        assert!(PlanError::NotPlanned(LoopId(7))
            .to_string()
            .contains("not in the plan"));
    }

    #[test]
    fn non_candidates_never_planned() {
        let src = "proc m(n: int) { array a[8]; var x: int;
            for i = 1 to n { read x; a[i] = 1.0; } }";
        let prog = parse_program(src).unwrap();
        let res = analyze_program(&prog, &Options::predicated()).unwrap();
        let plan = ExecPlan::from_analysis(&prog, &res);
        assert!(plan.is_empty());
    }
}
