//! Differential fault-injection tests: a parallel run in which workers
//! panic, fail, or corrupt their tracker state must either recover to a
//! result *bit-identical* to the sequential oracle (the transactional
//! fallback) or surface a typed [`ExecError`] — never abort the process
//! or return wrong data.

use padfa_core::{analyze_program, Options};
use padfa_ir::parse::parse_program;
use padfa_rt::machine::ExecError;
use padfa_rt::{run_main, ArgValue, ExecPlan, FaultKind, FaultPlan, FaultSpec, RunConfig};

/// The matrix program: privatized array `t`, last-value scalar `last`,
/// and plain element writes — everything merges bit-exactly, so both
/// the normal parallel path and the fallback path must match the
/// sequential oracle down to the float bit pattern.
const MATRIX_SRC: &str = "proc main(n: int) {
    array a[256]; array t[8]; var last: real;
    for i = 1 to n {
        for j = 1 to 8 { t[j] = i * 0.5 + j; }
        a[i] = t[1] + t[8];
        last = a[i];
    } }";

const TRIP: i64 = 64;
/// Statements one outer iteration costs a worker: the inner `for`
/// statement, its 8 assignments, and the two outer assignments.
const STMTS_PER_ITER: u64 = 11;

fn matrix_plan(prog: &padfa_ir::Program) -> ExecPlan {
    let result = analyze_program(prog, &Options::predicated()).unwrap();
    let plan = ExecPlan::from_analysis(prog, &result);
    assert!(!plan.is_empty(), "matrix loop must be planned parallel");
    plan
}

fn seq_oracle(prog: &padfa_ir::Program) -> padfa_rt::RunResult {
    run_main(prog, vec![ArgValue::Int(TRIP)], &RunConfig::sequential()).unwrap()
}

/// The full fault matrix: every fault kind x first/middle/last chunk of
/// the victim worker's statement stream x 1/2/4 workers. Injected
/// panics, errors, and corruptions recover bit-identically via the
/// fallback; injected fuel exhaustion surfaces as the typed error
/// (re-running a loop that ran out of budget cannot terminate).
#[test]
fn fault_matrix_recovers_or_fails_typed() {
    let prog = parse_program(MATRIX_SRC).unwrap();
    let oracle = seq_oracle(&prog);
    let kinds = [
        FaultKind::Panic,
        FaultKind::Error(ExecError::DivisionByZero),
        FaultKind::CorruptStamp,
        FaultKind::Error(ExecError::FuelExhausted),
    ];
    for workers in [1usize, 2, 4] {
        // Chunked scheduling gives every worker several chunks; the
        // three positions land in its first, a middle, and its last
        // chunk.
        let per_worker = TRIP as u64 / workers as u64 * STMTS_PER_ITER;
        for at_stmt in [1, per_worker / 2, per_worker] {
            for kind in &kinds {
                let faults = FaultPlan::none().with(FaultSpec {
                    worker: workers - 1,
                    at_stmt,
                    kind: kind.clone(),
                });
                let plan = matrix_plan(&prog);
                let cfg = RunConfig::chunked(workers, plan, 8).with_faults(faults);
                let label = format!("workers={workers} at_stmt={at_stmt} kind={kind:?}");
                let out = run_main(&prog, vec![ArgValue::Int(TRIP)], &cfg);
                if workers == 1 {
                    // Sequential path: no workers exist, nothing fires.
                    let out = out.unwrap_or_else(|e| panic!("{label}: {e}"));
                    assert!(oracle.bits_eq(&out), "{label}");
                    assert_eq!(out.stats.fallbacks, 0, "{label}");
                    continue;
                }
                match kind {
                    FaultKind::Error(ExecError::FuelExhausted) => {
                        // Budget exhaustion is not recoverable by
                        // re-running: it must propagate, typed.
                        let err = out.expect_err(&label);
                        assert!(
                            matches!(err, ExecError::FuelExhausted),
                            "{label}: got {err:?}"
                        );
                    }
                    FaultKind::CorruptStamp => {
                        // A corruption whose evidence is later
                        // overwritten by the same worker is transient
                        // and harmless (the overwrite re-stamps the
                        // entry); one that persists must be caught.
                        // Either way the result is bit-exact.
                        let out = out.unwrap_or_else(|e| panic!("{label}: {e}"));
                        assert!(
                            oracle.bits_eq(&out),
                            "{label}: corrupted state reached the results"
                        );
                        assert!(out.stats.fallbacks <= 1, "{label}");
                    }
                    _ => {
                        let out = out.unwrap_or_else(|e| panic!("{label}: {e}"));
                        assert!(
                            oracle.bits_eq(&out),
                            "{label}: recovered state differs from oracle"
                        );
                        assert_eq!(out.stats.fallbacks, 1, "{label}");
                        let expect_panics = u64::from(matches!(kind, FaultKind::Panic));
                        assert_eq!(out.stats.worker_panics, expect_panics, "{label}");
                    }
                }
            }
        }
    }
}

/// Several faults across several workers in the same region still
/// recover with a single fallback re-run.
#[test]
fn multiple_simultaneous_faults_one_fallback() {
    let prog = parse_program(MATRIX_SRC).unwrap();
    let oracle = seq_oracle(&prog);
    let faults = FaultPlan::panic_at(0, 7)
        .with(FaultSpec {
            worker: 1,
            at_stmt: 30,
            kind: FaultKind::Error(ExecError::DivisionByZero),
        })
        .with(FaultSpec {
            worker: 2,
            at_stmt: 3,
            kind: FaultKind::CorruptStamp,
        });
    let cfg = RunConfig::parallel(4, matrix_plan(&prog)).with_faults(faults);
    let out = run_main(&prog, vec![ArgValue::Int(TRIP)], &cfg).unwrap();
    assert!(oracle.bits_eq(&out));
    assert_eq!(out.stats.fallbacks, 1);
    assert_eq!(out.stats.worker_panics, 1);
}

/// Seeded pseudo-random plans: whatever combination the seed produces,
/// the run either matches the oracle bit-for-bit or fails typed.
#[test]
fn seeded_fault_plans_always_recover() {
    let prog = parse_program(MATRIX_SRC).unwrap();
    let oracle = seq_oracle(&prog);
    for seed in 0..32u64 {
        let faults = FaultPlan::seeded(seed, 3, 4, 170);
        let cfg = RunConfig::parallel(4, matrix_plan(&prog)).with_faults(faults.clone());
        let out = run_main(&prog, vec![ArgValue::Int(TRIP)], &cfg)
            .unwrap_or_else(|e| panic!("seed {seed} ({faults:?}): {e}"));
        assert!(oracle.bits_eq(&out), "seed {seed}: {faults:?}");
        // At least one fault lands in a live worker's statement range,
        // so some recovery must have happened.
        assert_eq!(out.stats.fallbacks, 1, "seed {seed}: {faults:?}");
    }
}

/// With the fallback disabled every fault kind surfaces as its typed
/// error: the caller opted out of transparent recovery, not of safety.
#[test]
fn no_fallback_surfaces_typed_errors() {
    let prog = parse_program(MATRIX_SRC).unwrap();
    let run = |faults: FaultPlan| {
        let cfg = RunConfig::parallel(4, matrix_plan(&prog))
            .with_faults(faults)
            .no_fallback();
        run_main(&prog, vec![ArgValue::Int(TRIP)], &cfg).unwrap_err()
    };
    let err = run(FaultPlan::panic_at(1, 5));
    match err {
        ExecError::WorkerPanicked {
            worker,
            ref message,
        } => {
            assert_eq!(worker, 1);
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    let err = run(FaultPlan::error_at(0, 5, ExecError::DivisionByZero));
    assert!(matches!(err, ExecError::DivisionByZero), "got {err:?}");
    let err = run(FaultPlan::corrupt_stamp_at(2, 5));
    match err {
        ExecError::StateCorrupted { worker, .. } => assert_eq!(worker, 2),
        other => panic!("expected StateCorrupted, got {other:?}"),
    }
}

/// A fault aimed past the worker's last statement never fires; the run
/// is a plain successful parallel run.
#[test]
fn unreached_faults_are_harmless() {
    let prog = parse_program(MATRIX_SRC).unwrap();
    let oracle = seq_oracle(&prog);
    let faults = FaultPlan::panic_at(0, 1_000_000);
    let cfg = RunConfig::parallel(4, matrix_plan(&prog)).with_faults(faults);
    let out = run_main(&prog, vec![ArgValue::Int(TRIP)], &cfg).unwrap();
    assert!(oracle.bits_eq(&out));
    assert_eq!(out.stats.fallbacks, 0);
    assert_eq!(out.stats.worker_panics, 0);
}

/// Pre-loop state must survive a failed region untouched: statements
/// *before* the faulted loop keep their effect, and the fallback re-runs
/// only the loop.
#[test]
fn pre_loop_state_is_transactional() {
    let src = "proc main(n: int) {
        array a[64]; var setup: real;
        setup = 41.0 + 1.0;
        for i = 1 to n { a[i] = i * 2.0; }
        } ";
    let prog = parse_program(src).unwrap();
    let oracle = run_main(&prog, vec![ArgValue::Int(32)], &RunConfig::sequential()).unwrap();
    let cfg = RunConfig::parallel(4, matrix_plan_for(&prog)).with_faults(FaultPlan::panic_at(1, 2));
    let out = run_main(&prog, vec![ArgValue::Int(32)], &cfg).unwrap();
    assert_eq!(out.scalar("setup").unwrap().as_f64(), 42.0);
    assert!(oracle.bits_eq(&out));
    assert_eq!(out.stats.fallbacks, 1);
}

fn matrix_plan_for(prog: &padfa_ir::Program) -> ExecPlan {
    let result = analyze_program(prog, &Options::predicated()).unwrap();
    ExecPlan::from_analysis(prog, &result)
}

/// The failed parallel attempt is billed: simulated time of a recovered
/// run strictly exceeds the plain sequential run (wasted parallel work
/// plus the re-run), and statement work counts both attempts.
#[test]
fn wasted_work_is_billed() {
    let prog = parse_program(MATRIX_SRC).unwrap();
    let seq = seq_oracle(&prog);
    let faults = FaultPlan::panic_at(0, 100);
    let cfg = RunConfig::parallel(4, matrix_plan(&prog)).with_faults(faults);
    let out = run_main(&prog, vec![ArgValue::Int(TRIP)], &cfg).unwrap();
    assert_eq!(out.stats.fallbacks, 1);
    assert!(
        out.sim_time > seq.sim_time,
        "recovered run must cost more than a clean sequential run \
         ({} vs {})",
        out.sim_time,
        seq.sim_time
    );
    assert!(
        out.total_work > seq.total_work,
        "wasted worker statements must be counted ({} vs {})",
        out.total_work,
        seq.total_work
    );
}

/// Corrupt-stamp detection: without validation the corrupted merge
/// would silently lose writes; with it, the run recovers exactly.
#[test]
fn stamp_corruption_never_reaches_results() {
    let prog = parse_program(MATRIX_SRC).unwrap();
    let oracle = seq_oracle(&prog);
    for worker in 0..4usize {
        let faults = FaultPlan::corrupt_stamp_at(worker, 10);
        let cfg = RunConfig::parallel(4, matrix_plan(&prog)).with_faults(faults);
        let out = run_main(&prog, vec![ArgValue::Int(TRIP)], &cfg).unwrap();
        assert!(oracle.bits_eq(&out), "worker {worker}");
        assert_eq!(out.stats.fallbacks, 1, "worker {worker}");
    }
}
