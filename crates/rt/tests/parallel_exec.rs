//! Differential tests: parallel execution must reproduce the sequential
//! result for every loop the analysis declares parallelizable.

use padfa_core::{analyze_program, Options};
use padfa_ir::parse::parse_program;
use padfa_rt::{run_main, ArgValue, ArrayStore, ExecPlan, RunConfig};

fn diff_run(src: &str, args: Vec<ArgValue>, workers: usize) -> (f64, padfa_rt::RunResult) {
    let prog = parse_program(src).unwrap();
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    let plan = ExecPlan::from_analysis(&prog, &result);
    let par = run_main(&prog, args, &RunConfig::parallel(workers, plan)).unwrap();
    (seq.max_abs_diff(&par), par)
}

#[test]
fn independent_loop_matches_exactly() {
    let (d, par) = diff_run(
        "proc main(n: int) { array a[1000];
         for i = 1 to n { a[i] = i * 2 + 1; } }",
        vec![ArgValue::Int(1000)],
        4,
    );
    assert_eq!(d, 0.0);
    assert_eq!(par.stats.parallel_loops, 1);
}

#[test]
fn stencil_like_loop_inner_parallel() {
    let (d, par) = diff_run(
        "proc main(n: int) { array a[64, 64];
         for i = 2 to n {
             for j = 1 to n { a[i, j] = a[i - 1, j] * 0.5 + 1.0; }
         } }",
        vec![ArgValue::Int(64)],
        4,
    );
    assert_eq!(d, 0.0, "inner loops parallelized, outer sequential");
    assert!(par.stats.parallel_loops >= 1);
}

#[test]
fn privatized_array_with_copy_out() {
    let (d, par) = diff_run(
        "proc main(n: int) { array a[256]; array t[8];
         for i = 1 to n {
             for j = 1 to 8 { t[j] = i * 1.0 + j; }
             a[i] = t[1] * t[8];
         } }",
        vec![ArgValue::Int(256)],
        4,
    );
    assert_eq!(d, 0.0, "privatized t must not corrupt results");
    assert_eq!(par.stats.parallel_loops, 1);
    // Last-value semantics: t must hold the final iteration's values.
    let t = par.array("t").unwrap().as_f64();
    assert_eq!(t[0], 257.0);
    assert_eq!(t[7], 264.0);
}

#[test]
fn privatized_scalar_last_value() {
    let (d, par) = diff_run(
        "proc main(n: int) { var t: real; array a[100];
         for i = 1 to n { t = i * 3.0; a[i] = t; } }",
        vec![ArgValue::Int(100)],
        4,
    );
    assert_eq!(d, 0.0);
    assert_eq!(par.scalar("t").unwrap().as_f64(), 300.0);
}

#[test]
fn sum_reduction_approximately_equal() {
    let src = "proc main(n: int, a: array[10000]) { var s: real;
         for i = 1 to n { s = s + a[i]; } }";
    let prog = parse_program(src).unwrap();
    let data: Vec<f64> = (0..10000).map(|i| (i as f64) * 0.001 + 0.5).collect();
    let args = vec![
        ArgValue::Int(10000),
        ArgValue::Array(ArrayStore::from_f64(data)),
    ];
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    let plan = ExecPlan::from_analysis(&prog, &result);
    let par = run_main(&prog, args, &RunConfig::parallel(8, plan)).unwrap();
    let s1 = seq.scalar("s").unwrap().as_f64();
    let s2 = par.scalar("s").unwrap().as_f64();
    assert!(
        (s1 - s2).abs() <= 1e-6 * s1.abs().max(1.0),
        "sequential {s1} vs parallel {s2}"
    );
    assert_eq!(par.stats.parallel_loops, 1);
}

#[test]
fn min_max_reductions_exact() {
    let src = "proc main(n: int, a: array[5000]) { var lo: real; var hi: real;
         lo = a[1]; hi = a[1];
         for i = 1 to n { lo = min(lo, a[i]); hi = max(hi, a[i]); } }";
    let prog = parse_program(src).unwrap();
    let data: Vec<f64> = (0..5000)
        .map(|i| ((i * 2654435761u64 as usize) % 10007) as f64 - 5000.0)
        .collect();
    let args = vec![
        ArgValue::Int(5000),
        ArgValue::Array(ArrayStore::from_f64(data)),
    ];
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    let plan = ExecPlan::from_analysis(&prog, &result);
    let par = run_main(&prog, args, &RunConfig::parallel(8, plan)).unwrap();
    assert_eq!(
        seq.scalar("lo").unwrap().as_f64(),
        par.scalar("lo").unwrap().as_f64()
    );
    assert_eq!(
        seq.scalar("hi").unwrap().as_f64(),
        par.scalar("hi").unwrap().as_f64()
    );
}

#[test]
fn two_version_loop_takes_parallel_path_when_safe() {
    // The loop is parallel iff x <= 5 (Figure 1(b) shape).
    let src = "proc main(c: int, x: int) {
        array help[101]; array a[100, 2];
        for i = 1 to c {
            if (x > 5) { help[i] = a[i, 1] + 1.0; }
            a[i, 2] = help[i + 1];
        } }";
    let prog = parse_program(src).unwrap();
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    let plan = ExecPlan::from_analysis(&prog, &result);
    assert_eq!(plan.len(), 1, "two-version loop must be planned");

    // Safe input: x = 3 -> test passes, parallel version runs.
    let safe_args = vec![ArgValue::Int(100), ArgValue::Int(3)];
    let seq = run_main(&prog, safe_args.clone(), &RunConfig::sequential()).unwrap();
    let par = run_main(&prog, safe_args, &RunConfig::parallel(4, plan.clone())).unwrap();
    assert_eq!(seq.max_abs_diff(&par), 0.0);
    assert_eq!(par.stats.tests_passed, 1);
    assert_eq!(par.stats.parallel_loops, 1);

    // Unsafe input: x = 9 -> test fails, sequential fallback runs, and
    // the result still matches the sequential oracle.
    let unsafe_args = vec![ArgValue::Int(100), ArgValue::Int(9)];
    let seq2 = run_main(&prog, unsafe_args.clone(), &RunConfig::sequential()).unwrap();
    let par2 = run_main(&prog, unsafe_args, &RunConfig::parallel(4, plan)).unwrap();
    assert_eq!(seq2.max_abs_diff(&par2), 0.0);
    assert_eq!(par2.stats.tests_failed, 1);
    assert_eq!(par2.stats.parallel_loops, 0);
}

#[test]
fn interprocedural_parallel_loop() {
    let (d, par) = diff_run(
        "proc scale(row: array[128], n: int, f: real) {
             for j = 1 to n { row[j] = row[j] * f + 1.0; }
         }
         proc main(n: int) { array a[128];
             for i = 1 to n { a[i] = i * 1.0; }
             call scale(a, n, 0.5);
         }",
        vec![ArgValue::Int(128)],
        4,
    );
    assert_eq!(d, 0.0);
    assert!(par.stats.parallel_loops >= 2);
}

#[test]
fn worker_counts_all_agree() {
    let src = "proc main(n: int) { array a[512]; array t[4];
         for i = 1 to n {
             for j = 1 to 4 { t[j] = i + j * 2; }
             a[i] = t[1] + t[2] + t[3] + t[4];
         } }";
    let prog = parse_program(src).unwrap();
    let seq = run_main(&prog, vec![ArgValue::Int(512)], &RunConfig::sequential()).unwrap();
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    for workers in [2, 3, 4, 7, 8] {
        let plan = ExecPlan::from_analysis(&prog, &result);
        let par = run_main(
            &prog,
            vec![ArgValue::Int(512)],
            &RunConfig::parallel(workers, plan),
        )
        .unwrap();
        assert_eq!(seq.max_abs_diff(&par), 0.0, "workers = {workers}");
    }
}

#[test]
fn more_workers_than_iterations() {
    let (d, _) = diff_run(
        "proc main(n: int) { array a[3];
         for i = 1 to n { a[i] = i * 5; } }",
        vec![ArgValue::Int(3)],
        8,
    );
    assert_eq!(d, 0.0);
}

#[test]
fn guarded_writes_in_parallel_loop() {
    let (d, _) = diff_run(
        "proc main(n: int, x: int) { array a[200];
         for i = 1 to n {
             if (x > 0) { a[i] = i * 2; } else { a[i] = i * 3; }
         } }",
        vec![ArgValue::Int(200), ArgValue::Int(1)],
        4,
    );
    assert_eq!(d, 0.0);
}

#[test]
fn chunked_scheduling_matches_block_and_sequential() {
    let src = "proc main(n: int) { array a[331]; array t[4]; var last: real;
         for i = 1 to n {
             for j = 1 to 4 { t[j] = i * 2 + j; }
             a[i] = t[1] * t[4];
             last = a[i];
         } }";
    let prog = parse_program(src).unwrap();
    let args = vec![ArgValue::Int(331)];
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    for chunk in [1usize, 2, 7, 50, 1000] {
        for workers in [2usize, 3, 8] {
            let plan = ExecPlan::from_analysis(&prog, &result);
            let cfg = RunConfig::chunked(workers, plan, chunk);
            let par = run_main(&prog, args.clone(), &cfg).unwrap();
            assert_eq!(
                seq.max_abs_diff(&par),
                0.0,
                "chunk={chunk} workers={workers}"
            );
            // Last-value semantics for the privatized scalar: written by
            // the final iteration regardless of which worker ran it.
            assert_eq!(
                par.scalar("last").unwrap().as_f64(),
                seq.scalar("last").unwrap().as_f64(),
                "chunk={chunk} workers={workers}"
            );
        }
    }
}

#[test]
fn chunked_overlapping_privatized_writes() {
    // Every iteration writes t[1]: with interleaved chunks the final
    // value must still come from the globally last iteration.
    let src = "proc main(n: int) { array a[97]; array t[2];
         for i = 1 to n { t[1] = i * 1.0; a[i] = t[1]; } }";
    let prog = parse_program(src).unwrap();
    let args = vec![ArgValue::Int(97)];
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    for chunk in [1usize, 3, 10] {
        let plan = ExecPlan::from_analysis(&prog, &result);
        let par = run_main(&prog, args.clone(), &RunConfig::chunked(4, plan, chunk)).unwrap();
        assert_eq!(seq.max_abs_diff(&par), 0.0, "chunk={chunk}");
        assert_eq!(par.array("t").unwrap().as_f64()[0], 97.0);
    }
}

#[test]
fn chunked_reduction() {
    let src = "proc main(n: int, d: array[2048]) { var s: real;
         for i = 1 to n { s = s + d[i]; } }";
    let prog = parse_program(src).unwrap();
    let data: Vec<f64> = (0..2048).map(|i| (i % 17) as f64 * 0.25).collect();
    let args = vec![
        ArgValue::Int(2048),
        ArgValue::Array(ArrayStore::from_f64(data)),
    ];
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    let plan = ExecPlan::from_analysis(&prog, &result);
    let par = run_main(&prog, args, &RunConfig::chunked(4, plan, 16)).unwrap();
    let (a, b) = (
        seq.scalar("s").unwrap().as_f64(),
        par.scalar("s").unwrap().as_f64(),
    );
    assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0));
}

#[test]
fn downward_loops_execute_correctly() {
    // Sequential semantics: later-executed (smaller i) writes win.
    let src = "proc main(n: int) { array a[100]; var last: real;
         for i = n to 1 step -1 { a[i] = i * 2.0; last = a[i]; }
         a[1] = a[1] + 0.5; }";
    let prog = parse_program(src).unwrap();
    let args = vec![ArgValue::Int(100)];
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
    assert_eq!(
        seq.scalar("last").unwrap().as_f64(),
        2.0,
        "last iteration is i = 1"
    );
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    for (workers, chunk) in [(4usize, None), (3, Some(5usize))] {
        let plan = ExecPlan::from_analysis(&prog, &result);
        let cfg = match chunk {
            None => RunConfig::parallel(workers, plan),
            Some(c) => RunConfig::chunked(workers, plan, c),
        };
        let par = run_main(&prog, args.clone(), &cfg).unwrap();
        assert_eq!(
            seq.max_abs_diff(&par),
            0.0,
            "workers={workers} chunk={chunk:?}"
        );
    }
}

#[test]
fn downward_strided_loop() {
    let src = "proc main(n: int) { array a[100];
         for i = n to 1 step -3 { a[i] = i * 1.5; } }";
    let prog = parse_program(src).unwrap();
    let args = vec![ArgValue::Int(100)];
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
    // Iterations touch 100, 97, ..., 1.
    let a = seq.array("a").unwrap().as_f64();
    assert_eq!(a[99], 150.0);
    assert_eq!(a[96], 97.0 * 1.5);
    assert_eq!(a[98], 0.0);
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    let plan = ExecPlan::from_analysis(&prog, &result);
    let par = run_main(&prog, args, &RunConfig::parallel(4, plan)).unwrap();
    assert_eq!(seq.max_abs_diff(&par), 0.0);
}

#[test]
fn worker_errors_propagate() {
    // An out-of-bounds access inside a parallel worker must surface as
    // an ExecError, not a panic or silent corruption. The subscript is
    // non-affine (via an index array), so the analysis cannot prove the
    // access safe statically — but ELPD-style reasoning is not consulted
    // for planning here; we force a plan to exercise the error path.
    let src = "proc main(n: int, idx: array[64] of int) { array a[8];
         for i = 1 to n { a[idx[i]] = 1.0; } }";
    let prog = parse_program(src).unwrap();
    let mut bad = vec![1i64; 64];
    bad[40] = 9; // out of bounds for a[8]
    let args = vec![
        ArgValue::Int(64),
        ArgValue::Array(ArrayStore::from_i64(bad)),
    ];
    let mut plan = ExecPlan::sequential();
    plan.insert(
        padfa_ir::LoopId(0),
        padfa_rt::LoopPlan {
            kind: padfa_rt::ParallelKind::Always,
            privatized: vec![padfa_ir::Var::new("a")],
            reductions: vec![],
        },
    );
    let err = run_main(&prog, args, &RunConfig::parallel(4, plan)).unwrap_err();
    assert!(
        matches!(err, padfa_rt::ExecError::OutOfBounds { .. }),
        "{err}"
    );
}

#[test]
fn simulated_time_model_shape() {
    // Simulated time must be strictly smaller for more workers on a
    // coarse-grain loop (until overheads dominate), and equal to
    // total_work for a sequential run.
    let src = "proc main(n: int) { array a[2000];
         for i = 1 to n { a[i] = sqrt(i * 1.0) + sin(i * 0.01); } }";
    let prog = parse_program(src).unwrap();
    let args = vec![ArgValue::Int(2000)];
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
    assert_eq!(seq.sim_time, seq.total_work);
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    let mut last = u64::MAX;
    for workers in [2usize, 4, 8] {
        let plan = ExecPlan::from_analysis(&prog, &result);
        let par = run_main(&prog, args.clone(), &RunConfig::parallel(workers, plan)).unwrap();
        assert!(par.sim_time < seq.sim_time, "workers={workers}");
        assert!(par.sim_time < last, "monotone speedup at {workers}");
        last = par.sim_time;
    }
}

#[test]
fn chunk_larger_than_trip_degenerates_to_one_block() {
    let src = "proc main(n: int) { array a[10];
         for i = 1 to n { a[i] = i * 2; } }";
    let prog = parse_program(src).unwrap();
    let args = vec![ArgValue::Int(10)];
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    let plan = ExecPlan::from_analysis(&prog, &result);
    let par = run_main(&prog, args, &RunConfig::chunked(4, plan, 1000)).unwrap();
    assert_eq!(seq.max_abs_diff(&par), 0.0);
    assert_eq!(par.stats.parallel_loops, 1);
}

#[test]
fn elpd_on_downward_loop() {
    use padfa_rt::elpd::elpd_inspect;
    let src = "proc main(n: int) { array a[64];
         for i = n to 2 step -1 { a[i] = a[i - 1] + 1.0; } }";
    let prog = parse_program(src).unwrap();
    // Downward a[i] = a[i-1]: iteration i reads a[i-1], which iteration
    // i-1 (executed LATER) writes — an anti dependence only, so the loop
    // is dynamically parallelizable with privatization/copy-in.
    let v = elpd_inspect(&prog, vec![ArgValue::Int(32)], padfa_ir::LoopId(0), &[]).unwrap();
    assert!(v.parallelizable, "{v:?}");

    // The upward twin has a true flow dependence.
    let src2 = "proc main(n: int) { array a[64];
         for i = 2 to n { a[i] = a[i - 1] + 1.0; } }";
    let prog2 = parse_program(src2).unwrap();
    let v2 = elpd_inspect(&prog2, vec![ArgValue::Int(32)], padfa_ir::LoopId(0), &[]).unwrap();
    assert!(!v2.parallelizable);
}

#[test]
fn printed_output_preserved_outside_parallel_loops() {
    let src = "proc main(n: int) { array a[50]; var s: real;
         for i = 1 to n { a[i] = i * 1.0; }
         for i = 1 to n { s = s + a[i]; }
         print s;
         print n * 2; }";
    let prog = parse_program(src).unwrap();
    let args = vec![ArgValue::Int(50)];
    let result = analyze_program(&prog, &Options::predicated()).unwrap();
    let plan = ExecPlan::from_analysis(&prog, &result);
    let par = run_main(&prog, args, &RunConfig::parallel(4, plan)).unwrap();
    assert_eq!(par.printed.len(), 2);
    assert_eq!(par.printed[0].as_f64(), 1275.0);
    assert_eq!(par.printed[1].as_i64(), 100);
}
