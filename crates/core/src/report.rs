//! Analysis results: per-loop outcomes and aggregate statistics.

use padfa_ir::LoopId;
use padfa_omega::Var;
use padfa_pred::Pred;
use std::fmt;

/// Why a loop is not a parallelization candidate at all.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NotCandidateReason {
    /// Contains read I/O (directly or through calls).
    ReadIo,
    /// Contains an internal exit.
    InternalExit,
    /// The enclosing procedure exhausted its work budget; the loop is
    /// covered only by the degraded conservative summary.
    BudgetExhausted,
}

impl fmt::Display for NotCandidateReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotCandidateReason::ReadIo => write!(f, "read-io"),
            NotCandidateReason::InternalExit => write!(f, "internal-exit"),
            NotCandidateReason::BudgetExhausted => write!(f, "budget"),
        }
    }
}

/// Parallelization decision for one loop.
#[derive(Clone, PartialEq, Debug)]
pub enum Outcome {
    /// Independent (or made independent by privatization/reduction)
    /// unconditionally: parallelize at compile time.
    Parallel,
    /// Parallelizable exactly when the predicate evaluates true at loop
    /// entry: emit a two-version loop guarded by this low-cost run-time
    /// test.
    ParallelIf(Pred),
    /// A dependence remains.
    Sequential,
}

impl Outcome {
    pub fn is_parallel(&self) -> bool {
        matches!(self, Outcome::Parallel)
    }

    pub fn is_parallelizable(&self) -> bool {
        !matches!(self, Outcome::Sequential)
    }
}

/// Reduction operators recognized by the analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    Sum,
    Product,
    Min,
    Max,
}

/// A recognized reduction: all accesses to the target inside the loop
/// are self-updates with this operator.
#[derive(Clone, PartialEq, Debug)]
pub struct Reduction {
    pub target: Var,
    /// True when the target is an array (element-wise reduction).
    pub is_array: bool,
    pub op: ReduceOp,
}

/// A privatized array and the transformations it needs.
#[derive(Clone, PartialEq, Debug)]
pub struct PrivArray {
    pub array: Var,
    /// Exposed reads at loop entry: private copies must be initialized
    /// from the shared array.
    pub copy_in: bool,
    /// Final values must be merged back (last-value assignment).
    pub copy_out: bool,
}

/// Which of the paper's mechanisms the decision needed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Mechanisms {
    /// Guarded data-flow values participated in the decision.
    pub predicates: bool,
    /// Predicate embedding (affine guards pushed into regions).
    pub embedding: bool,
    /// Predicate extraction (conditions pulled out of regions).
    pub extraction: bool,
    /// A run-time test was emitted.
    pub runtime_test: bool,
}

/// The analysis verdict for one loop.
#[derive(Clone, PartialEq, Debug)]
pub struct LoopReport {
    pub id: LoopId,
    pub label: Option<String>,
    pub proc: String,
    /// Nesting depth within its procedure (0 = outermost).
    pub depth: usize,
    /// `None` when the loop is a candidate; otherwise why not.
    pub not_candidate: Option<NotCandidateReason>,
    pub outcome: Outcome,
    pub privatized: Vec<PrivArray>,
    pub privatized_scalars: Vec<Var>,
    pub reductions: Vec<Reduction>,
    pub mechanisms: Mechanisms,
    /// The evidence chain behind the verdict (see [`crate::provenance`]).
    pub provenance: crate::provenance::Provenance,
}

impl LoopReport {
    /// A loop counts as parallelized when it is a candidate and the
    /// outcome is not sequential.
    pub fn parallelized(&self) -> bool {
        self.not_candidate.is_none() && self.outcome.is_parallelizable()
    }
}

/// Whole-program analysis result.
#[derive(Clone, Debug, Default)]
pub struct AnalysisResult {
    /// One report per loop, in `LoopId` order.
    pub loops: Vec<LoopReport>,
    /// Session query/caching statistics captured when the analysis run
    /// finished (all zeros for a default-constructed result).
    pub stats: crate::session::StatsSnapshot,
}

impl AnalysisResult {
    pub fn loop_report(&self, id: LoopId) -> Option<&LoopReport> {
        self.loops.iter().find(|l| l.id == id)
    }

    pub fn by_label(&self, label: &str) -> Option<&LoopReport> {
        self.loops
            .iter()
            .find(|l| l.label.as_deref() == Some(label))
    }

    pub fn num_parallelized(&self) -> usize {
        self.loops.iter().filter(|l| l.parallelized()).count()
    }

    pub fn num_candidates(&self) -> usize {
        self.loops
            .iter()
            .filter(|l| l.not_candidate.is_none())
            .count()
    }

    pub fn num_runtime_tested(&self) -> usize {
        self.loops
            .iter()
            .filter(|l| matches!(l.outcome, Outcome::ParallelIf(_)))
            .count()
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Parallel => write!(f, "parallel"),
            Outcome::ParallelIf(p) => write!(f, "parallel if {p}"),
            Outcome::Sequential => write!(f, "sequential"),
        }
    }
}

impl fmt::Display for LoopReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} depth={} -> {}",
            self.proc,
            self.label
                .clone()
                .unwrap_or_else(|| format!("L{}", self.id.0)),
            self.depth,
            self.outcome
        )?;
        if let Some(r) = self.not_candidate {
            write!(f, " [not-parallel ({r})]")?;
        }
        if !self.privatized.is_empty() {
            let names: Vec<String> = self.privatized.iter().map(|p| p.array.name()).collect();
            write!(f, " private({})", names.join(","))?;
        }
        if !self.reductions.is_empty() {
            let names: Vec<String> = self
                .reductions
                .iter()
                .map(|r| format!("{}:{:?}", r.target, r.op))
                .collect();
            write!(f, " reduce({})", names.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(Outcome::Parallel.is_parallel());
        assert!(Outcome::Parallel.is_parallelizable());
        assert!(Outcome::ParallelIf(Pred::True).is_parallelizable());
        assert!(!Outcome::ParallelIf(Pred::True).is_parallel());
        assert!(!Outcome::Sequential.is_parallelizable());
    }

    #[test]
    fn report_counting() {
        let mk = |id: u32, outcome: Outcome, nc: Option<NotCandidateReason>| LoopReport {
            id: LoopId(id),
            label: None,
            proc: "p".into(),
            depth: 0,
            not_candidate: nc,
            outcome,
            privatized: vec![],
            privatized_scalars: vec![],
            reductions: vec![],
            mechanisms: Mechanisms::default(),
            provenance: Default::default(),
        };
        let r = AnalysisResult {
            loops: vec![
                mk(0, Outcome::Parallel, None),
                mk(1, Outcome::ParallelIf(Pred::True), None),
                mk(2, Outcome::Sequential, None),
                mk(3, Outcome::Parallel, Some(NotCandidateReason::ReadIo)),
            ],
            stats: Default::default(),
        };
        assert_eq!(r.num_parallelized(), 2);
        assert_eq!(r.num_candidates(), 3);
        assert_eq!(r.num_runtime_tested(), 1);
    }
}
