//! Lock-striped hash tables for the analysis session.
//!
//! The session's interners and memo tables are shared by every worker
//! thread; with a single `Mutex<HashMap>` per table, the hot
//! `sys_empty` path (90%+ of all lattice queries) serializes on one
//! lock and `--jobs 2` can be *slower* than `--jobs 1`. Each table is
//! therefore split into [`SHARDS`] independently locked shards selected
//! by key hash, with per-shard hit/miss atomics that are summed at
//! snapshot time.
//!
//! Hashing uses a fixed-seed Fx-style multiply-xor hasher: far cheaper
//! than SipHash on the small structural keys interned here (ids,
//! id-pairs, constraint vectors), and deterministic within a process —
//! which the shard *selection* doesn't need, but costs nothing.
//!
//! ## Determinism
//!
//! Interner ids number values per shard (`id = local_len * SHARDS +
//! shard`), so ids depend on arrival order exactly as they did with one
//! global table. Ids never reach the output: they only key memo
//! entries, and every memoized operation is a pure function of the
//! *values* behind the ids, so a cache hit returns exactly what a fresh
//! computation would regardless of numbering.

use padfa_omega::sync::lock;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::session::QueryStats;

/// Shard count; a power of two so selection is a mask. 16 shards keeps
/// contention negligible at any plausible `--jobs` while the per-table
/// footprint (16 mutexes + maps) stays small.
pub(crate) const SHARDS: usize = 16;

/// Fx-style multiply-xor hasher with a fixed seed (the well-known
/// `0x51_7c_c1_b7_27_22_0a_95` odd constant). Not DoS-resistant, which
/// is fine: keys are analysis-internal structures, not user-controlled
/// table inputs in an adversarial sense, and the tables are rebuilt per
/// session.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.add(u64::from_le_bytes(w));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;

#[inline]
fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Shard index for a hash: take the *high* bits, which the final
/// multiply mixes best, so shard choice and in-map bucket choice (low
/// bits) stay decorrelated.
#[inline]
fn shard_of(hash: u64) -> usize {
    (hash >> (64 - 4)) as usize & (SHARDS - 1)
}

/// A hash-consing interner: equal values share one `Arc` and one id.
/// Lock-striped; ids are unique across shards but *not* dense.
pub(crate) struct Interner<T> {
    shards: [Mutex<HashMap<Arc<T>, u32, FxBuild>>; SHARDS],
}

impl<T: Eq + Hash + Clone> Interner<T> {
    pub(crate) fn new() -> Interner<T> {
        Interner {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::default())),
        }
    }

    /// Intern by reference; clones into a fresh `Arc` only on a miss.
    pub(crate) fn intern(&self, value: &T) -> (Arc<T>, u32) {
        let shard = shard_of(fx_hash(value));
        let mut m = lock(&self.shards[shard]);
        if let Some((k, &id)) = m.get_key_value(value) {
            return (Arc::clone(k), id);
        }
        let id = (m.len() * SHARDS + shard) as u32;
        let arc = Arc::new(value.clone());
        m.insert(Arc::clone(&arc), id);
        (arc, id)
    }

    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }
}

/// One shard of a memo table, with its own hit/miss counters so stat
/// updates don't share a cache line across shards.
struct MemoShard<K, V> {
    map: Mutex<HashMap<K, V, FxBuild>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A lock-striped memo table over interned-id keys.
pub(crate) struct Memo<K, V> {
    shards: [MemoShard<K, V>; SHARDS],
}

impl<K: Eq + Hash, V: Clone> Memo<K, V> {
    pub(crate) fn new() -> Memo<K, V> {
        Memo {
            shards: std::array::from_fn(|_| MemoShard {
                map: Mutex::new(HashMap::default()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    /// Look up `key`, computing with `f` on a miss. The computation runs
    /// *outside* the lock: two workers may race to compute the same
    /// entry, which is benign (the operations are pure and
    /// deterministic, so both produce the same value).
    pub(crate) fn get_or(&self, key: K, f: impl FnOnce() -> V) -> V {
        let s = &self.shards[shard_of(fx_hash(&key))];
        if let Some(v) = lock(&s.map).get(&key) {
            s.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        s.misses.fetch_add(1, Ordering::Relaxed);
        let v = f();
        lock(&s.map).entry(key).or_insert_with(|| v.clone());
        v
    }

    /// Hit/miss counters summed over all shards.
    pub(crate) fn counters(&self) -> QueryStats {
        let mut q = QueryStats::default();
        for s in &self.shards {
            q.hits += s.hits.load(Ordering::Relaxed);
            q.misses += s.misses.load(Ordering::Relaxed);
        }
        q
    }

    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.map).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedups_and_ids_are_unique() {
        let int: Interner<String> = Interner::new();
        let mut ids = std::collections::HashSet::new();
        for k in 0..100 {
            let (_, id) = int.intern(&format!("value-{k}"));
            assert!(ids.insert(id), "duplicate id {id}");
        }
        for k in 0..100 {
            let (arc, id) = int.intern(&format!("value-{k}"));
            assert!(ids.contains(&id), "re-intern changed id");
            assert_eq!(*arc, format!("value-{k}"));
        }
        assert_eq!(int.len(), 100);
    }

    #[test]
    fn memo_counts_hits_and_misses_across_shards() {
        let memo: Memo<u32, u64> = Memo::new();
        for k in 0..64u32 {
            assert_eq!(memo.get_or(k, || u64::from(k) * 3), u64::from(k) * 3);
        }
        for k in 0..64u32 {
            assert_eq!(memo.get_or(k, || unreachable!()), u64::from(k) * 3);
        }
        let q = memo.counters();
        assert_eq!((q.hits, q.misses), (64, 64));
        assert_eq!(memo.len(), 64);
    }

    #[test]
    fn fx_hash_spreads_small_ids_across_shards() {
        let mut used = std::collections::HashSet::new();
        for id in 0u32..256 {
            used.insert(shard_of(fx_hash(&id)));
        }
        assert!(used.len() >= SHARDS / 2, "ids landed in {used:?}");
    }
}
