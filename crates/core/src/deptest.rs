//! Loop-level dependence and privatization testing, including run-time
//! test derivation.

use crate::component::PredComponent;
use crate::provenance::{
    ArrayEvidence, ArrayVerdict, PairEvidence, PairKind, PairOutcome, Provenance, RejectReason,
    ScalarEvidence, ScalarVerdict,
};
use crate::reduce::find_reductions;
use crate::region::primed;
use crate::report::{Mechanisms, Outcome, PrivArray, Reduction};
use crate::session::AnalysisSession;
use crate::summary::Summary;
use padfa_ir::ast::Block;
use padfa_omega::{Constraint, Disjunction, LinExpr, System, Var};
use padfa_pred::{extract_symbolic, Pred};
use std::sync::Arc;

/// `Arc`-wrap each piece guard once, up front: a piece takes part in
/// O(pieces) pair tests, and the [`PairEvidence`] rows all share these
/// handles instead of deep-cloning the predicate tree per pair.
fn piece_preds(c: &PredComponent) -> Vec<Arc<Pred>> {
    c.pieces.iter().map(|p| Arc::new(p.pred.clone())).collect()
}

/// The decision for one loop.
#[derive(Clone, Debug)]
pub struct LoopDecision {
    pub outcome: Outcome,
    pub privatized: Vec<PrivArray>,
    pub privatized_scalars: Vec<Var>,
    pub reductions: Vec<Reduction>,
    pub mechanisms: Mechanisms,
    /// Array/scalar evidence and the emitted run-time test; the caller
    /// (`analyze::handle_loop`) fills in the winner, embedding, budget,
    /// and cap-hit fields before attaching it to the `LoopReport`.
    pub provenance: Provenance,
}

/// Compute the condition under which two accesses from *different*
/// iterations may touch the same element.
///
/// `w` and `x` are guarded pieces (regions over the loop index `i` /
/// primed index `i2` respectively, plus dimension variables and
/// symbolics). The conflict condition is
/// `p_w ∧ p_x ∧ extract(∃ dims, i, i2 : regions intersect ∧ ctx ∧ i ≠ i2)`.
///
/// Returns [`Pred::False`] when the accesses provably never conflict,
/// together with the [`PairOutcome`] naming how the pair was decided
/// (complementary guards, region disjointness, an extracted symbolic
/// condition, or an assumed conflict).
///
/// (The argument list mirrors the test's mathematical inputs.)
/// The extraction step (when enabled) projects the intersection onto the
/// symbolic variables: because projection over-approximates, the
/// negation of the extracted condition soundly implies emptiness — this
/// is how the paper derives *breaking conditions* from array data-flow
/// analysis.
#[allow(clippy::too_many_arguments)]
fn conflict_condition(
    p_w: &Pred,
    w: &Disjunction,
    p_x: &Pred,
    x: &Disjunction,
    ctx: &System,
    ctx2: &System,
    loop_var: Var,
    sess: &AnalysisSession,
    is_symbolic: &(dyn Fn(Var) -> bool + Sync),
    mechanisms: &mut Mechanisms,
) -> (Pred, PairOutcome) {
    let opts = &sess.opts;
    let i2 = primed(loop_var);
    // Guards: with predicates enabled, the conflict needs both guards
    // true. Complementary guards fold to False here (compile-time win).
    let guard = if opts.predicates_enabled() {
        let g = Pred::and(p_w.clone(), p_x.clone());
        if !p_w.is_true() || !p_x.is_true() {
            mechanisms.predicates = true;
        }
        g
    } else {
        Pred::True
    };
    if guard.is_false() {
        return (Pred::False, PairOutcome::GuardsExclude);
    }

    let limits = opts.limits;
    let mut region_cond = Pred::False;
    let mut extracted = false;
    for order in [
        Constraint::lt(LinExpr::var(loop_var), LinExpr::var(i2)),
        Constraint::gt(LinExpr::var(loop_var), LinExpr::var(i2)),
    ] {
        let x2 = x.rename(loop_var, i2);
        let base = sess.intersect(w, &x2);
        let inter = Disjunction::from_systems(
            base.systems()
                .iter()
                .map(|s| {
                    let mut t = s.and(ctx).and(ctx2);
                    t.push(order.clone());
                    t
                })
                .collect::<Vec<_>>(),
        );
        if sess.is_empty(&inter) {
            continue;
        }
        if !opts.extraction {
            // Conflict possible whenever both guards hold.
            return (guard, PairOutcome::Assumed);
        }
        // Project out everything non-symbolic; the remaining constraints
        // on symbolics are the condition for the conflict to exist.
        for sys in inter.systems() {
            let junk: Vec<Var> = sys
                .vars()
                .into_iter()
                .filter(|&v| !is_symbolic(v))
                .collect();
            sess.note_fm_projection();
            let p = sys.project_out(&junk, limits);
            if p.system.is_contradiction() {
                continue;
            }
            let (q, residual) = extract_symbolic(&p.system, is_symbolic);
            if !residual.is_universe() {
                // Left-over non-symbolic constraints: cannot characterize
                // the conflict; assume it always exists.
                return (guard, PairOutcome::Assumed);
            }
            if q.is_true() {
                return (guard, PairOutcome::Assumed);
            }
            mechanisms.extraction = true;
            extracted = true;
            region_cond = Pred::or(region_cond, q);
        }
    }
    let cond = Pred::and(guard, region_cond);
    let outcome = if extracted {
        PairOutcome::Extracted
    } else {
        // Every intersection was empty (or contradictory after
        // projection) in both iteration orders.
        PairOutcome::RegionsDisjoint
    };
    (cond, outcome)
}

/// Test all cross-iteration conflicts for one array, returning the
/// condition under which *some* dependence exists (`False` = independent).
/// Each pair test run is appended to `pairs`, in test order; the early
/// exit on an unconditional conflict means later pairs were not tested
/// and carry no evidence.
#[allow(clippy::too_many_arguments)]
fn array_dependence_condition(
    mw: &PredComponent,
    r: &PredComponent,
    ctx: &System,
    ctx2: &System,
    loop_var: Var,
    sess: &AnalysisSession,
    is_symbolic: &(dyn Fn(Var) -> bool + Sync),
    mechanisms: &mut Mechanisms,
    pairs: &mut Vec<PairEvidence>,
) -> Pred {
    let mut cond = Pred::False;
    let mw_preds = piece_preds(mw);
    let r_preds = piece_preds(r);
    for (wi, wp) in mw.pieces.iter().enumerate() {
        // Write/write (output) and write/read (flow+anti) conflicts.
        let tagged = mw
            .pieces
            .iter()
            .zip(&mw_preds)
            .map(|(p, a)| (PairKind::WriteWrite, p, a))
            .chain(
                r.pieces
                    .iter()
                    .zip(&r_preds)
                    .map(|(p, a)| (PairKind::WriteRead, p, a)),
            );
        for (kind, xp, x_pred) in tagged {
            let (c, outcome) = conflict_condition(
                &wp.pred,
                &wp.region,
                &xp.pred,
                &xp.region,
                ctx,
                ctx2,
                loop_var,
                sess,
                is_symbolic,
                mechanisms,
            );
            pairs.push(PairEvidence {
                kind,
                w_pred: Arc::clone(&mw_preds[wi]),
                x_pred: Arc::clone(x_pred),
                outcome,
                condition: c.clone(),
            });
            cond = Pred::or(cond, c);
            if cond.is_true() {
                return cond;
            }
        }
    }
    cond
}

/// Privatization test for one array: exposed reads of one iteration must
/// not overlap may-writes of another. Returns the condition under which
/// privatization is *unsafe*; pair tests run are appended to `pairs`.
#[allow(clippy::too_many_arguments)]
fn privatization_unsafe_condition(
    e: &PredComponent,
    mw: &PredComponent,
    ctx: &System,
    ctx2: &System,
    loop_var: Var,
    sess: &AnalysisSession,
    is_symbolic: &(dyn Fn(Var) -> bool + Sync),
    mechanisms: &mut Mechanisms,
    pairs: &mut Vec<PairEvidence>,
) -> Pred {
    let mut cond = Pred::False;
    let e_preds = piece_preds(e);
    let mw_preds = piece_preds(mw);
    for (ei, ep) in e.pieces.iter().enumerate() {
        for (wi, wp) in mw.pieces.iter().enumerate() {
            let (c, outcome) = conflict_condition(
                &ep.pred,
                &ep.region,
                &wp.pred,
                &wp.region,
                ctx,
                ctx2,
                loop_var,
                sess,
                is_symbolic,
                mechanisms,
            );
            pairs.push(PairEvidence {
                kind: PairKind::ExposedWrite,
                w_pred: Arc::clone(&mw_preds[wi]),
                x_pred: Arc::clone(&e_preds[ei]),
                outcome,
                condition: c.clone(),
            });
            cond = Pred::or(cond, c);
            if cond.is_true() {
                return cond;
            }
        }
    }
    cond
}

/// Decide parallelizability of one loop from its per-iteration body
/// summary.
///
/// * `body` — sanitized, embedded per-iteration summary;
/// * `body_block` — the syntactic body (reduction recognition);
/// * `ctx` — constraints on the loop index (bounds, step);
/// * `is_symbolic` — classifies loop-invariant scalars usable in
///   extracted predicates and run-time tests;
/// * `trip2` — a predicate true when the loop runs at least two
///   iterations. A run-time test that is unsatisfiable together with
///   `trip2` only ever passes for trivial trip counts (0 or 1 iteration)
///   and is rejected as degenerate.
pub fn test_loop(
    body: &Summary,
    body_block: &Block,
    loop_var: Var,
    ctx: &System,
    sess: &AnalysisSession,
    is_symbolic: &(dyn Fn(Var) -> bool + Sync),
    trip2: &Pred,
) -> LoopDecision {
    let opts = &sess.opts;
    let mut mechanisms = Mechanisms::default();
    let i2 = primed(loop_var);
    // The primed context must rename not just the loop index but every
    // loop-varying synthetic variable in the context (e.g. the step
    // lattice counter `$step...`), or the two iteration copies would be
    // forced onto the same lattice point and conflicts would vanish.
    let mut ctx2 = ctx.rename(loop_var, i2);
    for v in ctx.vars() {
        if v != loop_var && v.is_synthetic() {
            ctx2 = ctx2.rename(v, primed(v));
        }
    }

    let reductions = find_reductions(body_block);
    let is_reduction = |v: Var| reductions.iter().any(|r| r.target == v);

    let mut privatized = Vec::new();
    let mut tests = Pred::True;
    let mut hard_dep = false;
    let mut prov = Provenance::default();

    // One array's complete dependence/privatization/run-time-test
    // verdict. Arrays are mutually independent (no early exit crosses an
    // array boundary and the pair tests only read this array's summary),
    // so `test_loop` fans them out and merges the outcomes in array
    // order below — evidence rows, privatization pushes, and the
    // `Pred::and` test chain compose exactly as the sequential loop did.
    struct ArrayOutcome {
        evidence: Option<ArrayEvidence>,
        privatize: Option<PrivArray>,
        test: Option<Pred>,
        hard_dep: bool,
        mech: Mechanisms,
    }

    let test_array = |array: Var, s: &crate::summary::ArraySummary| -> ArrayOutcome {
        let mut out = ArrayOutcome {
            evidence: None,
            privatize: None,
            test: None,
            hard_dep: false,
            mech: Mechanisms::default(),
        };
        if is_reduction(array) {
            out.evidence = Some(ArrayEvidence {
                array,
                verdict: ArrayVerdict::Reduction,
                dep_pairs: Vec::new(),
                priv_pairs: Vec::new(),
            });
            return out;
        }
        if s.mw.is_empty() {
            return out; // read-only arrays never carry dependences
        }
        let mut dep_pairs = Vec::new();
        let dep = array_dependence_condition(
            &s.mw,
            &s.r,
            ctx,
            &ctx2,
            loop_var,
            sess,
            is_symbolic,
            &mut out.mech,
            &mut dep_pairs,
        );
        if dep.is_false() {
            out.evidence = Some(ArrayEvidence {
                array,
                verdict: ArrayVerdict::Independent,
                dep_pairs,
                priv_pairs: Vec::new(),
            });
            return out; // independent
        }
        // Try privatization: legal when no exposed read of one iteration
        // overlaps a write of another.
        let mut priv_pairs = Vec::new();
        let unsafe_priv = privatization_unsafe_condition(
            &s.e,
            &s.mw,
            ctx,
            &ctx2,
            loop_var,
            sess,
            is_symbolic,
            &mut out.mech,
            &mut priv_pairs,
        );
        if unsafe_priv.is_false() {
            let copy_in = !s.e.is_region_empty(sess);
            out.privatize = Some(PrivArray {
                array,
                copy_in,
                copy_out: true,
            });
            out.evidence = Some(ArrayEvidence {
                array,
                verdict: ArrayVerdict::Privatized { copy_in },
                dep_pairs,
                priv_pairs,
            });
            return out;
        }
        // Neither unconditional: derive a run-time test. The loop is
        // safe to run in parallel when the dependence condition is false
        // (no transformation), or when the privatization-unsafety
        // condition is false (privatize). We emit the cheaper test.
        let rejected;
        if opts.runtime_tests {
            let no_dep = dep.negate();
            let priv_ok = unsafe_priv.negate();
            let (test, with_priv) = if priv_ok.is_true()
                || (priv_ok.cost() < no_dep.cost() && priv_ok.is_runtime_testable())
            {
                (priv_ok, true)
            } else {
                (no_dep, false)
            };
            let degenerate = Pred::and(test.clone(), trip2.clone()).is_false();
            if !degenerate && test.is_runtime_testable() && test.cost() <= opts.test_cost_budget {
                let copy_in = !s.e.is_region_empty(sess);
                if with_priv {
                    out.privatize = Some(PrivArray {
                        array,
                        copy_in,
                        copy_out: true,
                    });
                }
                out.test = Some(test.clone());
                out.mech.runtime_test = true;
                out.evidence = Some(ArrayEvidence {
                    array,
                    verdict: ArrayVerdict::RuntimeTested {
                        test,
                        with_privatization: with_priv,
                    },
                    dep_pairs,
                    priv_pairs,
                });
                return out;
            }
            let reason = if degenerate {
                RejectReason::Degenerate
            } else if !test.is_runtime_testable() {
                RejectReason::NotScalarTest
            } else {
                RejectReason::OverCostBudget
            };
            rejected = Some((test, reason));
        } else {
            rejected = Some((dep.negate(), RejectReason::Disabled));
        }
        out.evidence = Some(ArrayEvidence {
            array,
            verdict: ArrayVerdict::Blocking {
                dep: dep.clone(),
                rejected,
            },
            dep_pairs,
            priv_pairs,
        });
        out.hard_dep = true;
        out
    };

    // Per-array tests are independent; the scheduler fans them out only
    // when the summary shapes promise enough work to repay a spawn.
    let arrays: Vec<(Var, &crate::summary::ArraySummary)> =
        body.arrays.iter().map(|(&a, s)| (a, s)).collect();
    let results: Vec<ArrayOutcome> = if arrays.len() >= 2 {
        let est: u64 = arrays
            .iter()
            .map(|&(_, s)| crate::sched::deptest_cost(s))
            .sum();
        sess.sched().gated_map(
            sess.tokens(),
            crate::sched::Site::DepTest,
            est,
            &arrays,
            |_, &(a, s)| test_array(a, s),
        )
    } else {
        arrays.iter().map(|&(a, s)| test_array(a, s)).collect()
    };
    for out in results {
        mechanisms.predicates |= out.mech.predicates;
        mechanisms.embedding |= out.mech.embedding;
        mechanisms.extraction |= out.mech.extraction;
        mechanisms.runtime_test |= out.mech.runtime_test;
        if let Some(p) = out.privatize {
            privatized.push(p);
        }
        if let Some(t) = out.test {
            tests = Pred::and(tests, t);
        }
        if let Some(ev) = out.evidence {
            prov.arrays.push(ev);
        }
        hard_dep |= out.hard_dep;
    }

    // Scalars: exposed-and-written scalars carry a cross-iteration flow
    // dependence (unless recognized as reductions); written non-exposed
    // scalars privatize.
    let mut privatized_scalars = Vec::new();
    for (&sv, sc) in &body.scalars {
        if sv == loop_var {
            continue;
        }
        if is_reduction(sv) {
            if sc.may_write {
                prov.scalars.push(ScalarEvidence {
                    scalar: sv,
                    verdict: ScalarVerdict::Reduction,
                });
            }
            continue;
        }
        if sc.may_write {
            if sc.exposed_read {
                prov.scalars.push(ScalarEvidence {
                    scalar: sv,
                    verdict: ScalarVerdict::ExposedFlow,
                });
                hard_dep = true;
            } else {
                prov.scalars.push(ScalarEvidence {
                    scalar: sv,
                    verdict: ScalarVerdict::Privatized,
                });
                privatized_scalars.push(sv);
            }
        }
    }

    let outcome = if hard_dep {
        Outcome::Sequential
    } else if tests.is_true() {
        Outcome::Parallel
    } else {
        prov.runtime_test = Some(tests.clone());
        Outcome::ParallelIf(tests)
    };
    if matches!(outcome, Outcome::Sequential) {
        // A sequential verdict reports no transformations (the evidence
        // tree keeps the attempted ones for `padfa explain`).
        prov.runtime_test = None;
        return LoopDecision {
            outcome,
            privatized: Vec::new(),
            privatized_scalars: Vec::new(),
            reductions,
            mechanisms,
            provenance: prov,
        };
    }
    LoopDecision {
        outcome,
        privatized,
        privatized_scalars,
        reductions,
        mechanisms,
        provenance: prov,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `test_loop` is exercised end-to-end through `analyze::tests` and
    // the integration suite; here we unit-test the conflict-condition
    // core on hand-built regions.
    use crate::options::Options;
    use crate::region::dim_var;
    use padfa_omega::Limits;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    /// Region { $a.0 == i + shift, 1 <= $a.0 <= 100 } over index i.
    fn shifted(shift: i64) -> Disjunction {
        let d = dim_var(v("a"), 0);
        Disjunction::from_system(System::from_constraints([
            Constraint::eq(
                LinExpr::var(d),
                LinExpr::var(v("i")) + LinExpr::constant(shift),
            ),
            Constraint::geq(LinExpr::var(d), LinExpr::constant(1)),
            Constraint::leq(LinExpr::var(d), LinExpr::constant(100)),
        ]))
    }

    fn ctx_1_to_n() -> System {
        System::from_constraints([
            Constraint::geq(LinExpr::var(v("i")), LinExpr::constant(1)),
            Constraint::leq(LinExpr::var(v("i")), LinExpr::var(v("n"))),
        ])
    }

    fn sym(x: Var) -> bool {
        x == Var::new("n") || x == Var::new("m")
    }

    #[test]
    fn same_element_no_conflict() {
        // a[i] vs a[i]: different iterations never collide.
        let sess = AnalysisSession::new(Options::predicated());
        let ctx = ctx_1_to_n();
        let ctx2 = ctx.rename(v("i"), primed(v("i")));
        let mut mech = Mechanisms::default();
        let (c, _) = conflict_condition(
            &Pred::True,
            &shifted(0),
            &Pred::True,
            &shifted(0),
            &ctx,
            &ctx2,
            v("i"),
            &sess,
            &sym,
            &mut mech,
        );
        assert!(c.is_false());
    }

    #[test]
    fn shifted_access_conflicts() {
        // a[i] vs a[i-1]: adjacent iterations collide.
        let sess = AnalysisSession::new(Options::predicated());
        let ctx = ctx_1_to_n();
        let ctx2 = ctx.rename(v("i"), primed(v("i")));
        let mut mech = Mechanisms::default();
        let (c, _) = conflict_condition(
            &Pred::True,
            &shifted(0),
            &Pred::True,
            &shifted(-1),
            &ctx,
            &ctx2,
            v("i"),
            &sess,
            &sym,
            &mut mech,
        );
        assert!(!c.is_false());
        // The conflict needs at least two iterations: extraction should
        // produce a condition involving n (roughly n >= 2).
        if mech.extraction {
            let n_is_1 = Pred::from_bool(&padfa_ir::parse::parse_bool_expr("n <= 1").unwrap());
            assert!(
                n_is_1.implies(&c.negate(), Limits::default()),
                "with n <= 1 there is no second iteration: cond={c}"
            );
        }
    }

    #[test]
    fn complementary_guards_eliminate_conflict() {
        // Write guarded by x > 5, read guarded by x <= 5: never together.
        let sess = AnalysisSession::new(Options::predicated());
        let ctx = ctx_1_to_n();
        let ctx2 = ctx.rename(v("i"), primed(v("i")));
        let mut mech = Mechanisms::default();
        let p = Pred::from_bool(&padfa_ir::parse::parse_bool_expr("x > 5").unwrap());
        let np = p.negate();
        let (c, _) = conflict_condition(
            &p,
            &shifted(0),
            &np,
            &shifted(-1),
            &ctx,
            &ctx2,
            v("i"),
            &sess,
            &sym,
            &mut mech,
        );
        assert!(c.is_false());
        assert!(mech.predicates);
    }

    #[test]
    fn base_variant_ignores_guards() {
        let sess = AnalysisSession::new(Options::base());
        let ctx = ctx_1_to_n();
        let ctx2 = ctx.rename(v("i"), primed(v("i")));
        let mut mech = Mechanisms::default();
        let p = Pred::from_bool(&padfa_ir::parse::parse_bool_expr("x > 5").unwrap());
        let np = p.negate();
        let (c, _) = conflict_condition(
            &p,
            &shifted(0),
            &np,
            &shifted(-1),
            &ctx,
            &ctx2,
            v("i"),
            &sess,
            &sym,
            &mut mech,
        );
        assert!(!c.is_false(), "base analysis cannot use the guards");
    }

    #[test]
    fn boundary_conflict_extracts_symbolic_condition() {
        // Write a[i], read a[i+m] (m symbolic): conflict only when m can
        // place a read on a written element within bounds — extraction
        // yields a testable condition on m and n.
        let sess = AnalysisSession::new(Options::predicated());
        let d = dim_var(v("a"), 0);
        let read = Disjunction::from_system(System::from_constraints([
            Constraint::eq(LinExpr::var(d), LinExpr::var(v("i")) + LinExpr::var(v("m"))),
            Constraint::geq(LinExpr::var(d), LinExpr::constant(1)),
            Constraint::leq(LinExpr::var(d), LinExpr::constant(100)),
        ]));
        let ctx = ctx_1_to_n();
        let ctx2 = ctx.rename(v("i"), primed(v("i")));
        let mut mech = Mechanisms::default();
        let (c, _) = conflict_condition(
            &Pred::True,
            &shifted(0),
            &Pred::True,
            &read,
            &ctx,
            &ctx2,
            v("i"),
            &sess,
            &sym,
            &mut mech,
        );
        assert!(!c.is_false(), "m = 1 would conflict");
        assert!(mech.extraction);
        assert!(c.is_runtime_testable());
        // m = 0 means the read hits only its own iteration's element:
        // the extracted condition must exclude m = 0 (given n within
        // bounds, conflicts need |m| >= 1).
        let m0 = Pred::from_bool(&padfa_ir::parse::parse_bool_expr("m == 0").unwrap());
        assert!(
            m0.implies(&c.negate(), Limits::default()),
            "cond must rule out m == 0: {c}"
        );
    }
}
