//! The analysis driver: bottom-up traversal of the region graph,
//! loop summarization with predicate embedding, and report assembly.

use crate::budget::{self, OnExhausted};
use crate::component::PredComponent;
use crate::deptest::test_loop;
use crate::error::AnalysisError;
use crate::flight;
use crate::interproc::{
    call_order, conservative_summary, degraded_summary, translate_call, CallOrder,
};
use crate::options::Options;
use crate::provenance::{BudgetEvent, Mechanism, Provenance};
use crate::region::access_section;
use crate::report::{AnalysisResult, LoopReport, Mechanisms, NotCandidateReason, Outcome};
use crate::session::AnalysisSession;
use crate::store;
use crate::summary::Summary;
use crate::trace;
use padfa_ir::affine;
use padfa_ir::ast::{Block, BoolExpr, Expr, Loop, Procedure, Program, Stmt};
use padfa_omega::{Constraint, Disjunction, LinExpr, System, Var};
use padfa_pred::{Atom, Pred};
use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Run the analysis over a whole program.
///
/// Procedures are summarized bottom-up over the call graph; every loop
/// receives a [`LoopReport`]. Loops in recursive procedures are handled
/// conservatively.
///
/// With the default (unlimited, degrade-on-exhaustion) budget the
/// analysis is total over resolver-valid programs: `Err` is only
/// returned for internal invariant failures or when a strict budget
/// ([`crate::budget::OnExhausted::Error`]) runs out.
pub fn analyze_program(prog: &Program, opts: &Options) -> Result<AnalysisResult, AnalysisError> {
    let sess = AnalysisSession::new(opts.clone());
    Ok(analyze_program_session(prog, &sess)?.0)
}

/// Like [`analyze_program`], additionally returning the per-procedure
/// data-flow summaries (the interprocedural `R`/`W`/`E` values over
/// array parameters) for tooling and tests.
pub fn analyze_program_with_summaries(
    prog: &Program,
    opts: &Options,
) -> Result<(AnalysisResult, HashMap<String, Summary>), AnalysisError> {
    let sess = AnalysisSession::new(opts.clone());
    let (result, summaries) = analyze_program_session(prog, &sess)?;
    let summaries = summaries
        .into_iter()
        .map(|(name, s)| (name, (*s).clone()))
        .collect();
    Ok((result, summaries))
}

/// Run the analysis against a caller-provided [`AnalysisSession`]
/// (options, interners, memo tables, worker count).
///
/// Procedures are scheduled over the SCC-DAG of the call graph
/// ([`crate::sched::run_dag`]): each becomes ready as soon as its own
/// defined callees finish, and ready nodes are dispatched to worker
/// lanes when the session requests more than one job and the
/// scheduler's cost model deems any procedure spawn-worthy. The output
/// is bit-identical regardless of worker count and spawn threshold
/// (see the session and sched module docs). This includes
/// budget-degradation decisions: steps are charged per procedure by
/// deterministic counting, so a starved budget degrades the same
/// procedures at the same operation for any `--jobs`.
///
/// Each procedure runs under `catch_unwind`: budget exhaustion unwinds
/// only that procedure (cancelling its remaining work rather than
/// wedging its dependents), and any other panic is converted to
/// [`AnalysisError::Internal`]. When several procedures fail, the error
/// of the lowest (call-graph level, index) procedure is returned,
/// keeping the error itself schedule-independent.
/// One procedure's analysis outcome, tagged with its index in
/// `Program::procedures` for deterministic ordering.
type ProcOutcome = (
    usize,
    Result<(Arc<Summary>, Vec<LoopReport>), AnalysisError>,
);

pub fn analyze_program_session(
    prog: &Program,
    sess: &AnalysisSession,
) -> Result<(AnalysisResult, HashMap<String, Arc<Summary>>), AnalysisError> {
    {
        let _s = trace::span("pre_intern", "driver");
        let _f = flight::span(flight::EventKind::Driver, "pre_intern");
        sess.pre_intern(prog);
    }
    let co = call_order(prog);
    let n = prog.procedures.len();
    // Content-addressed keys for whole-procedure store entries. Only
    // unbudgeted sessions use them: a budgeted run can degrade mid-way,
    // and persisting (or replaying) degraded summaries keyed purely on
    // IR would leak one run's budget decisions into another's results.
    // One sequential topological pass computes every key up front:
    // callee keys come from strictly lower levels, already in the map.
    let mut proc_store: HashMap<String, ProcStoreInfo> = HashMap::new();
    if sess.store().is_some() && sess.opts.budget.is_unlimited() {
        for level in &co.levels {
            for &idx in level {
                if let Some(info) = proc_store_info(prog, idx, &co, sess, &proc_store) {
                    proc_store.insert(prog.procedures[idx].name.clone(), info);
                }
            }
        }
    }
    // SCC-DAG over the call graph: node = procedure, dependency = a
    // defined callee at a strictly lower topological level. A callee at
    // the same or a higher level is a cycle back-edge, which
    // `analyze_proc` resolves via `conservative_summary` without
    // reading any slot — so these edges carry no data and can be
    // dropped, leaving an acyclic graph whose completed-before order is
    // exactly what the old level-barrier driver guaranteed, minus the
    // barriers.
    let mut level_of = vec![0usize; n];
    for (ln, level) in co.levels.iter().enumerate() {
        for &i in level {
            level_of[i] = ln;
        }
    }
    let index: HashMap<&str, usize> = prog
        .procedures
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), i))
        .collect();
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, proc) in prog.procedures.iter().enumerate() {
        let mut names = Vec::new();
        crate::interproc::callees(proc, &mut names);
        let mut d: Vec<usize> = names
            .iter()
            .filter_map(|c| index.get(c.as_str()).copied())
            .filter(|&j| level_of[j] < level_of[i])
            .collect();
        d.sort_unstable();
        d.dedup();
        deps[i] = d;
    }
    let order: Vec<usize> = co.levels.iter().flatten().copied().collect();
    // Cost estimates and spawn decisions for every DAG node, up front
    // and in procedure order, so the decision stream (and its flight
    // events) is schedule-independent. Single-procedure programs offer
    // no choice and emit no decision.
    let est: Vec<u64> = prog
        .procedures
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if co.recursive.contains(&i) {
                1 // conservative summary: no body walk
            } else {
                crate::sched::proc_cost(p)
            }
        })
        .collect();
    let spawn_worthy = if n >= 2 {
        (0..n)
            .filter(|&i| sess.sched().decide(crate::sched::Site::Proc, est[i]))
            .count()
    } else {
        0
    };
    let summary_slots: Vec<std::sync::OnceLock<Arc<Summary>>> =
        (0..n).map(|_| std::sync::OnceLock::new()).collect();
    let view = SummaryView {
        index: &index,
        slots: &summary_slots,
    };
    let keys = &proc_store;
    let outcomes: Vec<ProcOutcome> = {
        let mut sched_span = trace::span("schedule", "driver");
        sched_span.arg("procs", n.to_string());
        let mut sched_flight = flight::span(flight::EventKind::Driver, "schedule");
        sched_flight.set_value(n as u64);
        // `analyze_proc` arms the budget meter on whichever lane runs
        // it, so nested fan-outs inside a budgeted procedure correctly
        // run inline. Each summary is published to its slot before the
        // executor releases the node's dependents.
        crate::sched::run_dag(sess.tokens(), &order, &deps, spawn_worthy, |idx| {
            let t0 = std::time::Instant::now();
            let out = analyze_proc(
                prog,
                idx,
                &co,
                &view,
                sess,
                keys.get(&prog.procedures[idx].name),
            );
            sess.sched()
                .note_actual(est[idx], t0.elapsed().as_nanos() as u64);
            if let (_, Ok((summary, _))) = &out {
                let _ = summary_slots[idx].set(Arc::clone(summary));
            }
            out
        })
    };
    // Deterministic error selection: consume outcomes in (level, index)
    // order, so the first `?` reproduces the level-barrier driver's
    // first-errored-level / lowest-index-within-it rule exactly.
    let mut by_key: Vec<usize> = (0..n).collect();
    by_key.sort_by_key(|&i| (level_of[i], i));
    let mut outcomes: Vec<Option<ProcOutcome>> = outcomes.into_iter().map(Some).collect();
    let mut proc_summaries: HashMap<String, Arc<Summary>> = HashMap::new();
    let mut reports: Vec<LoopReport> = Vec::new();
    for i in by_key {
        let Some((idx, outcome)) = outcomes[i].take() else {
            continue;
        };
        let (summary, reps) = outcome?;
        proc_summaries.insert(prog.procedures[idx].name.clone(), summary);
        reports.extend(reps);
    }
    // Loop ids are assigned by the parser in program order, so sorting
    // restores a schedule-independent report order.
    reports.sort_by_key(|r| r.id);
    let result = AnalysisResult {
        loops: reports,
        stats: sess.stats(),
    };
    Ok((result, proc_summaries))
}

/// Read-only view over the DAG executor's per-procedure summary slots.
/// A procedure only ever looks up its defined callees, whose slots are
/// filled before the executor releases it (cycle back-edges read
/// nothing — `translate_call` falls back to the conservative summary).
struct SummaryView<'a> {
    index: &'a HashMap<&'a str, usize>,
    slots: &'a [std::sync::OnceLock<Arc<Summary>>],
}

impl SummaryView<'_> {
    fn get(&self, name: &str) -> Option<Arc<Summary>> {
        self.index
            .get(name)
            .and_then(|&i| self.slots[i].get().cloned())
    }
}

/// Store addressing for one procedure: its content-addressed summary
/// key and the set of procedure-IR hashes it transitively depends on
/// (for the persisted invalidation graph).
struct ProcStoreInfo {
    key: u128,
    dep_irs: BTreeSet<u128>,
}

/// Compute the Merkle-style store key for `prog.procedures[idx]`:
/// options fingerprint + own IR hash + the keys of all direct callees
/// (so an edit anywhere in the callee tree changes the key). Returns
/// `None` when the procedure is ineligible for whole-procedure caching:
/// it is recursive, or a defined callee is itself ineligible (its
/// summary then isn't content-addressed). Undefined callees contribute
/// a fixed marker — their conservative summary depends on no IR.
fn proc_store_info(
    prog: &Program,
    idx: usize,
    co: &CallOrder,
    sess: &AnalysisSession,
    done: &HashMap<String, ProcStoreInfo>,
) -> Option<ProcStoreInfo> {
    let opts_fp = sess.store_opts_fp()?;
    if co.recursive.contains(&idx) {
        return None;
    }
    let proc = &prog.procedures[idx];
    let ir = store::hash_procedure(proc);
    let mut names = Vec::new();
    crate::interproc::callees(proc, &mut names);
    let mut callee_keys = Vec::with_capacity(names.len());
    let mut dep_irs = BTreeSet::from([ir]);
    for name in names {
        if prog.proc(&name).is_some() {
            let info = done.get(&name)?;
            callee_keys.push(info.key);
            dep_irs.extend(info.dep_irs.iter().copied());
        } else {
            callee_keys.push(store::UNDEFINED_CALLEE);
        }
    }
    Some(ProcStoreInfo {
        key: store::proc_key(opts_fp, ir, &callee_keys),
        dep_irs,
    })
}

/// Summarize one procedure against the already-completed summaries of
/// strictly lower call-graph levels.
///
/// The whole summarization runs under `catch_unwind` with this thread's
/// budget meter armed: exhaustion unwinds to here and is resolved per
/// the budget policy (degrade to [`degraded_summary`] or error); any
/// other panic becomes [`AnalysisError::Internal`]. Worker threads of
/// the parallel driver therefore never terminate by panic.
fn analyze_proc(
    prog: &Program,
    idx: usize,
    co: &CallOrder,
    summaries: &SummaryView<'_>,
    sess: &AnalysisSession,
    store_info: Option<&ProcStoreInfo>,
) -> ProcOutcome {
    let proc = &prog.procedures[idx];
    // A whole-procedure store hit skips summarization entirely: the
    // entry carries both the summary and the loop reports derived while
    // computing it. Only unbudgeted, non-recursive procedures get here
    // (see `proc_store_info`), so no budget meter state is skipped.
    if let (Some(info), Some(s)) = (store_info, sess.store()) {
        if let Some((summary, reports)) = s.get_proc(info.key) {
            trace::instant(format!("store-hit {}", proc.name), "store");
            return (idx, Ok((Arc::new(summary), reports)));
        }
    }
    budget::install(&sess.opts.budget);
    let mut proc_span = trace::span(format!("proc {}", proc.name), "summarize");
    let mut proc_flight = flight::span(flight::EventKind::Summarize, proc.name.clone());
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut az = Analyzer {
            prog,
            sess,
            proc_summaries: summaries,
            reports: Vec::new(),
            par_ok: !block_has_strided(&proc.body),
        };
        let summary = if co.recursive.contains(&idx) {
            conservative_summary(proc)
        } else {
            az.analyze_block(proc, &proc.body, 0)
        };
        (summary, az.reports)
    }));
    let meter = budget::take();
    sess.note_proc_meter(&meter);
    proc_span.arg("steps", meter.steps.to_string());
    proc_span.end();
    proc_flight.set_value(meter.steps);
    drop(proc_flight);
    trace::flush_lattice_batch();
    flight::flush_lattice_ops(&proc.name);
    let res = match outcome {
        Ok((summary, reports)) => {
            if let (Some(info), Some(s)) = (store_info, sess.store()) {
                s.put_proc(info.key, &summary, &reports, &info.dep_irs);
            }
            Ok((Arc::new(summary), reports))
        }
        Err(payload) if payload.downcast_ref::<budget::Exhausted>().is_some() => {
            trace::instant(format!("budget-exhausted {}", proc.name), "budget");
            match sess.opts.budget.on_exhausted {
                OnExhausted::Error => Err(AnalysisError::BudgetExhausted {
                    proc: proc.name.clone(),
                    steps: meter.steps,
                }),
                OnExhausted::Degrade => {
                    sess.note_degraded();
                    Ok((
                        Arc::new(degraded_summary(proc)),
                        budget_reports(proc, meter.steps),
                    ))
                }
            }
        }
        Err(payload) => Err(AnalysisError::Internal(format!(
            "panic while analyzing '{}': {}",
            proc.name,
            panic_message(payload.as_ref())
        ))),
    };
    (idx, res)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Reports for every loop of a budget-degraded procedure: sequential,
/// marked `not-parallel (budget)`. The degraded summary makes no claim
/// about these loops, so none may be parallelized. Each report's
/// provenance carries the [`BudgetEvent`] (with the step count at
/// exhaustion) as its concrete blocker.
fn budget_reports(proc: &Procedure, steps: u64) -> Vec<LoopReport> {
    fn walk(b: &Block, depth: usize, proc: &str, steps: u64, out: &mut Vec<LoopReport>) {
        for s in &b.stmts {
            match s {
                Stmt::For(l) => {
                    out.push(LoopReport {
                        id: l.id,
                        label: l.label.clone(),
                        proc: proc.to_string(),
                        depth,
                        not_candidate: Some(NotCandidateReason::BudgetExhausted),
                        outcome: Outcome::Sequential,
                        privatized: Vec::new(),
                        privatized_scalars: Vec::new(),
                        reductions: Vec::new(),
                        mechanisms: Mechanisms::default(),
                        provenance: Provenance {
                            budget: Some(BudgetEvent { steps }),
                            ..Provenance::default()
                        },
                    });
                    walk(&l.body, depth + 1, proc, steps, out);
                }
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    walk(then_blk, depth, proc, steps, out);
                    walk(else_blk, depth, proc, steps, out);
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(&proc.body, 0, &proc.name, steps, &mut out);
    out
}

struct Analyzer<'a> {
    prog: &'a Program,
    sess: &'a AnalysisSession,
    /// Summaries of procedures from lower call-graph levels (read-only:
    /// every defined callee of the procedure under analysis has its
    /// slot filled before the DAG executor releases this procedure).
    proc_summaries: &'a SummaryView<'a>,
    reports: Vec<LoopReport>,
    /// Whether intra-procedure fan-out is allowed: false when the
    /// procedure contains a strided loop, whose summarization draws
    /// `$lat` existential names from the session's per-procedure pool
    /// in traversal order (see [`existentialize`]) — an order only a
    /// single-threaded walk reproduces.
    par_ok: bool,
}

/// Whether any loop in the block (recursively) has a non-unit step.
fn block_has_strided(b: &Block) -> bool {
    b.stmts.iter().any(|s| match s {
        Stmt::For(l) => l.step.abs() > 1 || block_has_strided(&l.body),
        Stmt::If {
            then_blk, else_blk, ..
        } => block_has_strided(then_blk) || block_has_strided(else_blk),
        _ => false,
    })
}

impl<'a> Analyzer<'a> {
    fn analyze_block(&mut self, proc: &Procedure, block: &Block, depth: usize) -> Summary {
        // Statement summaries are mutually independent — `seq` composes
        // them only afterward — so fan the statements out when the
        // procedure permits it and the scheduler's cost estimate says
        // the block is worth a spawn. Each task gets a sub-analyzer
        // collecting its own reports; merging summaries and reports in
        // statement order reproduces the sequential walk exactly (a
        // loop's inner reports precede its own, as in the recursive
        // order), so the spawn decision cannot change the output.
        if self.par_ok && block.stmts.len() >= 2 {
            let est: u64 = block.stmts.iter().map(crate::sched::stmt_cost).sum();
            let results = self.sess.sched().gated_map(
                self.sess.tokens(),
                crate::sched::Site::Block,
                est,
                &block.stmts,
                |_, stmt| {
                    let mut sub = Analyzer {
                        prog: self.prog,
                        sess: self.sess,
                        proc_summaries: self.proc_summaries,
                        reports: Vec::new(),
                        par_ok: self.par_ok,
                    };
                    let s = sub.analyze_stmt(proc, stmt, depth);
                    (s, sub.reports)
                },
            );
            let mut acc = Summary::empty();
            for (s, reps) in results {
                self.reports.extend(reps);
                acc = acc.seq(&s, self.sess);
            }
            return acc;
        }
        let mut acc = Summary::empty();
        for stmt in &block.stmts {
            let s = self.analyze_stmt(proc, stmt, depth);
            acc = acc.seq(&s, self.sess);
        }
        acc
    }

    fn analyze_stmt(&mut self, proc: &Procedure, stmt: &Stmt, depth: usize) -> Summary {
        match stmt {
            Stmt::Assign { lhs, rhs } => {
                let mut reads = Summary::empty();
                add_expr_reads(&mut reads, proc, rhs);
                let mut writes = Summary::empty();
                match lhs {
                    padfa_ir::LValue::Scalar(v) => writes.write_scalar(*v),
                    padfa_ir::LValue::Elem(a, subs) => {
                        for s in subs {
                            add_expr_reads(&mut reads, proc, s);
                        }
                        let section = access_section(proc, *a, subs);
                        let arr = writes.array_mut(*a);
                        if section.is_exact() {
                            arr.w = PredComponent::unconditional(section.clone());
                        }
                        arr.mw = PredComponent::unconditional(section);
                    }
                }
                reads.seq(&writes, self.sess)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let mut cond_reads = Summary::empty();
                add_bool_reads(&mut cond_reads, proc, cond);
                let t = self.analyze_block(proc, then_blk, depth);
                let e = self.analyze_block(proc, else_blk, depth);
                let cond_pred = Pred::from_bool(cond);
                let merged = Summary::if_merge(&cond_pred, &t, &e, self.sess);
                cond_reads.seq(&merged, self.sess)
            }
            Stmt::For(l) => self.handle_loop(proc, l, depth),
            Stmt::Call { callee, args } => {
                let Some(callee_proc) = self.prog.proc(callee) else {
                    return Summary::empty();
                };
                let callee_summary = self
                    .proc_summaries
                    .get(callee)
                    .unwrap_or_else(|| Arc::new(conservative_summary(callee_proc)));
                let mut mech = Mechanisms::default();
                translate_call(
                    &callee_summary,
                    callee_proc,
                    proc,
                    args,
                    self.sess,
                    &mut mech,
                )
            }
            Stmt::Read(v) => {
                let mut s = Summary::empty();
                s.write_scalar(*v);
                s.has_io = true;
                s
            }
            Stmt::Print(e) => {
                let mut s = Summary::empty();
                add_expr_reads(&mut s, proc, e);
                s.has_io = true;
                s
            }
            Stmt::ExitWhen(c) => {
                let mut s = Summary::empty();
                add_bool_reads(&mut s, proc, c);
                s.has_exit = true;
                s
            }
        }
    }

    /// Summarize and test one loop.
    fn handle_loop(&mut self, proc: &Procedure, l: &Loop, depth: usize) -> Summary {
        let sess = self.sess;
        let opts = &sess.opts;
        let loop_name = l.label.clone().unwrap_or_else(|| format!("L{}", l.id.0));
        let _loop_span = trace::span(loop_name.clone(), "loop");
        let _loop_flight = flight::span(flight::EventKind::Loop, loop_name);

        // Bound expressions are read at loop entry.
        let mut bound_reads = Summary::empty();
        add_expr_reads(&mut bound_reads, proc, &l.lo);
        add_expr_reads(&mut bound_reads, proc, &l.hi);

        let body = self.analyze_block(proc, &l.body, depth + 1);

        // Attribution baselines, taken *after* the body so inner loops
        // self-attribute their own cap-hits. Thread-local deltas are
        // exact even under intra-procedure fan-out: `par_map` migrates
        // every worker's overflow delta back to the calling thread
        // before returning, and the body's fan-outs finish before the
        // baseline is read.
        let limit_base = padfa_omega::limit_stats::thread_overflows();
        let lat_base = sess.lat_overflow_for(&proc.name);

        // Iteration-space context.
        let lo_lin = affine::to_linexpr(&l.lo);
        let hi_lin = affine::to_linexpr(&l.hi);
        let mut ctx = System::universe();
        let mut aux_vars: Vec<Var> = Vec::new();
        // Bounds: for a negative step the loop runs downward from lo to
        // hi, so lo is the *upper* bound of the iteration range.
        let (lower, upper) = if l.step > 0 {
            (&lo_lin, &hi_lin)
        } else {
            (&hi_lin, &lo_lin)
        };
        if let Some(b) = lower {
            ctx.push(Constraint::geq(LinExpr::var(l.var), b.clone()));
        }
        if let Some(b) = upper {
            ctx.push(Constraint::leq(LinExpr::var(l.var), b.clone()));
        }
        if l.step.abs() > 1 {
            if let Some(lo) = &lo_lin {
                let t = Var::new(&format!("$step.{}.{}", proc.name, l.var.name()));
                ctx.push(Constraint::eq(
                    LinExpr::var(l.var),
                    lo.clone() + LinExpr::term(t, l.step),
                ));
                ctx.push(Constraint::geq(LinExpr::var(t), LinExpr::constant(0)));
                aux_vars.push(t);
            }
        }

        // Loop-variant scalars: anything the body may modify.
        let writes = body.scalar_writes.clone();
        let loop_var = l.var;
        let unstable = move |v: Var| writes.contains(&v);
        let writes2 = body.scalar_writes.clone();
        let is_symbolic = move |v: Var| !v.is_synthetic() && v != loop_var && !writes2.contains(&v);

        // Sanitize and embed the per-iteration summary. Embedding is
        // attributed per array (a fresh `Mechanisms` per array) so the
        // provenance tree can name which arrays had guards embedded.
        let mut mechanisms = Mechanisms::default();
        let mut embedded_arrays: Vec<Var> = Vec::new();
        let mut iter = Summary::empty();
        iter.scalars = body.scalars.clone();
        iter.scalar_writes = body.scalar_writes.clone();
        iter.has_io = body.has_io;
        iter.has_exit = body.has_exit;
        for (&a, s) in &body.arrays {
            let sanitize = |c: &PredComponent, may: bool| c.degrade_unstable(&unstable, may);
            let mut amech = Mechanisms::default();
            let mut arr = crate::summary::ArraySummary {
                w: embed_index_preds(&sanitize(&s.w, false), l.var, false, sess, &mut amech),
                mw: embed_index_preds(&sanitize(&s.mw, true), l.var, true, sess, &mut amech),
                r: embed_index_preds(&sanitize(&s.r, true), l.var, true, sess, &mut amech),
                e: embed_index_preds(&sanitize(&s.e, true), l.var, true, sess, &mut amech),
            };
            if amech.embedding {
                mechanisms.embedding = true;
                embedded_arrays.push(a);
            }
            arr.w.normalize(opts.max_pieces, false, sess);
            arr.mw.normalize(opts.max_pieces, true, sess);
            arr.r.normalize(opts.max_pieces, true, sess);
            arr.e.normalize(opts.max_pieces, true, sess);
            iter.arrays.insert(a, arr);
        }

        // Two-or-more-iterations predicate (suppresses degenerate tests).
        let trip2 = trip2_pred(&l.lo, &l.hi, &lo_lin, &hi_lin, l.step);

        let decision = test_loop(&iter, &l.body, l.var, &ctx, sess, &is_symbolic, &trip2);
        mechanisms.predicates |= decision.mechanisms.predicates;
        mechanisms.embedding |= decision.mechanisms.embedding;
        mechanisms.extraction |= decision.mechanisms.extraction;
        mechanisms.runtime_test |= decision.mechanisms.runtime_test;
        let mut prov = decision.provenance;
        prov.embedded = embedded_arrays;

        let not_candidate = if body.has_io {
            Some(NotCandidateReason::ReadIo)
        } else if body.has_exit {
            Some(NotCandidateReason::InternalExit)
        } else {
            None
        };
        let outcome = decision.outcome;

        // ---- Loop-level summary for the enclosing region. ----
        let with_ctx = |c: &PredComponent| -> PredComponent {
            let mut out = PredComponent::empty();
            for p in &c.pieces {
                let mut r = Disjunction::empty();
                for sys in p.region.systems() {
                    r.push(sys.and(&ctx));
                }
                if !p.region.is_exact() {
                    r.set_inexact();
                }
                out.push(p.pred.clone(), r);
            }
            out
        };
        // Only the loop index is projected; lattice counters (`$step...`)
        // stay inside the region systems as existentials — eliminating
        // them would lose the stride's divisibility facts (and drop
        // strided must-writes entirely). Each piece renames them to
        // fresh names so regions from different loops never conflate
        // their existentials.
        let project: Vec<Var> = vec![l.var];

        let mut loop_sum = Summary::empty();
        loop_sum.has_io = body.has_io;
        loop_sum.has_exit = false; // exits are local to this loop
        loop_sum.scalar_writes = body.scalar_writes.clone();
        loop_sum.scalar_writes.remove(&l.var);

        // A constant-trip loop provably executes (for scalar must-writes).
        let trip_proven = match (&lo_lin, &hi_lin) {
            (Some(lo), Some(hi)) => {
                let diff = hi.clone() - lo.clone();
                diff.is_const() && diff.konst() >= 0
            }
            _ => false,
        };
        for (&sv, sc) in &body.scalars {
            if sv == l.var {
                continue;
            }
            loop_sum.scalars.insert(
                sv,
                crate::summary::ScalarSummary {
                    must_write: sc.must_write && trip_proven,
                    may_write: sc.may_write,
                    exposed_read: sc.exposed_read,
                },
            );
        }

        // Writes of earlier iterations, expressed over this iteration's i.
        // Loop-varying synthetic context variables (the step lattice
        // counter) get fresh names too, so the earlier iteration is not
        // pinned to this iteration's lattice point.
        let prev = Var::new(&format!("$prev.{}", l.var.name()));
        let mut ctx_prev = ctx.rename(l.var, prev);
        for v in &aux_vars {
            ctx_prev = ctx_prev.rename(*v, Var::new(&format!("$prev.{}", v.name())));
        }
        // "Earlier iteration" follows execution order: smaller index for
        // upward loops, larger for downward loops.
        if l.step > 0 {
            ctx_prev.push(Constraint::lt(LinExpr::var(prev), LinExpr::var(l.var)));
        } else {
            ctx_prev.push(Constraint::gt(LinExpr::var(prev), LinExpr::var(l.var)));
        }
        let prev_project: Vec<Var> = vec![prev];
        let prev_aux: Vec<Var> = aux_vars
            .iter()
            .map(|v| Var::new(&format!("$prev.{}", v.name())))
            .collect();
        let w_prev_of_i = |w: &PredComponent| -> PredComponent {
            let mut out = PredComponent::empty();
            for p in &w.pieces {
                let renamed = p.region.rename(l.var, prev);
                let mut r = Disjunction::empty();
                for sys in renamed.systems() {
                    r.push(sys.and(&ctx_prev));
                }
                if !renamed.is_exact() {
                    r.set_inexact();
                }
                out.push(p.pred.clone(), r);
            }
            existentialize(
                out.project_out(&prev_project, false, sess),
                &prev_aux,
                sess,
                &proc.name,
            )
        };

        let preds = opts.predicates_enabled();
        let summarize = |s: &crate::summary::ArraySummary| -> (crate::summary::ArraySummary, bool) {
            let extract_fn: Option<&dyn Fn(Var) -> bool> = if opts.extraction {
                Some(&is_symbolic)
            } else {
                None
            };
            let mut fired = false;
            let e_inner = with_ctx(&s.e).pred_subtract(
                &w_prev_of_i(&s.w),
                preds,
                extract_fn,
                sess,
                &mut fired,
            );
            let mut arr = crate::summary::ArraySummary {
                w: existentialize(
                    with_ctx(&s.w).project_out(&project, false, sess),
                    &aux_vars,
                    sess,
                    &proc.name,
                ),
                mw: existentialize(
                    with_ctx(&s.mw).project_out(&project, true, sess),
                    &aux_vars,
                    sess,
                    &proc.name,
                ),
                r: existentialize(
                    with_ctx(&s.r).project_out(&project, true, sess),
                    &aux_vars,
                    sess,
                    &proc.name,
                ),
                e: existentialize(
                    e_inner.project_out(&project, true, sess),
                    &aux_vars,
                    sess,
                    &proc.name,
                ),
            };
            arr.w.normalize(opts.max_pieces, false, sess);
            arr.mw.normalize(opts.max_pieces, true, sess);
            arr.r.normalize(opts.max_pieces, true, sess);
            arr.e.normalize(opts.max_pieces, true, sess);
            (arr, fired)
        };
        // Per-array subtractions are independent; fan out when the
        // scheduler deems them heavy enough, unless the loop is strided
        // — then `existentialize` draws `$lat` names and must keep the
        // sequential draw order.
        let arr_items: Vec<(Var, &crate::summary::ArraySummary)> =
            iter.arrays.iter().map(|(&a, s)| (a, s)).collect();
        let summarized: Vec<(crate::summary::ArraySummary, bool)> =
            if aux_vars.is_empty() && arr_items.len() >= 2 {
                let est: u64 = arr_items
                    .iter()
                    .map(|&(_, s)| crate::sched::summarize_cost(s))
                    .sum();
                sess.sched().gated_map(
                    sess.tokens(),
                    crate::sched::Site::Array,
                    est,
                    &arr_items,
                    |_, &(_, s)| summarize(s),
                )
            } else {
                arr_items.iter().map(|&(_, s)| summarize(s)).collect()
            };
        for (&(a, _), (arr, fired)) in arr_items.iter().zip(summarized) {
            if fired {
                mechanisms.extraction = true;
            }
            if !arr.is_empty() {
                loop_sum.arrays.insert(a, arr);
            }
        }

        // Attribute this loop's cap-hit deltas, settle the winning
        // mechanism, and emit the report (after loop-level summarization
        // so extraction fired there is included).
        prov.limit_overflows = padfa_omega::limit_stats::thread_overflows() - limit_base;
        prov.lat_overflow = sess.lat_overflow_for(&proc.name) - lat_base;
        let parallelized = not_candidate.is_none() && outcome.is_parallelizable();
        prov.winner = if parallelized {
            Some(Mechanism::winner(&mechanisms))
        } else {
            None
        };
        self.reports.push(LoopReport {
            id: l.id,
            label: l.label.clone(),
            proc: proc.name.clone(),
            depth,
            not_candidate,
            outcome,
            privatized: decision.privatized,
            privatized_scalars: decision.privatized_scalars,
            reductions: decision.reductions,
            mechanisms,
            provenance: prov,
        });

        bound_reads.seq(&loop_sum, sess)
    }
}

/// Rename lattice existentials to fresh names, per piece, so regions
/// from different loop summarizations never share an existential. The
/// replacement names are drawn from the session's per-procedure pool
/// (`$lat.<proc>.<k>`), which keeps them deterministic under the
/// parallel driver: intra-procedure fan-out is disabled wherever a draw
/// can occur (strided loops), so within a procedure the draws happen in
/// sequential traversal order no matter how many workers exist.
fn existentialize(
    comp: PredComponent,
    aux: &[Var],
    sess: &AnalysisSession,
    proc: &str,
) -> PredComponent {
    if aux.is_empty() {
        return comp;
    }
    let mut out = PredComponent::empty();
    for p in comp.pieces {
        let mut region = (*p.region).clone();
        for &v in aux {
            if region.vars().contains(&v) {
                region = region.rename(v, sess.lat_var(proc));
            }
        }
        out.push(p.pred, region);
    }
    out
}

/// Add the reads of an arithmetic expression to a summary.
fn add_expr_reads(sum: &mut Summary, proc: &Procedure, e: &Expr) {
    let mut scalars = Vec::new();
    e.scalar_vars(&mut scalars);
    for v in scalars {
        sum.read_scalar(v);
    }
    e.for_each_access(&mut |a, subs| {
        let section = access_section(proc, a, subs);
        let arr = sum.array_mut(a);
        arr.r = arr.r.union(&PredComponent::unconditional(section.clone()));
        arr.e = arr.e.union(&PredComponent::unconditional(section));
    });
}

/// Add the reads of a boolean expression to a summary.
fn add_bool_reads(sum: &mut Summary, proc: &Procedure, b: &BoolExpr) {
    let mut scalars = Vec::new();
    b.scalar_vars(&mut scalars);
    for v in scalars {
        sum.read_scalar(v);
    }
    b.for_each_access(&mut |a, subs| {
        let section = access_section(proc, a, subs);
        let arr = sum.array_mut(a);
        arr.r = arr.r.union(&PredComponent::unconditional(section.clone()));
        arr.e = arr.e.union(&PredComponent::unconditional(section));
    });
}

/// Predicate **embedding** at loop summarization: pieces whose guard
/// mentions the loop index have the guard translated into constraints on
/// the region (so projection over the index sees it). Pieces with
/// index-dependent guards that cannot be embedded are degraded (weakened
/// for may components, dropped from must components).
fn embed_index_preds(
    comp: &PredComponent,
    loop_var: Var,
    may: bool,
    sess: &AnalysisSession,
    mechanisms: &mut Mechanisms,
) -> PredComponent {
    let mut out = PredComponent::empty();
    for piece in &comp.pieces {
        if !piece.pred.scalar_vars().contains(&loop_var) {
            out.push(piece.pred.clone(), piece.region.clone());
            continue;
        }
        if sess.opts.embedding {
            if let Some(systems) = piece.pred.to_systems(8) {
                let pred_region = Disjunction::from_systems(systems);
                let embedded = sess.intersect(&piece.region, &pred_region);
                if may || embedded.is_exact() {
                    mechanisms.embedding = true;
                    out.push(Pred::True, embedded);
                    continue;
                }
            }
        }
        if may {
            out.push(Pred::True, piece.region.clone());
        }
        // must: drop.
    }
    out
}

/// A predicate that holds when the loop executes at least two iterations
/// (used to reject degenerate run-time tests that only pass for trivial
/// trip counts).
fn trip2_pred(
    lo: &Expr,
    hi: &Expr,
    lo_lin: &Option<LinExpr>,
    hi_lin: &Option<LinExpr>,
    step: i64,
) -> Pred {
    // Two iterations exist exactly when `lo + step` is still in range:
    // `lo + step <= hi` for upward loops, `lo + step >= hi` downward.
    match (lo_lin, hi_lin) {
        (Some(l), Some(h)) => {
            let slack = if step > 0 {
                h.clone() - l.clone() - LinExpr::constant(step)
            } else {
                l.clone() + LinExpr::constant(step) - h.clone()
            };
            Pred::atom(Atom::affine_geq(slack))
        }
        _ => {
            let op = if step > 0 {
                padfa_ir::CmpOp::Ge
            } else {
                padfa_ir::CmpOp::Le
            };
            let cond = BoolExpr::cmp(
                op,
                hi.clone(),
                Expr::Add(Box::new(lo.clone()), Box::new(Expr::int(step))),
            );
            if cond.is_scalar_only() {
                Pred::from_bool(&cond)
            } else {
                Pred::True
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Outcome;
    use padfa_ir::parse::parse_program;

    fn analyze(src: &str, opts: &Options) -> AnalysisResult {
        let p = parse_program(src).unwrap();
        analyze_program(&p, opts).unwrap()
    }

    #[test]
    fn independent_loop_is_parallel() {
        let r = analyze(
            "proc m(n: int) { array a[100];
             for i = 1 to n { a[i] = a[i] + 1.0; } }",
            &Options::predicated(),
        );
        assert!(matches!(r.loops[0].outcome, Outcome::Parallel));
    }

    #[test]
    fn true_dependence_is_sequential() {
        let r = analyze(
            "proc m(n: int) { array a[100];
             for i = 2 to n { a[i] = a[i - 1] + 1.0; } }",
            &Options::predicated(),
        );
        assert!(matches!(r.loops[0].outcome, Outcome::Sequential));
    }

    #[test]
    fn io_disqualifies() {
        let r = analyze(
            "proc m(n: int) { array a[100]; var x: int;
             for i = 1 to n { read x; a[i] = 1.0; } }",
            &Options::predicated(),
        );
        assert_eq!(r.loops[0].not_candidate, Some(NotCandidateReason::ReadIo));
    }

    #[test]
    fn exit_disqualifies() {
        let r = analyze(
            "proc m(n: int, x: int) { array a[100];
             for i = 1 to n { a[i] = 1.0; exit when (x > 0); } }",
            &Options::predicated(),
        );
        assert_eq!(
            r.loops[0].not_candidate,
            Some(NotCandidateReason::InternalExit)
        );
    }

    #[test]
    fn privatizable_temp_array() {
        // t is written then read each iteration: privatization removes
        // the cross-iteration WW/WR conflicts.
        let r = analyze(
            "proc m(n: int) { array a[100]; array t[4];
             for i = 1 to n {
                 for j = 1 to 4 { t[j] = a[i] * 2.0; }
                 a[i] = t[1] + t[2];
             } }",
            &Options::predicated(),
        );
        let outer = &r.loops[0];
        assert!(matches!(outer.outcome, Outcome::Parallel), "{outer}");
        assert_eq!(outer.privatized.len(), 1);
        assert_eq!(outer.privatized[0].array, Var::new("t"));
        assert!(!outer.privatized[0].copy_in, "t fully written first");
    }

    #[test]
    fn figure1a_guarded_write_then_guarded_read() {
        // if (x > 5) write help[1..n]; then guarded read: predicated
        // analysis parallelizes the outer loop; base does not.
        let src = "proc m(n: int, c: int, x: int) {
            array help[100]; array a[100, 100];
            for i = 1 to c {
                if (x > 5) {
                    for j = 1 to n { help[j] = 2.0; }
                }
                if (x > 5) {
                    for j = 1 to n { a[i, j] = help[j]; }
                }
            } }";
        let pr = analyze(src, &Options::predicated());
        assert!(
            pr.loops[0].outcome.is_parallelizable(),
            "predicated should parallelize: {}",
            pr.loops[0]
        );
        let br = analyze(src, &Options::base());
        assert!(
            matches!(br.loops[0].outcome, Outcome::Sequential),
            "base must stay sequential: {}",
            br.loops[0]
        );
    }

    #[test]
    fn figure1b_runtime_test_from_guards() {
        // The write to help[i] is guarded by a loop-invariant condition;
        // iteration i reads help[i+1], written by iteration i+1 when the
        // guard holds. Predicated analysis emits a run-time test on the
        // guard (the loop is parallel whenever x <= 5).
        let src = "proc m(c: int, x: int) {
            array help[101]; array a[100, 2];
            for i = 1 to c {
                if (x > 5) { help[i] = a[i, 1]; }
                a[i, 2] = help[i + 1];
            } }";
        let pr = analyze(src, &Options::predicated());
        match &pr.loops[0].outcome {
            Outcome::ParallelIf(t) => {
                assert!(t.is_runtime_testable());
                assert!(pr.loops[0].mechanisms.runtime_test);
                // x <= 5 must make the loop safe.
                let safe = Pred::from_bool(&padfa_ir::parse::parse_bool_expr("x <= 5").unwrap());
                assert!(
                    safe.implies(t, Options::predicated().limits),
                    "x <= 5 should satisfy the test {t}"
                );
            }
            other => panic!("expected run-time test, got {other}"),
        }
        // Guarded variant (no run-time tests) must stay sequential.
        let gr = analyze(src, &Options::guarded());
        assert!(matches!(gr.loops[0].outcome, Outcome::Sequential));
    }

    #[test]
    fn boundary_condition_runtime_test_from_extraction() {
        // Iteration i writes help[i] and reads help[m] (m symbolic): a
        // cross-iteration flow dependence exists only when another
        // iteration writes element m, i.e. when m falls inside the
        // iteration range. Extraction derives the boundary-condition
        // test; no predicate guards are involved (Figure 1(b,d) style).
        let src = "proc m(c: int, m: int) {
            array help[100]; array a[100];
            for i = 1 to c {
                help[i] = a[i] * 2.0;
                a[i] = help[m];
            } }";
        let pr = analyze(src, &Options::predicated());
        match &pr.loops[0].outcome {
            Outcome::ParallelIf(t) => {
                assert!(t.is_runtime_testable(), "test: {t}");
                assert!(pr.loops[0].mechanisms.extraction);
                // m outside any iteration range must satisfy the test.
                let outside =
                    Pred::from_bool(&padfa_ir::parse::parse_bool_expr("m > 100").unwrap());
                assert!(
                    outside.implies(t, Options::predicated().limits),
                    "m > 100 should satisfy {t}"
                );
            }
            other => panic!("expected run-time test, got {other}"),
        }
        // Base analysis: sequential.
        let br = analyze(src, &Options::base());
        assert!(matches!(br.loops[0].outcome, Outcome::Sequential));
    }

    #[test]
    fn zero_trip_guarded_privatization() {
        // Figure 1(d) shape: the write loop covers help[d..n]; the read
        // of help[1] is exposed only when d >= 2 — and in that case no
        // iteration ever writes it, so guarded analysis proves
        // privatization safe unconditionally. The base analysis also
        // succeeds here because the subtraction remainder regions carry
        // the contradiction; the discriminating cases are covered by the
        // guard/extraction tests above.
        let src = "proc m(c: int, n: int, d: int) {
            array help[200]; array a[100, 200];
            for i = 1 to c {
                for j = d to n { help[j] = 1.0; }
                for j = d to n { a[i, j] = help[j]; }
                a[i, 1] = help[1];
            } }";
        let pr = analyze(src, &Options::predicated());
        assert!(
            pr.loops[0].outcome.is_parallelizable(),
            "outer loop: {}",
            pr.loops[0]
        );
        assert!(pr.loops[0]
            .privatized
            .iter()
            .any(|p| p.array == Var::new("help")));
    }

    #[test]
    fn reduction_loop_parallel() {
        let r = analyze(
            "proc m(n: int) { var s: real; array a[1000];
             for i = 1 to n { s = s + a[i]; } }",
            &Options::predicated(),
        );
        assert!(matches!(r.loops[0].outcome, Outcome::Parallel));
        assert_eq!(r.loops[0].reductions.len(), 1);
        // Base SUIF also recognizes reductions.
        let rb = analyze(
            "proc m(n: int) { var s: real; array a[1000];
             for i = 1 to n { s = s + a[i]; } }",
            &Options::base(),
        );
        assert!(matches!(rb.loops[0].outcome, Outcome::Parallel));
    }

    #[test]
    fn exposed_scalar_is_sequential() {
        let r = analyze(
            "proc m(n: int) { var s: real; array a[100];
             for i = 1 to n { a[i] = s; s = a[i] * 2.0; } }",
            &Options::predicated(),
        );
        assert!(matches!(r.loops[0].outcome, Outcome::Sequential));
    }

    #[test]
    fn privatizable_scalar() {
        let r = analyze(
            "proc m(n: int) { var t: real; array a[100];
             for i = 1 to n { t = a[i] * 2.0; a[i] = t + 1.0; } }",
            &Options::predicated(),
        );
        assert!(matches!(r.loops[0].outcome, Outcome::Parallel));
        assert_eq!(r.loops[0].privatized_scalars, vec![Var::new("t")]);
    }

    #[test]
    fn interprocedural_independent() {
        let r = analyze(
            "proc init(row: array[100], n: int) {
                 for j = 1 to n { row[j] = 0.0; }
             }
             proc m(n: int) { array b[100];
                 for i = 1 to n { b[i] = 1.0; }
                 call init(b, n);
             }",
            &Options::predicated(),
        );
        // Both loops parallel (callee loop and caller loop).
        assert!(r.loops.iter().all(|l| l.outcome.is_parallelizable()));
    }

    #[test]
    fn degenerate_test_suppressed() {
        // a[i] = a[i-1]: the only "test" would be n <= 1 (0 or 1 trips),
        // which must be suppressed, leaving the loop sequential.
        let r = analyze(
            "proc m(n: int) { array a[100];
             for i = 2 to n { a[i] = a[i - 1]; } }",
            &Options::predicated(),
        );
        assert!(matches!(r.loops[0].outcome, Outcome::Sequential));
    }

    #[test]
    fn nested_loops_each_reported() {
        let r = analyze(
            "proc m(n: int) { array a[64, 64];
             for i = 1 to n { for j = 1 to n { a[i, j] = 1.0; } } }",
            &Options::predicated(),
        );
        assert_eq!(r.loops.len(), 2);
        assert_eq!(r.loops[0].depth, 0);
        assert_eq!(r.loops[1].depth, 1);
        assert!(r.loops.iter().all(|l| l.outcome.is_parallelizable()));
    }

    #[test]
    fn base_variant_no_runtime_tests_anywhere() {
        let src = "proc m(c: int, n: int, x: int) {
            array help[100]; array a[100, 100];
            for i = 1 to c {
                if (x > 5) { for j = 1 to n { help[j] = 1.0; } }
                for j = 1 to n { a[i, j] = help[j]; }
            } }";
        let r = analyze(src, &Options::base());
        assert_eq!(r.num_runtime_tested(), 0);
    }
}
