//! Always-on flight recorder: a fixed-capacity, striped ring buffer of
//! structured analysis events.
//!
//! The feature-gated Chrome trace ([`crate::trace`]) is a deep-dive
//! tool: it buffers *every* span unboundedly and must be armed by hand.
//! Production diagnosis needs the opposite trade — always recording,
//! never growing: this module keeps the last [`capacity`] events in a
//! striped ring with relaxed-atomic sequencing and overwrite-on-wrap,
//! so the recent past of any process (CLI run or `padfa serve` worker)
//! can be dumped after the fact at `O(capacity)` cost and zero
//! steady-state allocation beyond the ring itself.
//!
//! ## Event taxonomy
//!
//! Span kinds (`Begin`/`End` pairs, `End` carries the duration):
//! `parse`, `driver` (pre-intern + per-level fan-out), `summarize`
//! (one per procedure), `loop` (one per analyzed loop), and `request`
//! (one per service request). Instant kinds: `lattice-batch` (one per
//! procedure, carrying the procedure's deterministic lattice-op count),
//! `budget-exhausted`, `store-degraded` / `store-retry` /
//! `store-quarantined`, `tier-forced-general`, `trace-capture`,
//! `worker-panic`, `admission-shed`, and `note` (fault-injection
//! filler). Event *kinds and counts* emitted by the analysis itself are
//! deterministic across `--jobs` (timing fields are not): spans map
//! 1:1 onto structural units (procedures, levels, loops) and the
//! lattice-batch op count is flushed once per procedure after
//! migrating per-worker deltas back to the procedure's thread, the same
//! trick `padfa_omega::limit_stats` uses for cap-hit attribution.
//!
//! ## Trace tagging
//!
//! The service tags every event recorded while handling a request with
//! the request's trace key ([`set_trace`], a thread-local guard that
//! [`crate::pool::par_map`] propagates into worker lanes), so
//! `/debug/flight` dumps can be filtered per request after the fact.
//!
//! ## Overhead budget
//!
//! Recording is on by default; `PADFA_NO_FLIGHT=1` disables it (read
//! once, overridable in-process via [`set_enabled`] so the bench can
//! A/B one binary). The per-event cost is one relaxed `fetch_add`, one
//! uncontended stripe lock, and one small clone — and events are
//! per-*procedure*/per-*loop*, not per-query, so the corpus-wide
//! overhead stays within the ≤2% gate measured by `analysis_stats`
//! (the `flight_overhead` section of BENCH_analysis.json).

use padfa_omega::sync::lock;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default total ring capacity (events), spread across stripes.
pub const DEFAULT_CAPACITY: usize = 8192;

/// Number of ring stripes; events are spread round-robin by sequence
/// number so capacity is fully used regardless of thread count while
/// concurrent writers almost never contend on the same stripe lock.
const STRIPES: usize = 8;

/// What happened. See the module docs for the span/instant taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum EventKind {
    Parse,
    Driver,
    Summarize,
    Loop,
    Request,
    LatticeBatch,
    BudgetExhausted,
    StoreDegraded,
    StoreRetry,
    StoreQuarantined,
    TierForcedGeneral,
    TraceCapture,
    WorkerPanic,
    AdmissionShed,
    /// Scheduler spawn/inline decision at one fan-out site
    /// (`spawn:<site>` / `inline:<site>`, value = cost estimate).
    /// Decisions are pure in (estimate, threshold), so these events are
    /// jobs-deterministic.
    Sched,
    Note,
}

impl EventKind {
    pub const ALL: [EventKind; 16] = [
        EventKind::Parse,
        EventKind::Driver,
        EventKind::Summarize,
        EventKind::Loop,
        EventKind::Request,
        EventKind::LatticeBatch,
        EventKind::BudgetExhausted,
        EventKind::StoreDegraded,
        EventKind::StoreRetry,
        EventKind::StoreQuarantined,
        EventKind::TierForcedGeneral,
        EventKind::TraceCapture,
        EventKind::WorkerPanic,
        EventKind::AdmissionShed,
        EventKind::Sched,
        EventKind::Note,
    ];

    pub fn name(self) -> &'static str {
        match self {
            EventKind::Parse => "parse",
            EventKind::Driver => "driver",
            EventKind::Summarize => "summarize",
            EventKind::Loop => "loop",
            EventKind::Request => "request",
            EventKind::LatticeBatch => "lattice-batch",
            EventKind::BudgetExhausted => "budget-exhausted",
            EventKind::StoreDegraded => "store-degraded",
            EventKind::StoreRetry => "store-retry",
            EventKind::StoreQuarantined => "store-quarantined",
            EventKind::TierForcedGeneral => "tier-forced-general",
            EventKind::TraceCapture => "trace-capture",
            EventKind::WorkerPanic => "worker-panic",
            EventKind::AdmissionShed => "admission-shed",
            EventKind::Sched => "sched",
            EventKind::Note => "note",
        }
    }
}

/// Span phase: paired `Begin`/`End` events, or a standalone `Instant`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    Begin,
    End,
    Instant,
}

impl Phase {
    pub fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'I',
        }
    }
}

/// One recorded event. Timing fields (`ts_us`, `dur_us`) are relative
/// to the recorder's epoch and are *not* deterministic; everything
/// else emitted by the analysis is (see module docs).
#[derive(Clone, Debug)]
pub struct Event {
    /// Global sequence number (relaxed `fetch_add` order).
    pub seq: u64,
    /// Microseconds since the recorder's epoch.
    pub ts_us: u64,
    /// Span duration in microseconds (`End` events only, else 0).
    pub dur_us: u64,
    pub kind: EventKind,
    pub phase: Phase,
    /// Small per-thread id (assignment order, first event wins).
    pub tid: u64,
    /// Request trace key (0 when untagged, i.e. CLI runs).
    pub trace: u64,
    /// Kind-specific payload (lattice ops, steps, status, ...).
    pub value: u64,
    /// Kind-specific label (procedure, loop, path, reason, ...).
    pub label: String,
}

impl Event {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"ts_us\":{},\"dur_us\":{},\"kind\":\"{}\",\
             \"phase\":\"{}\",\"tid\":{},\"trace\":\"{:016x}\",\
             \"value\":{},\"label\":\"{}\"}}",
            self.seq,
            self.ts_us,
            self.dur_us,
            self.kind.name(),
            self.phase.code(),
            self.tid,
            self.trace,
            self.value,
            escape(&self.label),
        )
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Stripe {
    buf: Vec<Event>,
    /// Next slot to overwrite once the stripe is full.
    next: usize,
}

/// A fixed-capacity striped event ring. One process-wide instance
/// backs the module-level functions; tests build their own.
pub struct FlightRecorder {
    stripes: Vec<Mutex<Stripe>>,
    per_stripe: usize,
    seq: AtomicU64,
    overflows: AtomicU64,
    epoch: Instant,
}

impl FlightRecorder {
    /// Build a recorder holding at least `capacity` events (rounded up
    /// to a stripe multiple).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let per_stripe = capacity.div_ceil(STRIPES).max(1);
        FlightRecorder {
            stripes: (0..STRIPES)
                .map(|_| {
                    Mutex::new(Stripe {
                        buf: Vec::new(),
                        next: 0,
                    })
                })
                .collect(),
            per_stripe,
            seq: AtomicU64::new(0),
            overflows: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.per_stripe * STRIPES
    }

    /// Events overwritten by ring wraparound since process start.
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }

    /// The next sequence number to be assigned; events recorded after
    /// this call satisfy `seq >= watermark`.
    pub fn watermark(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    pub fn record(
        &self,
        kind: EventKind,
        phase: Phase,
        trace: u64,
        dur_us: u64,
        value: u64,
        label: &str,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = Event {
            seq,
            ts_us: self.epoch.elapsed().as_micros() as u64,
            dur_us,
            kind,
            phase,
            tid: tid(),
            trace,
            value,
            label: label.to_string(),
        };
        let mut stripe = lock(&self.stripes[(seq as usize) % STRIPES]);
        if stripe.buf.len() < self.per_stripe {
            stripe.buf.push(ev);
        } else {
            let slot = stripe.next;
            stripe.buf[slot] = ev;
            stripe.next = (slot + 1) % self.per_stripe;
            drop(stripe);
            self.overflows.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copy out the ring, oldest surviving event first (by `seq`).
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            out.extend(lock(stripe).buf.iter().cloned());
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// The surviving events recorded at or after `watermark`.
    pub fn events_since(&self, watermark: u64) -> Vec<Event> {
        let mut out = self.snapshot();
        out.retain(|e| e.seq >= watermark);
        out
    }
}

// ---------------------------------------------------------------------
// Process-global recorder, enable gate, and thread-local tagging.

static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();

fn global() -> &'static FlightRecorder {
    GLOBAL.get_or_init(|| FlightRecorder::with_capacity(DEFAULT_CAPACITY))
}

/// 0 = unresolved, 1 = enabled, 2 = disabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether recording is on. Resolved once from `PADFA_NO_FLIGHT`
/// (any non-empty value other than `0` disables), then cached;
/// [`set_enabled`] overrides in-process.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let off = std::env::var("PADFA_NO_FLIGHT").is_ok_and(|v| !v.is_empty() && v != "0");
            STATE.store(if off { 2 } else { 1 }, Ordering::Relaxed);
            !off
        }
    }
}

/// Force the recorder on or off, overriding the env gate. Used by the
/// overhead bench (A/B in one process) and tests.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static TRACE: Cell<u64> = const { Cell::new(0) };
    static LATTICE_OPS: Cell<u64> = const { Cell::new(0) };
}

fn tid() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// FNV-1a over the trace-id string: the compact per-event tag for a
/// request's (free-form) `X-Padfa-Trace-Id` value.
pub fn trace_key(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Tag every event recorded on this thread (until the guard drops)
/// with `key`. Nests: dropping restores the previous tag.
pub fn set_trace(key: u64) -> TraceTag {
    let prev = TRACE.with(|t| {
        let p = t.get();
        t.set(key);
        p
    });
    TraceTag { prev }
}

/// The current thread's trace tag (0 = untagged).
pub fn current_trace() -> u64 {
    TRACE.with(Cell::get)
}

/// Guard restoring the previous thread trace tag on drop.
pub struct TraceTag {
    prev: u64,
}

impl Drop for TraceTag {
    fn drop(&mut self) {
        let prev = self.prev;
        TRACE.with(|t| t.set(prev));
    }
}

// ---------------------------------------------------------------------
// Recording API (global recorder).

/// Record a standalone instant event.
pub fn instant(kind: EventKind, label: &str, value: u64) {
    if enabled() {
        global().record(kind, Phase::Instant, current_trace(), 0, value, label);
    }
}

/// Open a span: records `Begin` now and `End` (with duration) when the
/// returned guard drops. Arming is decided here, so a span stays
/// paired even if [`set_enabled`] flips mid-flight.
pub fn span(kind: EventKind, label: impl Into<String>) -> FlightSpan {
    let armed = enabled();
    let label = label.into();
    if armed {
        global().record(kind, Phase::Begin, current_trace(), 0, 0, &label);
    }
    FlightSpan {
        kind,
        label,
        start: Instant::now(),
        value: 0,
        armed,
    }
}

/// An open span; see [`span`].
pub struct FlightSpan {
    kind: EventKind,
    label: String,
    start: Instant,
    value: u64,
    armed: bool,
}

impl FlightSpan {
    /// Attach a kind-specific payload to the closing `End` event.
    pub fn set_value(&mut self, v: u64) {
        self.value = v;
    }
}

impl Drop for FlightSpan {
    fn drop(&mut self) {
        if self.armed {
            let dur = self.start.elapsed().as_micros() as u64;
            global().record(
                self.kind,
                Phase::End,
                current_trace(),
                dur,
                self.value,
                &self.label,
            );
        }
    }
}

/// Count one lattice operation on this thread (always cheap: a
/// thread-local increment, no lock, no branch on the enable gate).
/// Flushed per procedure by the driver via [`flush_lattice_ops`].
pub fn note_lattice_op() {
    LATTICE_OPS.with(|c| c.set(c.get() + 1));
}

/// Drain this thread's pending lattice-op count (worker lanes hand it
/// back to the spawning thread via [`adopt_lattice_ops`], mirroring
/// `limit_stats` migration, so per-procedure totals stay
/// jobs-deterministic).
pub fn take_lattice_ops() -> u64 {
    LATTICE_OPS.with(|c| {
        let n = c.get();
        c.set(0);
        n
    })
}

/// Fold a worker lane's drained lattice-op count into this thread.
pub fn adopt_lattice_ops(n: u64) {
    if n > 0 {
        LATTICE_OPS.with(|c| c.set(c.get() + n));
    }
}

/// Emit the per-procedure `lattice-batch` instant carrying the ops
/// accumulated (and migrated) since the last flush, and reset.
pub fn flush_lattice_ops(label: &str) {
    let ops = take_lattice_ops();
    if enabled() {
        global().record(
            EventKind::LatticeBatch,
            Phase::Instant,
            current_trace(),
            0,
            ops,
            label,
        );
    }
}

/// Global-recorder accessors (see [`FlightRecorder`]).
pub fn snapshot() -> Vec<Event> {
    global().snapshot()
}

pub fn events_since(watermark: u64) -> Vec<Event> {
    global().events_since(watermark)
}

pub fn watermark() -> u64 {
    global().watermark()
}

pub fn overflows() -> u64 {
    global().overflows()
}

pub fn capacity() -> usize {
    global().capacity()
}

/// Render `events` as a JSON array.
pub fn events_json(events: &[Event]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e.to_json());
    }
    out.push(']');
    out
}

/// Dump the whole global ring as one JSON object — the payload of
/// `GET /debug/flight` and of panic/drain sidecar files.
pub fn ring_json() -> String {
    let events = snapshot();
    format!(
        "{{\"capacity\":{},\"overflows\":{},\"enabled\":{},\"events\":{}}}",
        capacity(),
        overflows(),
        enabled(),
        events_json(&events),
    )
}

// ---------------------------------------------------------------------
// Per-phase aggregation (the `--profile` table and per-request
// breakdowns).

/// Aggregate timing for one event kind over a slice of events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    pub spans: u64,
    pub instants: u64,
    /// Sum of span durations (nested spans double-count here).
    pub total_us: u64,
    /// Sum of span durations minus time spent in child spans on the
    /// same thread — additive across kinds.
    pub self_us: u64,
    pub max_us: u64,
    /// Sum of instant/span payload values (e.g. lattice ops).
    pub value: u64,
}

impl PhaseStat {
    pub fn to_json(&self, kind: EventKind) -> String {
        format!(
            "{{\"phase\":\"{}\",\"spans\":{},\"instants\":{},\"total_us\":{},\
             \"self_us\":{},\"max_us\":{},\"value\":{}}}",
            kind.name(),
            self.spans,
            self.instants,
            self.total_us,
            self.self_us,
            self.max_us,
            self.value,
        )
    }
}

/// Compute per-kind self-time attribution from an event slice (must be
/// seq-sorted, as [`snapshot`] returns). Span nesting is reconstructed
/// per thread from `Begin`/`End` pairing; an `End` whose `Begin` was
/// overwritten by ring wraparound is charged with no parent and no
/// children (its own duration only).
pub fn profile(events: &[Event]) -> Vec<(EventKind, PhaseStat)> {
    let mut stats: std::collections::BTreeMap<EventKind, PhaseStat> =
        std::collections::BTreeMap::new();
    // Per-thread stack of (kind, child time accumulated so far).
    let mut stacks: std::collections::BTreeMap<u64, Vec<(EventKind, u64)>> =
        std::collections::BTreeMap::new();
    for ev in events {
        match ev.phase {
            Phase::Begin => stacks.entry(ev.tid).or_default().push((ev.kind, 0)),
            Phase::Instant => {
                let st = stats.entry(ev.kind).or_default();
                st.instants += 1;
                st.value += ev.value;
            }
            Phase::End => {
                let stack = stacks.entry(ev.tid).or_default();
                // Pop to the matching frame; frames above it lost
                // their End (wraparound) and are abandoned.
                let child_us = match stack.iter().rposition(|(k, _)| *k == ev.kind) {
                    Some(pos) => {
                        let (_, child) = stack.remove(pos);
                        stack.truncate(pos);
                        child
                    }
                    None => 0,
                };
                let st = stats.entry(ev.kind).or_default();
                st.spans += 1;
                st.total_us += ev.dur_us;
                st.self_us += ev.dur_us.saturating_sub(child_us);
                st.max_us = st.max_us.max(ev.dur_us);
                st.value += ev.value;
                if let Some((_, parent_child)) = stack.last_mut() {
                    *parent_child += ev.dur_us;
                }
            }
        }
    }
    EventKind::ALL
        .iter()
        .filter_map(|k| stats.get(k).map(|s| (*k, *s)))
        .collect()
}

/// Render a profile as a JSON array (one object per kind, ALL order).
pub fn profile_json(profile: &[(EventKind, PhaseStat)]) -> String {
    let mut out = String::from("[");
    for (i, (kind, stat)) in profile.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&stat.to_json(*kind));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind, phase: Phase, tid: u64, dur_us: u64, value: u64) -> Event {
        Event {
            seq,
            ts_us: 0,
            dur_us,
            kind,
            phase,
            tid,
            trace: 0,
            value,
            label: String::new(),
        }
    }

    #[test]
    fn ring_wraps_and_counts_overflow() {
        let rec = FlightRecorder::with_capacity(16);
        assert_eq!(rec.capacity(), 16);
        for i in 0..40 {
            rec.record(EventKind::Note, Phase::Instant, 0, 0, i, "x");
        }
        assert_eq!(rec.overflows(), 24);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 16);
        // Oldest events were overwritten: only the last 16 survive.
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (24..40).collect::<Vec<u64>>());
        assert_eq!(rec.watermark(), 40);
        assert!(rec.events_since(30).iter().all(|e| e.seq >= 30));
        assert_eq!(rec.events_since(30).len(), 10);
    }

    #[test]
    fn capacity_rounds_up_to_a_stripe_multiple() {
        assert_eq!(FlightRecorder::with_capacity(1).capacity(), 8);
        assert_eq!(FlightRecorder::with_capacity(17).capacity(), 24);
    }

    #[test]
    fn profile_attributes_self_time_through_nesting() {
        // summarize [100us] containing two loops [30us, 20us], plus a
        // lattice-batch instant of 7 ops.
        let events = vec![
            ev(0, EventKind::Summarize, Phase::Begin, 1, 0, 0),
            ev(1, EventKind::Loop, Phase::Begin, 1, 0, 0),
            ev(2, EventKind::Loop, Phase::End, 1, 30, 0),
            ev(3, EventKind::Loop, Phase::Begin, 1, 0, 0),
            ev(4, EventKind::Loop, Phase::End, 1, 20, 0),
            ev(5, EventKind::LatticeBatch, Phase::Instant, 1, 0, 7),
            ev(6, EventKind::Summarize, Phase::End, 1, 100, 0),
        ];
        let prof = profile(&events);
        let get = |k: EventKind| {
            prof.iter()
                .find(|(pk, _)| *pk == k)
                .map(|(_, s)| *s)
                .unwrap_or_default()
        };
        let summ = get(EventKind::Summarize);
        assert_eq!(summ.spans, 1);
        assert_eq!(summ.total_us, 100);
        assert_eq!(summ.self_us, 50);
        let lp = get(EventKind::Loop);
        assert_eq!(lp.spans, 2);
        assert_eq!(lp.total_us, 50);
        assert_eq!(lp.self_us, 50);
        assert_eq!(lp.max_us, 30);
        let lb = get(EventKind::LatticeBatch);
        assert_eq!(lb.instants, 1);
        assert_eq!(lb.value, 7);
    }

    #[test]
    fn profile_survives_an_end_without_a_begin() {
        // Wraparound ate the Begin: the End is charged standalone.
        let events = vec![ev(0, EventKind::Loop, Phase::End, 1, 40, 0)];
        let prof = profile(&events);
        assert_eq!(prof.len(), 1);
        let (k, s) = prof[0];
        assert_eq!(k, EventKind::Loop);
        assert_eq!(s.spans, 1);
        assert_eq!(s.self_us, 40);
    }

    #[test]
    fn event_json_escapes_labels() {
        let mut e = ev(1, EventKind::Parse, Phase::Instant, 2, 0, 3);
        e.label = "a\"b\\c\nd".to_string();
        e.trace = 0xdead_beef;
        let j = e.to_json();
        assert!(j.contains("\"label\":\"a\\\"b\\\\c\\nd\""));
        assert!(j.contains("\"trace\":\"00000000deadbeef\""));
        assert!(j.contains("\"kind\":\"parse\""));
        assert!(j.contains("\"phase\":\"I\""));
    }

    #[test]
    fn trace_key_is_stable_fnv() {
        assert_eq!(trace_key(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(trace_key("abc"), trace_key("abc"));
        assert_ne!(trace_key("abc"), trace_key("abd"));
    }

    #[test]
    fn lattice_op_migration_roundtrip() {
        assert_eq!(take_lattice_ops(), 0);
        note_lattice_op();
        note_lattice_op();
        adopt_lattice_ops(5);
        assert_eq!(take_lattice_ops(), 7);
        assert_eq!(take_lattice_ops(), 0);
    }

    /// All assertions against the process-global recorder live in this
    /// one test: the enable gate and ring are shared, so concurrent
    /// flight tests would race a disable window.
    #[test]
    fn global_recorder_tags_spans_and_honors_the_gate() {
        set_enabled(true);
        let key = trace_key("flight-global-test");
        let wm = watermark();
        {
            let _tag = set_trace(key);
            assert_eq!(current_trace(), key);
            {
                let nested = set_trace(77);
                assert_eq!(current_trace(), 77);
                drop(nested);
            }
            assert_eq!(current_trace(), key);
            let mut s = span(EventKind::Request, "GET /x");
            s.set_value(200);
            instant(EventKind::AdmissionShed, "queue-full", 1);
        }
        assert_eq!(current_trace(), 0);
        let mine: Vec<Event> = events_since(wm)
            .into_iter()
            .filter(|e| e.trace == key)
            .collect();
        let kinds: Vec<(EventKind, Phase)> = mine.iter().map(|e| (e.kind, e.phase)).collect();
        assert_eq!(
            kinds,
            vec![
                (EventKind::Request, Phase::Begin),
                (EventKind::AdmissionShed, Phase::Instant),
                (EventKind::Request, Phase::End),
            ]
        );
        assert_eq!(mine[2].value, 200);
        assert!(ring_json().contains("\"events\":["));

        // Disabled: nothing new lands in the ring for this trace.
        set_enabled(false);
        assert!(!enabled());
        {
            let _tag = set_trace(key);
            let _s = span(EventKind::Request, "off");
            instant(EventKind::Note, "off", 0);
        }
        let after: Vec<Event> = events_since(wm)
            .into_iter()
            .filter(|e| e.trace == key)
            .collect();
        assert_eq!(after.len(), 3);
        set_enabled(true);
    }
}
