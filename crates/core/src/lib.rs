//! # padfa-core
//!
//! Predicated array data-flow analysis for automatic parallelization —
//! the primary contribution of Moon & Hall (PPoPP 1999), built on the
//! SUIF interprocedural array data-flow framework (Hall et al.).
//!
//! For every program region the analysis computes, per array, four
//! summary components, each a set of *guarded* regions
//! `(predicate, region)`:
//!
//! * `W` — must-write regions (under-approximate),
//! * `MW` — may-write regions (over-approximate),
//! * `R` — may-read regions,
//! * `E` — upward-exposed may-read regions (reads not preceded by a
//!   must-write within the region).
//!
//! Regions are unions of integer linear inequality systems
//! (`padfa-omega`); predicates are arbitrary evaluable boolean
//! expressions (`padfa-pred`). The predicated analysis adds, relative to
//! the unpredicated SUIF baseline:
//!
//! * **guarded values** at control-flow merges (instead of intersecting
//!   must-writes and unioning exposed reads);
//! * **predicate embedding** — affine predicates over the loop index are
//!   pushed into the linear systems before iteration projection;
//! * **predicate extraction** — symbolic-only constraints are pulled out
//!   of regions into predicates during subtraction (emptiness
//!   conditions), dependence testing (breaking conditions), and
//!   interprocedural reshape (divisibility conditions);
//! * **run-time test derivation** — when independence or privatization
//!   holds only under a predicate, and that predicate is a low-cost
//!   scalar test, the loop is reported [`Outcome::ParallelIf`] and the
//!   executor guards a two-version loop with it.
//!
//! Entry point: [`analyze_program`]. Three analysis variants reproduce
//! the paper's comparisons: [`Variant::Base`] (unpredicated SUIF),
//! [`Variant::Guarded`] (compile-time predicates only, the Gu/Li/Lee
//! comparator), and [`Variant::Predicated`] (full system).
//!
//! All failure modes are typed ([`AnalysisError`]): the analysis never
//! panics on user input, and per-procedure [`budget::WorkBudget`]s bound
//! its work, degrading exhausted procedures to sound conservative
//! summaries instead of hanging or crashing.
//!
//! ```
//! use padfa_core::{analyze_program, AnalysisError, Options, Outcome};
//!
//! # fn main() -> Result<(), AnalysisError> {
//! let src = "proc main(n: int, x: int) {
//!     array a[100];
//!     for i = 1 to n { a[i] = a[i] + 1.0; }
//! }";
//! let prog = padfa_ir::parse::parse_program(src)?;
//! let result = analyze_program(&prog, &Options::predicated())?;
//! assert!(matches!(result.loops[0].outcome, padfa_core::Outcome::Parallel));
//! # Ok(())
//! # }
//! ```

// The analysis must stay total on arbitrary input: unwinding is
// reserved for the budget watchdog (raised via `panic_any`, caught at
// the procedure boundary) and everything else returns `AnalysisError`.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod analyze;
pub mod budget;
pub mod component;
pub mod deptest;
pub mod error;
pub mod flight;
pub mod interproc;
pub mod metrics;
pub mod options;
pub(crate) mod pool;
pub mod provenance;
pub mod reduce;
pub mod region;
pub mod report;
pub mod sched;
pub mod session;
pub(crate) mod shard;
pub mod store;
pub mod summary;
pub mod trace;

pub use analyze::{analyze_program, analyze_program_session, analyze_program_with_summaries};
pub use budget::{OnExhausted, WorkBudget};
pub use component::{GuardedRegion, PredComponent};
pub use error::{AnalysisError, StoreError};
pub use flight::FlightRecorder;
pub use metrics::{Counter, Histogram, MetricsRegistry, QueryKind};
pub use options::{Options, Variant};
pub use pool::par_map_jobs;
pub use provenance::{
    loop_json, render_text, ArrayEvidence, ArrayVerdict, BudgetEvent, Mechanism, PairEvidence,
    PairKind, PairOutcome, Provenance, RejectReason, ScalarEvidence, ScalarVerdict,
};
pub use report::{
    AnalysisResult, LoopReport, Mechanisms, NotCandidateReason, Outcome, PrivArray, ReduceOp,
    Reduction,
};
pub use sched::{SchedSnapshot, DEFAULT_SPAWN_THRESHOLD};
pub use session::{AnalysisSession, QueryStats, StatsSnapshot};
pub use store::{
    IoFaultKind, IoFaultPlan, IoFaultSpec, RetryPolicy, Sleeper, Store, StoreConfig,
    StoreStatsSnapshot,
};
pub use summary::{ArraySummary, ScalarSummary, Summary};
