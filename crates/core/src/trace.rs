//! Structured tracing: spans and events for the analysis pipeline,
//! rendered as Chrome trace-event JSON (loadable in Perfetto or
//! `chrome://tracing`).
//!
//! The subsystem is **feature-gated**: without the `trace` cargo feature
//! every function here is an inlined no-op, so benchmark builds
//! (`cargo bench -p padfa-bench`, whose dependency graph does not enable
//! the feature) carry zero tracing cost. With the feature enabled (the
//! `padfa` CLI always enables it), tracing is still off until
//! [`start_capture`] arms the process-wide collector; disarmed, every
//! hook is a single relaxed atomic load.
//!
//! ## Span taxonomy
//!
//! | cat         | name              | meaning                                  |
//! |-------------|-------------------|------------------------------------------|
//! | `parse`     | `parse`           | source → IR                              |
//! | `driver`    | `pre_intern`      | deterministic interning prepass          |
//! | `driver`    | `level<k>`        | one topological level of the call graph  |
//! | `summarize` | `proc <name>`     | one procedure's summarization (worker)   |
//! | `loop`      | `<label or L<id>>`| one loop's classification + summary      |
//! | `lattice`   | `lattice-ops`     | a batch of memoized lattice queries      |
//! | `budget`    | `budget-exhausted`| instant: a procedure hit its budget      |
//!
//! Spans are recorded on the thread that drops them, with a stable small
//! thread id, so the level-parallel driver's concurrency is directly
//! visible on the Perfetto timeline.

#[cfg(feature = "trace")]
mod imp {
    use padfa_omega::sync::lock;
    use std::cell::RefCell;
    use std::collections::{BTreeMap, HashMap};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    struct Event {
        name: String,
        cat: &'static str,
        /// 'X' = complete span (has dur), 'i' = instant.
        ph: char,
        ts_us: u64,
        dur_us: u64,
        tid: u64,
        args: Vec<(&'static str, String)>,
    }

    struct Collector {
        start: Instant,
        events: Vec<Event>,
        tids: HashMap<std::thread::ThreadId, u64>,
    }

    static CAPTURING: AtomicBool = AtomicBool::new(false);
    static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

    /// How many lattice ops accumulate per thread before a batch span is
    /// emitted (keeps event volume bounded on big programs).
    const LATTICE_BATCH: u64 = 1024;

    struct Batch {
        start: Instant,
        counts: BTreeMap<&'static str, u64>,
        total: u64,
    }

    thread_local! {
        static BATCH: RefCell<Option<Batch>> = const { RefCell::new(None) };
    }

    fn tid_of(c: &mut Collector) -> u64 {
        let id = std::thread::current().id();
        let next = c.tids.len() as u64 + 1;
        *c.tids.entry(id).or_insert(next)
    }

    fn push_event(
        name: String,
        cat: &'static str,
        ph: char,
        since: Option<Instant>,
        args: Vec<(&'static str, String)>,
    ) {
        let mut guard = lock(&COLLECTOR);
        let Some(c) = guard.as_mut() else { return };
        let now = Instant::now();
        let (ts, dur) = match since {
            Some(t0) => (
                t0.saturating_duration_since(c.start).as_micros() as u64,
                now.saturating_duration_since(t0).as_micros() as u64,
            ),
            None => (now.saturating_duration_since(c.start).as_micros() as u64, 0),
        };
        let tid = tid_of(c);
        c.events.push(Event {
            name,
            cat,
            ph,
            ts_us: ts,
            dur_us: dur,
            tid,
            args,
        });
    }

    pub fn is_capturing() -> bool {
        CAPTURING.load(Ordering::Relaxed)
    }

    /// Arm the process-wide collector. Nested captures are not
    /// supported: a second call restarts the buffer.
    pub fn start_capture() {
        *lock(&COLLECTOR) = Some(Collector {
            start: Instant::now(),
            events: Vec::new(),
            tids: HashMap::new(),
        });
        CAPTURING.store(true, Ordering::SeqCst);
        // Mark the deep-dive window in the always-on flight ring so a
        // post-hoc dump shows when (and that) a Chrome capture ran.
        crate::flight::instant(crate::flight::EventKind::TraceCapture, "armed", 1);
    }

    /// Disarm the collector and render the captured events as Chrome
    /// trace-event JSON. `None` when no capture was armed.
    pub fn finish_capture() -> Option<String> {
        CAPTURING.store(false, Ordering::SeqCst);
        crate::flight::instant(crate::flight::EventKind::TraceCapture, "disarmed", 0);
        let c = lock(&COLLECTOR).take()?;
        let mut events = c.events;
        events.sort_by_key(|e| (e.ts_us, e.tid));
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for e in &events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
                esc(&e.name),
                e.cat,
                e.ph,
                e.ts_us,
                e.tid
            ));
            if e.ph == 'X' {
                out.push_str(&format!(",\"dur\":{}", e.dur_us));
            }
            if e.ph == 'i' {
                out.push_str(",\"s\":\"t\"");
            }
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{k}\":\"{}\"", esc(v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        Some(out)
    }

    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// A live span: records a complete ('X') event when dropped.
    pub struct Span {
        inner: Option<SpanInner>,
    }

    struct SpanInner {
        name: String,
        cat: &'static str,
        start: Instant,
        args: Vec<(&'static str, String)>,
    }

    pub fn span(name: impl Into<String>, cat: &'static str) -> Span {
        if !is_capturing() {
            return Span { inner: None };
        }
        Span {
            inner: Some(SpanInner {
                name: name.into(),
                cat,
                start: Instant::now(),
                args: Vec::new(),
            }),
        }
    }

    impl Span {
        /// Attach a key/value argument shown in the trace viewer.
        pub fn arg(&mut self, key: &'static str, value: String) {
            if let Some(s) = self.inner.as_mut() {
                s.args.push((key, value));
            }
        }

        /// Close the span now instead of at end of scope.
        pub fn end(self) {}
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if let Some(s) = self.inner.take() {
                if is_capturing() {
                    push_event(s.name, s.cat, 'X', Some(s.start), s.args);
                }
            }
        }
    }

    /// Record an instant event.
    pub fn instant(name: impl Into<String>, cat: &'static str) {
        if is_capturing() {
            push_event(name.into(), cat, 'i', None, Vec::new());
        }
    }

    /// Count one memoized lattice query toward this thread's batch span;
    /// a span is emitted once the batch fills.
    pub fn note_lattice_op(kind: &'static str) {
        if !is_capturing() {
            return;
        }
        BATCH.with(|b| {
            let mut borrow = b.borrow_mut();
            let batch = borrow.get_or_insert_with(|| Batch {
                start: Instant::now(),
                counts: BTreeMap::new(),
                total: 0,
            });
            *batch.counts.entry(kind).or_insert(0) += 1;
            batch.total += 1;
            if batch.total >= LATTICE_BATCH {
                let done = borrow.take();
                drop(borrow);
                emit_batch(done);
            }
        });
    }

    /// Flush this thread's partial lattice batch (driver calls this at
    /// procedure boundaries so short procedures still appear).
    pub fn flush_lattice_batch() {
        if !is_capturing() {
            return;
        }
        let done = BATCH.with(|b| b.borrow_mut().take());
        emit_batch(done);
    }

    fn emit_batch(done: Option<Batch>) {
        let Some(batch) = done else { return };
        if batch.total == 0 {
            return;
        }
        let mut args: Vec<(&'static str, String)> = vec![("ops", batch.total.to_string())];
        for (k, v) in &batch.counts {
            args.push((k, v.to_string()));
        }
        push_event(
            "lattice-ops".to_string(),
            "lattice",
            'X',
            Some(batch.start),
            args,
        );
    }
}

#[cfg(feature = "trace")]
pub use imp::{
    finish_capture, flush_lattice_batch, instant, is_capturing, note_lattice_op, span,
    start_capture, Span,
};

#[cfg(not(feature = "trace"))]
mod noop {
    /// Inert span handle (the `trace` feature is disabled).
    pub struct Span;

    impl Span {
        #[inline(always)]
        pub fn arg(&mut self, _key: &'static str, _value: String) {}

        #[inline(always)]
        pub fn end(self) {}
    }

    #[inline(always)]
    pub fn is_capturing() -> bool {
        false
    }

    #[inline(always)]
    pub fn start_capture() {}

    #[inline(always)]
    pub fn finish_capture() -> Option<String> {
        None
    }

    #[inline(always)]
    pub fn span(_name: impl Into<String>, _cat: &'static str) -> Span {
        Span
    }

    #[inline(always)]
    pub fn instant(_name: impl Into<String>, _cat: &'static str) {}

    #[inline(always)]
    pub fn note_lattice_op(_kind: &'static str) {}

    #[inline(always)]
    pub fn flush_lattice_batch() {}
}

#[cfg(not(feature = "trace"))]
pub use noop::{
    finish_capture, flush_lattice_batch, instant, is_capturing, note_lattice_op, span,
    start_capture, Span,
};

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    // Capture state is process-global, so keep everything in one test to
    // avoid cross-test interference under the parallel test runner.
    #[test]
    fn capture_lifecycle_and_json_shape() {
        assert!(finish_capture().is_none(), "no capture armed yet");
        start_capture();
        assert!(is_capturing());
        {
            let mut s = span("proc main", "summarize");
            s.arg("steps", "12".to_string());
            let _inner = span("L0", "loop");
        }
        instant("budget-exhausted", "budget");
        note_lattice_op("subtract");
        note_lattice_op("subtract");
        note_lattice_op("union");
        flush_lattice_batch();
        let json = finish_capture().unwrap();
        assert!(!is_capturing());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"proc main\""));
        assert!(json.contains("\"steps\":\"12\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"lattice-ops\""));
        assert!(json.contains("\"subtract\":\"2\""));
        // Disarmed: hooks are inert again.
        let mut s = span("ignored", "loop");
        s.arg("k", "v".to_string());
        drop(s);
        assert!(finish_capture().is_none());
    }
}
